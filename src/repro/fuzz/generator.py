"""Seeded random mapped-netlist generation.

The fuzz harness needs circuits that look like mapper output — every gate a
library cell, no dangling logic, no structural damage — but with far more
variety than the bundled benchmarks.  :func:`random_mapped_netlist` grows a
DAG over the standard library under a :class:`GeneratorConfig`:

- ``shape="random"`` — unbiased DAG growth; ``locality`` steers depth
  (high locality chains recent stems into deep logic, low locality gives
  wide shallow cones),
- ``shape="reconvergent"`` — explicit fan-out/reconverge diamonds: one
  stem feeds two disjoint gates that re-join downstream.  These produce
  observability don't-cares, the substrate of every OS2/IS2 move, and the
  branch-and-bound worst case for PODEM,
- ``shape="high_fanout"`` — a few hub stems drive many branches, the IS2
  per-branch substitution playground,
- ``shape="inverter_chain"`` — inverter ladders riding on random stems,
  which OS2-with-inversion and the Q003 cleanup rules feed on.

Generation is deterministic: the same config always yields the same
netlist, gate names included (asserted by the test-suite through BLIF
round-trips).  Emitted netlists are lint-clean at error severity — shapes
may deliberately contain *warnings* (an inverter chain is a Q003 finding
by construction).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ReproError
from repro.library.cell import Cell, Library
from repro.library.standard import standard_library
from repro.netlist.netlist import Gate, Netlist

#: Recognized circuit shapes, in batch rotation order.  ``large`` is
#: deliberately NOT in this tuple: batches rotate through these shapes by
#: index, so adding one would silently reshuffle every fixed-seed CI
#: batch, and a default-size campaign has no business generating 50k-gate
#: circuits.  Request it explicitly (``shape="large"`` /
#: :func:`large_config`).
SHAPES = ("random", "reconvergent", "high_fanout", "inverter_chain")

#: Every shape a :class:`GeneratorConfig` accepts, opt-in ones included.
ALL_SHAPES = SHAPES + ("large",)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of one generated circuit (fully determines it)."""

    seed: int = 0
    shape: str = "random"
    min_inputs: int = 3
    max_inputs: int = 8
    min_gates: int = 6
    max_gates: int = 24
    #: Largest cell arity used (the standard library has 1-4 input cells).
    max_arity: int = 4
    #: Probability that a fanin is drawn from the most recent stems; high
    #: values grow deep, narrow logic, low values shallow, wide logic.
    locality: float = 0.5
    #: ``high_fanout`` shape: number of hub stems and the probability that
    #: a gate taps a hub.
    hubs: int = 2
    hub_bias: float = 0.7
    #: Optional fixed model name (default ``fuzz_<shape>_s<seed>``).
    name: Optional[str] = None

    def __post_init__(self):
        if self.shape not in ALL_SHAPES:
            raise ReproError(
                f"unknown generator shape {self.shape!r}; pick from {ALL_SHAPES}"
            )
        if not 1 <= self.min_inputs <= self.max_inputs:
            raise ReproError("need 1 <= min_inputs <= max_inputs")
        if not 1 <= self.min_gates <= self.max_gates:
            raise ReproError("need 1 <= min_gates <= max_gates")
        if not 2 <= self.max_arity <= 4:
            raise ReproError("max_arity must be between 2 and 4")

    @property
    def model_name(self) -> str:
        return self.name or f"fuzz_{self.shape}_s{self.seed}"


def batch_configs(base: GeneratorConfig, count: int) -> list[GeneratorConfig]:
    """``count`` configs derived from ``base``: seeds advance, shapes rotate."""
    return [
        replace(
            base,
            seed=base.seed + index,
            shape=SHAPES[index % len(SHAPES)],
            name=None,
        )
        for index in range(count)
    ]


@dataclass
class _Growth:
    """Mutable state of one generation run."""

    rng: random.Random
    netlist: Netlist
    library: Library
    config: GeneratorConfig
    signals: list[Gate] = field(default_factory=list)
    #: Stems not yet consumed by any sink (candidates for fanins/outputs).
    unused: list[Gate] = field(default_factory=list)
    counter: int = 0

    def fresh(self, prefix: str = "g") -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def add(self, cell: Cell, fanins: list[Gate], prefix: str = "g") -> Gate:
        gate = self.netlist.add_gate(cell, fanins, name=self.fresh(prefix))
        for fanin in fanins:
            if fanin in self.unused:
                self.unused.remove(fanin)
        self.signals.append(gate)
        self.unused.append(gate)
        return gate

    # ------------------------------------------------------------------
    def pick_signal(self, avoid: tuple[Gate, ...] = ()) -> Gate:
        """One fanin candidate: recent with ``locality``, unused preferred."""
        rng = self.rng
        pool: list[Gate]
        if self.unused and rng.random() < 0.5:
            pool = self.unused
        elif rng.random() < self.config.locality:
            pool = self.signals[-max(3, len(self.signals) // 4):]
        else:
            pool = self.signals
        choice = rng.choice(pool)
        if choice in avoid:
            candidates = [s for s in self.signals if s not in avoid]
            if not candidates:
                return choice
            choice = rng.choice(candidates)
        return choice

    def pick_fanins(self, arity: int) -> list[Gate]:
        fanins: list[Gate] = []
        for _ in range(arity):
            fanins.append(self.pick_signal(avoid=tuple(fanins)))
        return fanins


def _logic_cells(library: Library, max_arity: int) -> list[Cell]:
    """Non-constant cells of arity 1..max_arity, stable order, 2-in favored."""
    cells = []
    for arity in range(1, max_arity + 1):
        for cell in sorted(
            library.cells_with_inputs(arity), key=lambda c: c.name
        ):
            if cell.function.is_constant():
                continue
            weight = 3 if arity == 2 else 1
            cells.extend([cell] * weight)
    if not cells:
        raise ReproError(f"library {library.name!r} has no usable logic cells")
    return cells


def _pick_cell(growth: _Growth, cells: list[Cell], arity: int | None = None) -> Cell:
    if arity is None:
        return growth.rng.choice(cells)
    pool = [c for c in cells if c.num_inputs == arity]
    if not pool:
        raise ReproError(f"no library cell with {arity} inputs")
    return growth.rng.choice(pool)


# ----------------------------------------------------------------------
# Shape programs
# ----------------------------------------------------------------------
def _grow_random(growth: _Growth, cells: list[Cell], budget: int) -> None:
    while budget > 0:
        cell = _pick_cell(growth, cells)
        if cell.num_inputs > len(growth.signals):
            cell = _pick_cell(growth, cells, arity=2)
        growth.add(cell, growth.pick_fanins(cell.num_inputs))
        budget -= 1


def _grow_reconvergent(growth: _Growth, cells: list[Cell], budget: int) -> None:
    """Diamond motifs: stem -> two disjoint gates -> rejoin gate."""
    while budget >= 3:
        stem = growth.pick_signal()
        other1 = growth.pick_signal(avoid=(stem,))
        other2 = growth.pick_signal(avoid=(stem, other1))
        left = growth.add(_pick_cell(growth, cells, 2), [stem, other1])
        right = growth.add(_pick_cell(growth, cells, 2), [stem, other2])
        growth.add(_pick_cell(growth, cells, 2), [left, right])
        budget -= 3
    _grow_random(growth, cells, budget)


def _grow_high_fanout(growth: _Growth, cells: list[Cell], budget: int) -> None:
    hubs = [
        growth.pick_signal()
        for _ in range(min(growth.config.hubs, len(growth.signals)))
    ]
    while budget > 0:
        cell = _pick_cell(growth, cells, 2)
        first = (
            growth.rng.choice(hubs)
            if hubs and growth.rng.random() < growth.config.hub_bias
            else growth.pick_signal()
        )
        second = growth.pick_signal(avoid=(first,))
        growth.add(cell, [first, second])
        budget -= 1


def _grow_inverter_chain(growth: _Growth, cells: list[Cell], budget: int) -> None:
    inverter = growth.library.inverter()
    while budget > 0:
        if growth.rng.random() < 0.45 and budget >= 2:
            length = min(budget, growth.rng.randint(2, 3))
            head = growth.pick_signal()
            for _ in range(length):
                head = growth.add(inverter, [head], prefix="inv_g")
            budget -= length
        else:
            cell = _pick_cell(growth, cells, 2)
            growth.add(cell, growth.pick_fanins(2))
            budget -= 1


def _grow_large(growth: _Growth, cells: list[Cell], budget: int) -> None:
    """Near-linear tiled growth for 50k-100k-gate circuits.

    Fanins come from a sliding window of recent stems with occasional
    longer-range taps, so TFI/TFO cones stay bounded (the structure the
    windowed optimizer partitions) and no stem accumulates pathological
    fanout.  The small shapes' unused-stem bookkeeping is quadratic in
    circuit size, so this program appends straight to ``growth.signals``
    and lets the generator's closing pass turn every fanout-free stem
    into a primary output.
    """
    rng = growth.rng
    netlist = growth.netlist
    signals = growth.signals
    for _ in range(budget):
        cell = _pick_cell(growth, cells)
        if cell.num_inputs > len(signals):
            cell = _pick_cell(growth, cells, arity=2)
        fanins: list[Gate] = []
        for _ in range(cell.num_inputs):
            pool = signals[-48:] if rng.random() < 0.9 else signals[-2048:]
            choice = rng.choice(pool)
            tries = 0
            while any(choice is f for f in fanins) and tries < 6:
                choice = rng.choice(pool)
                tries += 1
            if any(choice is f for f in fanins):
                # A duplicate driver can survive only when the netlist
                # holds fewer distinct signals than the cell has pins;
                # the config minimums rule that out in practice.
                for candidate in reversed(signals):
                    if all(candidate is not f for f in fanins):
                        choice = candidate
                        break
            fanins.append(choice)
        signals.append(netlist.add_gate(cell, fanins, name=growth.fresh()))


def large_config(
    seed: int = 0, num_gates: int = 50_000, name: Optional[str] = None
) -> GeneratorConfig:
    """A ready-made ``large``-shape config: exactly ``num_gates`` gates
    (generation adds one gate per budget unit) over 64 primary inputs."""
    return GeneratorConfig(
        seed=seed,
        shape="large",
        min_inputs=64,
        max_inputs=64,
        min_gates=num_gates,
        max_gates=num_gates,
        name=name,
    )


_SHAPE_PROGRAMS = {
    "random": _grow_random,
    "reconvergent": _grow_reconvergent,
    "high_fanout": _grow_high_fanout,
    "inverter_chain": _grow_inverter_chain,
    "large": _grow_large,
}


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def random_mapped_netlist(
    config: GeneratorConfig, library: Optional[Library] = None
) -> Netlist:
    """Generate one deterministic, lint-clean (error-free) mapped netlist."""
    library = library or standard_library()
    rng = random.Random(config.seed)
    num_inputs = rng.randint(config.min_inputs, config.max_inputs)
    num_gates = rng.randint(config.min_gates, config.max_gates)

    netlist = Netlist(config.model_name, library)
    growth = _Growth(rng, netlist, library, config)
    for index in range(num_inputs):
        pi = netlist.add_input(f"x{index}")
        growth.signals.append(pi)
        growth.unused.append(pi)

    cells = _logic_cells(library, config.max_arity)
    _SHAPE_PROGRAMS[config.shape](growth, cells, num_gates)

    # Every fanout-free logic stem becomes a primary output: no dead logic
    # (a Q001 warning in generated circuits would be generator damage, and
    # the optimizer would just sweep it before doing anything interesting).
    dangling = [
        gate for gate in growth.signals
        if not gate.is_input and not gate.fanout_count()
    ]
    if not dangling:  # every gate consumed: tap the last stem
        dangling = [growth.signals[-1]]
    for index, gate in enumerate(dangling):
        netlist.set_output(f"z{index}", gate)
    return netlist
