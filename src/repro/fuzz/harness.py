"""The fuzz-campaign driver behind ``powder fuzz``.

One *case* is: generate a netlist, optimize a copy, then interrogate the
result — the three-tier equivalence oracle against the original, the
from-scratch metric cross-check, and the metamorphic properties.  Any
failure string fails the case; ``--shrink`` then delta-debugs the input
netlist to a minimal reproducer that still triggers a failure of the same
category, and writes it (BLIF plus replay instructions in the header) into
the corpus directory.

:func:`replay_corpus` re-verifies every ``.blif`` in a corpus directory —
the standard test-suite points it at ``tests/fuzz/corpus/`` so every
previously-found failure is replayed in CI forever.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import ReproError
from repro.fuzz.generator import (
    ALL_SHAPES,
    SHAPES,
    GeneratorConfig,
    batch_configs,
    random_mapped_netlist,
)
from repro.fuzz.oracle import check_equivalence_tiers, cross_check_metrics
from repro.fuzz.properties import run_properties
from repro.fuzz.shrink import shrink_netlist
from repro.library.cell import Library
from repro.library.standard import standard_library
from repro.netlist.blif import parse_blif, write_blif
from repro.netlist.netlist import Netlist
from repro.transform.optimizer import OptimizeOptions, power_optimize

#: A fault-injection hook: mutate the optimized netlist in place (returns
#: True when a mutation was applied).  Used by the test-suite to prove the
#: harness catches broken transforms; never active in production runs.
Mutator = Callable[[Netlist, random.Random], bool]


def cell_swap_mutator(netlist: Netlist, rng: random.Random) -> bool:
    """The reference broken transform: change one gate's logic function.

    Picks a logic gate and rebinds it to a different same-arity library
    cell computing a different function — exactly the kind of silent
    miswiring a buggy substitution would introduce.  Used by ``powder fuzz
    --self-test`` and the test-suite to prove the oracle catches it.
    """
    gates = [g for g in netlist.logic_gates() if g.num_inputs >= 2]
    rng.shuffle(gates)
    for gate in gates:
        pool = [
            cell
            for cell in netlist.library.cells_with_inputs(gate.num_inputs)
            if cell.name != gate.cell.name
            and not cell.function.is_constant()
            and cell.function != gate.cell.function
        ]
        if pool:
            gate.cell = rng.choice(pool)
            return True
    return False


@dataclass(frozen=True)
class FuzzOptions:
    """Configuration of one fuzz campaign."""

    seed: int = 0
    count: int = 10
    min_inputs: int = 3
    max_inputs: int = 8
    min_gates: int = 6
    max_gates: int = 24
    shapes: tuple[str, ...] = SHAPES
    #: Random patterns for the optimizer run and the oracle prefilter.
    num_patterns: int = 256
    repeat: int = 25
    max_rounds: int = 8
    max_moves: Optional[int] = None
    delay_slack_percent: Optional[float] = None
    objective: str = "power"
    #: Delta-debug failing inputs down to minimal reproducers.
    shrink: bool = False
    #: Where shrunk reproducers are written (None = don't write).
    corpus_dir: Optional[Path] = None
    #: Metamorphic properties that re-run the optimizer (can be disabled
    #: for quick smoke runs).
    check_rerun: bool = True
    check_engine_identity: bool = True
    check_pipeline_identity: bool = True
    #: Test-only fault injection (see :data:`Mutator`).
    mutator: Optional[Mutator] = None
    #: Exercise the windowed optimizer instead of the flat engine (see
    #: ``OptimizeOptions.windowed``).  Windowed cases skip the
    #: power-monotone and engine/pipeline-identity properties: window-
    #: local power estimates approximate the global estimator, and the
    #: flat engines are by design not the windowed move sequence.
    windowed: bool = False
    jobs: int = 1
    window_size: int = 80
    window_radius: int = 3
    #: Cell library the campaign generates/replays against (None = the
    #: built-in one).  Pointing this at an alternate genlib fuzzes the
    #: whole optimize-verify pipeline for hidden standard-cell-name
    #: assumptions.
    library: Optional[Library] = None

    def __post_init__(self):
        if self.num_patterns <= 0 or self.num_patterns % 64:
            raise ReproError("num_patterns must be a positive multiple of 64")
        for shape in self.shapes:
            if shape not in ALL_SHAPES:
                raise ReproError(
                    f"unknown shape {shape!r}; pick from {ALL_SHAPES}"
                )


@dataclass
class CaseResult:
    """Outcome of one fuzz case."""

    name: str
    seed: int
    shape: str
    gates: int
    moves: int
    failures: list[str] = field(default_factory=list)
    #: Shrunk reproducer (only on failure with shrinking enabled).
    reproducer: Optional[Netlist] = None
    reproducer_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class FuzzReport:
    """Everything one campaign produced."""

    options: FuzzOptions
    cases: list[CaseResult] = field(default_factory=list)

    @property
    def failed_cases(self) -> list[CaseResult]:
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self) -> bool:
        return not self.failed_cases

    def summary(self) -> str:
        lines = [
            f"fuzz campaign: {len(self.cases)} cases, "
            f"{len(self.failed_cases)} failed "
            f"(seed {self.options.seed}, shapes {', '.join(self.options.shapes)})"
        ]
        for case in self.cases:
            status = "ok  " if case.ok else "FAIL"
            lines.append(
                f"  [{status}] {case.name:28s} {case.gates:3d} gates, "
                f"{case.moves:3d} moves"
            )
            for failure in case.failures:
                lines.append(f"         - {failure}")
            if case.reproducer is not None:
                where = (
                    f" -> {case.reproducer_path}" if case.reproducer_path else ""
                )
                lines.append(
                    f"         shrunk to {case.reproducer.num_gates()} "
                    f"gates{where}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Core verification pipeline
# ----------------------------------------------------------------------
def optimizer_options(options: FuzzOptions) -> OptimizeOptions:
    return OptimizeOptions(
        objective=options.objective,
        repeat=options.repeat,
        num_patterns=options.num_patterns,
        max_rounds=options.max_rounds,
        max_moves=options.max_moves,
        delay_slack_percent=options.delay_slack_percent,
        windowed=options.windowed,
        jobs=options.jobs,
        window_size=options.window_size,
        window_radius=options.window_radius,
    )


def verify_netlist(
    netlist: Netlist, options: FuzzOptions, case_seed: int
) -> tuple[list[str], int]:
    """Optimize a copy of ``netlist`` and run every check.

    Returns (failure strings, move count).  Each failure is tagged with a
    ``[category]`` prefix; shrinking preserves the category.
    """
    original = netlist
    work = netlist.copy(netlist.name + "_opt")
    opt = optimizer_options(options)
    result = power_optimize(work, opt)
    failures: list[str] = []

    if options.mutator is not None:
        options.mutator(work, random.Random(case_seed))

    oracle = check_equivalence_tiers(
        original, work, num_patterns=options.num_patterns
    )
    if not oracle.equal:
        failures.append(
            f"[equivalence] optimizer output differs from its input: "
            f"{oracle.verdicts}"
            + (
                f"; counterexample {oracle.counterexample}"
                if oracle.counterexample
                else ""
            )
        )
    for disagreement in oracle.disagreements:
        failures.append(f"[oracle-consistency] {disagreement}")

    for problem in cross_check_metrics(result, opt):
        failures.append(f"[metrics] {problem}")

    failures.extend(
        run_properties(
            original,
            result,
            opt,
            check_rerun=options.check_rerun,
            check_engine_identity=(
                options.check_engine_identity and not options.windowed
            ),
            check_pipeline_identity=(
                options.check_pipeline_identity and not options.windowed
            ),
            check_power_monotone=not options.windowed,
        )
    )
    return failures, len(result.moves)


def _category(failure: str) -> str:
    return failure.split("]", 1)[0].lstrip("[") if "]" in failure else failure


def run_case(config: GeneratorConfig, options: FuzzOptions) -> CaseResult:
    """Generate, verify, and (on failure) shrink one case."""
    netlist = random_mapped_netlist(config, options.library)
    failures, moves = verify_netlist(netlist, options, config.seed)
    case = CaseResult(
        name=netlist.name,
        seed=config.seed,
        shape=config.shape,
        gates=netlist.num_gates(),
        moves=moves,
        failures=failures,
    )
    if failures and options.shrink:
        categories = {_category(f) for f in failures}

        def still_fails(candidate: Netlist) -> bool:
            found, _moves = verify_netlist(candidate, options, config.seed)
            return any(_category(f) in categories for f in found)

        case.reproducer = shrink_netlist(netlist, still_fails)
        if options.corpus_dir is not None:
            case.reproducer_path = write_reproducer(
                case.reproducer, failures, options.corpus_dir, netlist.name
            )
    return case


def run_fuzz(options: FuzzOptions, progress=None) -> FuzzReport:
    """Run the full campaign described by ``options``."""
    base = GeneratorConfig(
        seed=options.seed,
        shape=options.shapes[0],
        min_inputs=options.min_inputs,
        max_inputs=options.max_inputs,
        min_gates=options.min_gates,
        max_gates=options.max_gates,
    )
    configs = batch_configs(base, options.count)
    shapes = options.shapes
    report = FuzzReport(options=options)
    for index, config in enumerate(configs):
        config = GeneratorConfig(
            **{
                **config.__dict__,
                "shape": shapes[index % len(shapes)],
                "name": None,
            }
        )
        case = run_case(config, options)
        report.cases.append(case)
        if progress is not None:
            progress(case)
    return report


def run_bench_cases(names: list[str], options: FuzzOptions) -> FuzzReport:
    """Run the verification pipeline on registry benchmark circuits.

    The registry gives realistic mapper output where the generator gives
    variety; ``powder fuzz --bench`` points the same oracle at both.
    """
    from repro.bench.suite import build_benchmark

    library = options.library or standard_library()
    report = FuzzReport(options=options)
    for name in names:
        netlist = build_benchmark(name, library)
        failures, moves = verify_netlist(netlist, options, options.seed)
        report.cases.append(
            CaseResult(
                name=name,
                seed=options.seed,
                shape="bench",
                gates=netlist.num_gates(),
                moves=moves,
                failures=failures,
            )
        )
    return report


# ----------------------------------------------------------------------
# Corpus
# ----------------------------------------------------------------------
def write_reproducer(
    netlist: Netlist,
    failures: list[str],
    directory: Path,
    name: str,
) -> Path:
    """Write a shrunk failing netlist as a replayable corpus entry."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.blif"
    header = [
        "# powder fuzz reproducer",
        f"# original case: {name}",
        "# replay: PYTHONPATH=src python -m repro.cli fuzz --replay "
        + str(path),
    ]
    header.extend(f"# failure: {failure}" for failure in failures)
    path.write_text("\n".join(header) + "\n" + write_blif(netlist))
    return path


def replay_corpus(directory: Path, options: FuzzOptions) -> FuzzReport:
    """Re-verify ``.blif`` reproducers: a corpus directory or a single file."""
    target = Path(directory)
    paths = [target] if target.is_file() else sorted(target.glob("*.blif"))
    library = options.library or standard_library()
    report = FuzzReport(options=options)
    for path in paths:
        netlist = parse_blif(path.read_text(), library, name=path.stem)
        failures, moves = verify_netlist(netlist, options, options.seed)
        report.cases.append(
            CaseResult(
                name=path.stem,
                seed=options.seed,
                shape="corpus",
                gates=netlist.num_gates(),
                moves=moves,
                failures=failures,
            )
        )
    return report
