"""Metamorphic properties of one optimizer run.

Each property states a relation the optimizer must satisfy on *every*
input, no reference answer needed:

- ``power-monotone`` — the estimated power never increases (the Figure-5
  loop only accepts strictly improving moves),
- ``delay-constraint`` — when a limit is configured, the final circuit
  delay respects it,
- ``idempotent-rerun`` — running the optimizer again on its own output is
  safe: it converges, keeps equivalence, and never pushes power back up,
- ``engine-identity`` — the incremental engine and the legacy from-scratch
  paths produce bit-identical move sequences (the PR-1 contract, here
  enforced on arbitrary generated circuits),
- ``pipeline-identity`` — the default pass pipeline (what
  ``power_optimize`` schedules through the PassManager) and a directly
  driven ``PowerOptimizer`` apply identical move sequences (the
  pass-pipeline refactor contract).

All checks are pure observers: they work on copies and never mutate the
netlist under test.
"""

from __future__ import annotations

from dataclasses import replace

from repro.netlist.netlist import Netlist
from repro.transform.optimizer import (
    OptimizeOptions,
    OptimizeResult,
    power_optimize,
)

#: Acceptance slack on float comparisons.
_EPS = 1e-9


def run_properties(
    original: Netlist,
    result: OptimizeResult,
    options: OptimizeOptions,
    check_rerun: bool = True,
    check_engine_identity: bool = True,
    check_pipeline_identity: bool = True,
    check_power_monotone: bool = True,
) -> list[str]:
    """Evaluate every metamorphic property; returns failure descriptions.

    ``check_power_monotone=False`` drops the monotonicity checks (both
    here and inside the rerun property): a windowed run accepts moves on
    window-local power estimates, which approximate the global estimator,
    so global power may occasionally rise — equivalence, not gain
    accounting, is the windowed contract.
    """
    failures: list[str] = []
    if check_power_monotone:
        failures.extend(power_monotone(result))
    failures.extend(delay_constraint(result))
    if check_rerun:
        failures.extend(
            idempotent_rerun(result, options, check_power=check_power_monotone)
        )
    if check_engine_identity:
        failures.extend(engine_identity(original, result, options))
    if check_pipeline_identity:
        failures.extend(pipeline_identity(original, result, options))
    return failures


def power_monotone(result: OptimizeResult) -> list[str]:
    """[power-monotone] optimization never increases estimated power."""
    failures = []
    if result.final_power > result.initial_power + _EPS:
        failures.append(
            f"[power-monotone] power rose {result.initial_power!r} -> "
            f"{result.final_power!r}"
        )
    total = 0.0
    for move in result.moves:
        total += move.measured_power_gain
        if move.measured_power_gain < -_EPS:
            failures.append(
                f"[power-monotone] accepted move {move.substitution} lost "
                f"power ({move.measured_power_gain:+.6f})"
            )
    drift = (result.initial_power - result.final_power) - total
    if abs(drift) > 1e-6:
        failures.append(
            f"[power-monotone] move-log gains sum to {total!r} but the run "
            f"claims {(result.initial_power - result.final_power)!r}"
        )
    return failures


def delay_constraint(result: OptimizeResult) -> list[str]:
    """[delay-constraint] a configured limit holds on the final circuit."""
    if result.delay_limit is None:
        return []
    if result.final_delay > result.delay_limit + _EPS:
        return [
            f"[delay-constraint] final delay {result.final_delay!r} violates "
            f"the limit {result.delay_limit!r}"
        ]
    return []


def idempotent_rerun(
    result: OptimizeResult, options: OptimizeOptions, check_power: bool = True
) -> list[str]:
    """[idempotent-rerun] re-optimizing the output is safe and monotone."""
    from repro.fuzz.oracle import check_equivalence_tiers

    optimized = result.netlist
    rerun_input = optimized.copy(optimized.name + "_rerun")
    rerun = power_optimize(rerun_input, replace(options))
    failures = []
    if check_power and rerun.final_power > result.final_power + _EPS:
        failures.append(
            f"[idempotent-rerun] second run raised power "
            f"{result.final_power!r} -> {rerun.final_power!r}"
        )
    oracle = check_equivalence_tiers(
        optimized, rerun.netlist, num_patterns=options.num_patterns
    )
    if not oracle.equal or not oracle.consistent:
        failures.append(
            "[idempotent-rerun] second run broke equivalence: "
            f"{oracle.verdicts} {oracle.disagreements}"
        )
    return failures


def pipeline_identity(
    original: Netlist, result: OptimizeResult, options: OptimizeOptions
) -> list[str]:
    """[pipeline-identity] default pipeline == directly driven engine.

    ``result`` came from ``power_optimize`` — the PassManager-scheduled
    default pipeline; a :class:`~repro.transform.optimizer.PowerOptimizer`
    constructed and run directly (no pipeline layer) must apply the
    identical move sequence.
    """
    from repro.transform.optimizer import PowerOptimizer

    direct = PowerOptimizer(
        original.copy(original.name + "_direct"), replace(options, trace=None)
    ).run()
    ours = [str(m.substitution) for m in result.moves]
    theirs = [str(m.substitution) for m in direct.moves]
    if ours != theirs:
        for index, (a, b) in enumerate(zip(ours, theirs)):
            if a != b:
                return [
                    f"[pipeline-identity] move {index} differs: pipeline "
                    f"{a} vs direct {b}"
                ]
        return [
            f"[pipeline-identity] move counts differ: pipeline {len(ours)} "
            f"vs direct {len(theirs)}"
        ]
    if abs(direct.final_power - result.final_power) > _EPS:
        return [
            f"[pipeline-identity] final power differs: pipeline "
            f"{result.final_power!r} vs direct {direct.final_power!r}"
        ]
    return []


def engine_identity(
    original: Netlist, result: OptimizeResult, options: OptimizeOptions
) -> list[str]:
    """[engine-identity] incremental and legacy engines agree move for move."""
    other = replace(options, incremental=not options.incremental)
    legacy = power_optimize(original.copy(original.name + "_ab"), other)
    ours = [str(m.substitution) for m in result.moves]
    theirs = [str(m.substitution) for m in legacy.moves]
    if ours != theirs:
        tag = "legacy" if options.incremental else "incremental"
        for index, (a, b) in enumerate(zip(ours, theirs)):
            if a != b:
                return [
                    f"[engine-identity] move {index} differs: {a} vs "
                    f"{tag} {b}"
                ]
        return [
            f"[engine-identity] move counts differ: {len(ours)} vs "
            f"{tag} {len(theirs)}"
        ]
    return []
