"""Delta-debugging reduction of a failing netlist.

Given a predicate that replays the failing pipeline (``True`` = still
failing), :func:`shrink_netlist` greedily applies structure-removing
reductions while the failure persists:

- drop one primary output (and sweep the cone that dies with it),
- bypass one gate — rewire all its fanout to one of its fanins and sweep,
- re-root one gate's fanout onto a primary input.

Every trial runs on a copy; the original is never mutated.  The loop stops
at a local minimum: no single reduction keeps the failure alive.  Shrunk
circuits are what lands in ``tests/fuzz/corpus/`` — a reproducer is only
useful when it is small enough to read.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import NetlistError, TransformError
from repro.netlist.netlist import Netlist
from repro.netlist.traverse import topological_order

#: A replay of the failing pipeline: True when the netlist still fails.
Predicate = Callable[[Netlist], bool]


def _drop_output(netlist: Netlist, po: str) -> None:
    driver = netlist.outputs.pop(po)
    netlist.output_loads.pop(po, None)
    driver.po_names.remove(po)
    netlist.sweep_dead()


def _bypass(netlist: Netlist, gate_name: str, replacement_name: str) -> None:
    gate = netlist.gate(gate_name)
    replacement = netlist.gate(replacement_name)
    netlist.replace_fanouts(gate, replacement)
    netlist.sweep_dead()


def _reductions(netlist: Netlist):
    """Deterministic candidate edits, most destructive first."""
    if len(netlist.outputs) > 1:
        for po in sorted(netlist.outputs):
            yield ("drop-output", po, None)
    for gate in topological_order(netlist):
        if gate.is_input or not gate.fanout_count():
            continue
        for fanin in dict.fromkeys(gate.fanins):
            yield ("bypass", gate.name, fanin.name)
    inputs = netlist.input_names[:1]
    for gate in topological_order(netlist):
        if gate.is_input or not gate.fanout_count() or not gate.fanins:
            continue
        for pi in inputs:
            if gate.fanins[0].name != pi:
                yield ("bypass", gate.name, pi)


def _apply(netlist: Netlist, edit) -> Netlist | None:
    kind, first, second = edit
    trial = netlist.copy(netlist.name)
    try:
        if kind == "drop-output":
            _drop_output(trial, first)
        else:
            _bypass(trial, first, second)
    except (NetlistError, TransformError):
        return None
    if not trial.outputs or not trial.num_gates():
        return None
    return trial


def shrink_netlist(
    netlist: Netlist,
    predicate: Predicate,
    max_trials: int = 2000,
) -> Netlist:
    """Smallest netlist (under greedy reduction) on which ``predicate`` holds.

    ``netlist`` itself must satisfy the predicate; the returned reproducer
    does too and is never larger.  ``max_trials`` bounds total predicate
    evaluations, so a pathological predicate cannot hang the harness.
    """
    current = netlist.copy(netlist.name)
    trials = 0
    progress = True
    while progress and trials < max_trials:
        progress = False
        for edit in list(_reductions(current)):
            if trials >= max_trials:
                break
            trial = _apply(current, edit)
            if trial is None:
                continue
            if trial.num_gates() >= current.num_gates() and len(
                trial.outputs
            ) >= len(current.outputs):
                continue
            trials += 1
            if predicate(trial):
                current = trial
                progress = True
                break
    return current
