#!/usr/bin/env python
"""Mine telemetry traces for composite-cell candidates.

CellE-style library tuning: the optimizer's applied substitutions leave
structural fingerprints in the canonical candidate ids of committed run
traces —

- OS3/IS3 moves each insert a concrete 2-input gate (``new_cell``),
- OS2/IS2 moves with a ``~`` flag insert a discrete inverter between
  the permissible source and a sink pin.

A recurring (cell, inverted-pin) structure is a hint that the library
is missing a single composite cell computing the composed function: a
static-CMOS stack absorbs an input inversion far cheaper than a
discrete inverter.  This tool replays run traces (defaults to the four
committed golden traces), aggregates those structures, resolves IS2
sink pins against the bundled benchmark BLIFs (``--blif-dir``) to find
*which* cell the inverter feeds, and emits a candidate genlib stanza
per structure seen at least ``--min-count`` times: the composed
function as a flat SOP, area estimated as the component cell plus a
discounted inverter, pin data inherited from the components.

The stanzas are *proposals* — meant to be reviewed, characterised
properly, then appended to a real library — so the tool never edits a
genlib in place.

Usage::

    PYTHONPATH=src python tools/propose_cells.py
    PYTHONPATH=src python tools/propose_cells.py trace1.json trace2.json \
        --library my.genlib --min-count 3 -o proposed.genlib
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.library.cell import Library  # noqa: E402
from repro.library.genlib import parse_genlib_file  # noqa: E402
from repro.library.npn import negate_inputs  # noqa: E402
from repro.library.standard import standard_library  # noqa: E402
from repro.logic.truthtable import TruthTable  # noqa: E402
from repro.netlist.blif import parse_blif_file  # noqa: E402
from repro.telemetry import read_trace  # noqa: E402

GOLDEN_TRACES = sorted(
    (REPO / "tests" / "telemetry" / "golden").glob("*.trace.json")
)
DEFAULT_BLIF_DIR = REPO / "benchmarks" / "blif"

#: Fraction of a discrete inverter's area a folded input stack costs.
FOLD_DISCOUNT = 0.6

_PIN_LETTERS = "abcdefgh"


def parse_candidate_id(candidate_id: str) -> dict:
    """Decode the canonical ``kind|target|source1|~|branch|source2|~|cell|const``."""
    fields = candidate_id.split("|")
    if len(fields) != 9:
        raise ValueError(f"malformed candidate id: {candidate_id!r}")
    return {
        "kind": fields[0],
        "target": fields[1],
        "source1": fields[2],
        "invert1": fields[3] == "~",
        "branch": fields[4],
        "source2": fields[5],
        "invert2": fields[6] == "~",
        "new_cell": fields[7] or None,
        "constant": fields[8] or None,
    }


def mine_traces(
    paths: list[Path],
    blif_dir: Path | None,
    library: Library,
) -> tuple[Counter, Counter]:
    """Aggregate applied-substitution structures across run traces.

    Returns ``(inserted, composites)``: counts of inserted OS3/IS3 cells
    by ``(kind, cell, inv1, inv2)``, and counts of composite-cell
    opportunities by ``(cell name, inverted-pin mask)`` — OS3/IS3 input
    inversions plus IS2-inserted inverters resolved to the sink pin they
    feed (needs the original netlist, hence ``blif_dir``).
    """
    inserted: Counter = Counter()
    composites: Counter = Counter()
    for path in paths:
        trace = read_trace(path)
        netlist = None
        if blif_dir is not None:
            blif = Path(blif_dir) / f"{trace.netlist}.blif"
            if blif.exists():
                netlist = parse_blif_file(blif, library)
        for move in trace.moves:
            decoded = parse_candidate_id(move.candidate_id)
            if decoded["new_cell"] is not None:
                key = (
                    decoded["kind"],
                    decoded["new_cell"],
                    decoded["invert1"],
                    decoded["invert2"],
                )
                inserted[key] += 1
                mask = (1 if decoded["invert1"] else 0) | (
                    2 if decoded["invert2"] else 0
                )
                if mask:
                    composites[(decoded["new_cell"], mask)] += 1
            elif (
                decoded["kind"] == "IS2"
                and decoded["invert1"]
                and decoded["branch"]
                and netlist is not None
            ):
                sink_name, _, pin_text = decoded["branch"].rpartition(".")
                if sink_name not in netlist.gates:
                    continue
                sink = netlist.gate(sink_name)
                if sink.is_input:
                    continue
                pin = int(pin_text)
                if pin >= sink.num_inputs:
                    continue
                composites[(sink.cell.name, 1 << pin)] += 1
    return inserted, composites


def _sop(table: TruthTable, names: tuple[str, ...]) -> str:
    """Flat sum-of-products genlib expression of a truth table."""
    terms = []
    for minterm in range(table.nrows):
        if table.value(minterm):
            terms.append("*".join(
                names[v] if (minterm >> v) & 1 else f"!{names[v]}"
                for v in range(table.nvars)
            ))
    return "+".join(terms) if terms else "CONST0"


def propose_stanza(
    library: Library, cell_name: str, mask: int, count: int
) -> str | None:
    """Genlib stanza for ``cell`` with the pins in ``mask`` complemented.

    Returns None when the base cell is unknown or zero-input, or when
    the composed function already exists among same-arity library cells
    (then there is nothing to propose).
    """
    if cell_name not in library:
        return None
    base = library[cell_name]
    if base.num_inputs == 0 or base.num_inputs > len(_PIN_LETTERS):
        return None
    composed = negate_inputs(base.function, mask)
    for existing in library.cells_with_inputs(base.num_inputs):
        if existing.function == composed:
            return None
    inverter = library.inverter()
    folds = bin(mask).count("1")
    area = base.area + FOLD_DISCOUNT * inverter.area * folds
    names = tuple(_PIN_LETTERS[: base.num_inputs])
    suffix = "".join(
        names[i] for i in range(base.num_inputs) if (mask >> i) & 1
    )
    pins = []
    for index, pin in enumerate(base.pins):
        inverted = bool((mask >> index) & 1)
        load = inverter.pins[0].load if inverted else pin.load
        tau = pin.tau + (
            FOLD_DISCOUNT * inverter.pins[0].tau if inverted else 0.0
        )
        pins.append(
            f"  PIN {names[index]} UNKNOWN {load:g} {pin.max_load:g} "
            f"{tau:g} {pin.resistance:g} {tau:g} {pin.resistance:g}"
        )
    lines = [
        f"# proposed from {count} applied substitutions: "
        f"{cell_name} with folded inverter on input(s) {suffix}",
        f"GATE {cell_name}_n{suffix} {area:g} O={_sop(composed, names)};",
    ]
    lines.extend(pins)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="mine run traces for composite-cell candidates"
    )
    parser.add_argument(
        "traces", nargs="*", type=Path,
        help="run-trace JSON files (default: the committed golden traces)",
    )
    parser.add_argument(
        "--library", help="genlib file the traces ran against "
        "(default: built-in)",
    )
    parser.add_argument(
        "--blif-dir", type=Path, default=DEFAULT_BLIF_DIR,
        help="directory of the original BLIFs, used to resolve IS2 sink "
        "cells (default: benchmarks/blif)",
    )
    parser.add_argument(
        "--min-count", type=int, default=2,
        help="structures seen fewer times are ignored (default 2)",
    )
    parser.add_argument(
        "--output", "-o", type=Path,
        help="write proposed stanzas here (default: stdout only)",
    )
    args = parser.parse_args(argv)

    paths = [Path(p) for p in (args.traces or GOLDEN_TRACES)]
    if not paths:
        print("no trace files found")
        return 2
    library = (
        parse_genlib_file(args.library) if args.library else standard_library()
    )
    inserted, composites = mine_traces(paths, args.blif_dir, library)

    print(f"mined {len(paths)} traces:")
    for (kind, cell, inv1, inv2), count in sorted(
        inserted.items(), key=lambda item: (-item[1], item[0])
    ):
        shape = cell
        if inv1 or inv2:
            shape += " (~" + "".join(
                n for n, i in (("a", inv1), ("b", inv2)) if i
            ) + ")"
        print(f"  {count:4d}x {kind:4s} inserts {shape}")
    for (cell, mask), count in sorted(
        composites.items(), key=lambda item: (-item[1], item[0])
    ):
        pins = ",".join(
            _PIN_LETTERS[i] for i in range(8) if (mask >> i) & 1
        )
        print(f"  {count:4d}x inverter folded into {cell} pin(s) {pins}")

    stanzas = []
    for (cell, mask), count in sorted(
        composites.items(), key=lambda item: (-item[1], item[0])
    ):
        if count < args.min_count:
            continue
        stanza = propose_stanza(library, cell, mask, count)
        if stanza is not None and stanza not in stanzas:
            stanzas.append(stanza)

    if not stanzas:
        print("\nno composite-cell candidates cleared the bar "
              f"(min count {args.min_count}, composed function must not "
              "already be in the library)")
        return 0

    body = "# candidate composite cells proposed by tools/propose_cells.py\n"
    body += "# review + characterise before adopting\n\n"
    body += "\n\n".join(stanzas) + "\n"
    print("\n" + body, end="")
    if args.output:
        args.output.write_text(body)
        print(f"# written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
