"""Measure line coverage of ``src/repro`` without pytest-cov.

CI runs the real thing (``pytest --cov=repro --cov-fail-under=N``); this
script exists so the ``N`` can be re-measured in environments where
pytest-cov is not installed.  It drives the full test suite under a
self-disabling ``sys.settrace`` hook: a code object is traced only until
every one of its lines has been seen once, and frames outside
``src/repro`` are never line-traced at all, so the overhead decays as
coverage saturates.

Usage::

    python tools/measure_coverage.py [pytest args...]

Prints per-file and total line coverage.  The number is computed the
same way coverage.py computes plain line coverage (executed lines over
compilable lines from ``co_lines``), so it tracks the CI metric within a
point or two; keep ``--cov-fail-under`` a few points below the printed
total.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
PACKAGE = SRC / "repro"


def executable_lines() -> dict:
    """filename -> set of line numbers that can emit a line event."""
    lines: dict = {}
    for path in sorted(PACKAGE.rglob("*.py")):
        code = compile(path.read_text(), str(path), "exec")
        per_file: set = set()
        stack = [code]
        while stack:
            obj = stack.pop()
            per_file.update(
                line for _s, _e, line in obj.co_lines() if line is not None
            )
            stack.extend(
                const for const in obj.co_consts if hasattr(const, "co_lines")
            )
        lines[str(path)] = per_file
    return lines


def run(pytest_args: list) -> int:
    wanted = executable_lines()
    remaining = {name: set(need) for name, need in wanted.items()}
    seen: dict = {name: set() for name in wanted}

    def local_trace(frame, event, _arg):
        filename = frame.f_code.co_filename
        if event == "line":
            need = remaining.get(filename)
            if need is None:
                return None
            need.discard(frame.f_lineno)
            seen[filename].add(frame.f_lineno)
            if not need:
                return None
        return local_trace

    def global_trace(frame, event, _arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not remaining.get(filename):
            return None
        return local_trace

    import pytest

    sys.path.insert(0, str(SRC))
    sys.settrace(global_trace)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)

    total_need = total_hit = 0
    print(f"{'file':<60} {'lines':>6} {'hit':>6} {'cover':>7}")
    for name in sorted(wanted):
        need, hit = len(wanted[name]), len(seen[name])
        total_need += need
        total_hit += hit
        label = str(Path(name).relative_to(SRC))
        print(f"{label:<60} {need:>6} {hit:>6} {100 * hit / max(need, 1):>6.1f}%")
    print(f"{'TOTAL':<60} {total_need:>6} {total_hit:>6} "
          f"{100 * total_hit / max(total_need, 1):>6.1f}%")
    return int(exit_code)


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:] or ["-x", "-q", "tests"]))
