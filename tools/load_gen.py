"""Concurrent load generator for a running ``powder serve`` instance.

Thin CLI over :mod:`repro.serve.loadgen`: a seeded mix of optimization
jobs drawn from a small pool of generated circuits (so duplicates
exercise the result cache and in-flight coalescing), driven either
closed-loop (fixed concurrency) or open-loop (fixed arrival rate).

    # against an already-running server
    PYTHONPATH=src python tools/load_gen.py --port 8787 --duration 10

    # boot a private server, run the campaign, tear it down
    PYTHONPATH=src python tools/load_gen.py --self-serve --duration 10

    # CI smoke: nonzero cache hits, zero 5xx, everything completes
    PYTHONPATH=src python tools/load_gen.py --self-serve --duration 30 \
        --check --require-cache-hits

Prints the full :class:`~repro.serve.loadgen.LoadGenReport` as JSON on
stdout; with ``--check`` the exit code is the CI verdict.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import ServeError  # noqa: E402
from repro.serve import (  # noqa: E402
    LoadGenConfig,
    ServerConfig,
    ServerThread,
    run_load,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="load-test a powder serve instance"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument(
        "--self-serve", action="store_true",
        help="boot a private server for the campaign (ignores --port)",
    )
    parser.add_argument("--serve-workers", type=int, default=2,
                        help="worker processes for --self-serve")
    parser.add_argument("--mode", choices=("closed", "open"),
                        default="closed")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent clients (closed) / waiters (open)")
    parser.add_argument("--rate", type=float, default=4.0,
                        help="open-loop arrival rate, jobs/second")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="submission window in seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--unique-circuits", type=int, default=6,
                        help="distinct circuits in the mix (smaller = "
                             "more duplicate submissions)")
    parser.add_argument("--min-gates", type=int, default=8)
    parser.add_argument("--max-gates", type=int, default=16)
    parser.add_argument("--patterns", type=int, default=64,
                        help="simulation patterns per job")
    parser.add_argument("--max-rounds", type=int, default=3)
    parser.add_argument("--spec", default=None,
                        help="pipeline spec submitted with every job")
    parser.add_argument("--job-timeout", type=float, default=120.0)
    parser.add_argument("--wait-timeout", type=float, default=180.0)
    parser.add_argument("--output", "-o", default=None,
                        help="also write the report JSON here")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless every submission completed "
                             "with zero 5xx")
    parser.add_argument("--require-cache-hits", action="store_true",
                        help="with --check, also demand >=1 cache hit")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = LoadGenConfig(
            host=args.host,
            port=args.port,
            mode=args.mode,
            clients=args.clients,
            rate=args.rate,
            duration=args.duration,
            seed=args.seed,
            unique_circuits=args.unique_circuits,
            min_gates=args.min_gates,
            max_gates=args.max_gates,
            patterns=args.patterns,
            max_rounds=args.max_rounds,
            spec=args.spec,
            job_timeout=args.job_timeout,
            wait_timeout=args.wait_timeout,
        )
    except ServeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    handle = None
    try:
        if args.self_serve:
            handle = ServerThread(ServerConfig(
                port=0, workers=args.serve_workers,
                log=lambda line: print(line, file=sys.stderr),
            )).start()
            config.port = handle.port
            config.host = handle.config.host
        try:
            report = run_load(config)
        except (ServeError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    finally:
        if handle is not None:
            handle.stop()

    text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")
    if args.check:
        ok = report.ok(require_cache_hits=args.require_cache_hits)
        verdict = "PASS" if ok else "FAIL"
        print(
            f"check: {verdict} ({report.completed}/{report.submitted} "
            f"completed, {report.cache_hits} cache hits, "
            f"{report.server_5xx} 5xx)",
            file=sys.stderr,
        )
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
