"""Profile one optimizer run and report where the time goes.

The perf work on the packed kernels and the triage permissibility engine
is steered by exactly two views: the optimizer's own per-phase wall
clock (candidates / select / timing / atpg / apply) and a cProfile
ranking of the functions underneath the hot phase.  This script prints
both for one run over a bundled benchmark, so a regression (or a
proposed optimization) can be localized in seconds:

    PYTHONPATH=src python tools/profile_hotpath.py ttt2
    PYTHONPATH=src python tools/profile_hotpath.py rd53 --mode podem --top 30
    PYTHONPATH=src python tools/profile_hotpath.py ttt2 --sort cumulative \
        --dump /tmp/ttt2.pstats   # then e.g. snakeviz /tmp/ttt2.pstats
    PYTHONPATH=src python tools/profile_hotpath.py ttt2 --windowed --jobs 4

With ``--windowed`` the run goes through :class:`WindowedOptimizer`; the
pool's startup cost shows up as its own ``spawn`` phase and is subtracted
from the wall clock used for phase shares, so worker spawn overhead is
never billed as optimizer time.

The default configuration mirrors benchmarks/BENCH_kernels.json (1024
patterns, repeat=15, max_rounds=6, backtrack_limit=10000) so printed
numbers are directly comparable to the committed records.  Wall-clock on
a shared box wanders +/-20%; trust the relative ranking, and pin
absolute claims with a best-of-N loop (``--repeat``).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.bench.suite import build_benchmark  # noqa: E402
from repro.library.standard import standard_library  # noqa: E402
from repro.transform.optimizer import (  # noqa: E402
    OptimizeOptions,
    PowerOptimizer,
)


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "benchmark",
        nargs="?",
        default="ttt2",
        help="bundled benchmark name (benchmarks/blif/<name>.blif)",
    )
    parser.add_argument("--patterns", type=int, default=1024)
    parser.add_argument(
        "--mode",
        default="triage",
        choices=["triage", "podem", "both"],
        help="permissibility engine (default: triage)",
    )
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument(
        "--windowed",
        action="store_true",
        help="profile the windowed flow instead of the flat optimizer",
    )
    parser.add_argument("--jobs", type=int, default=1,
                        help="windowed worker-pool size (implies --windowed)")
    parser.add_argument("--window-size", type=int, default=80,
                        dest="window_size")
    parser.add_argument("--window-radius", type=int, default=3,
                        dest="window_radius")
    parser.add_argument("--repeat", type=int, default=1, dest="runs",
                        help="profile the best (fastest) of N runs")
    parser.add_argument("--top", type=int, default=20,
                        help="profile rows to print (default: 20)")
    parser.add_argument(
        "--sort",
        default="tottime",
        choices=["tottime", "cumulative", "ncalls"],
    )
    parser.add_argument("--dump", metavar="FILE",
                        help="also write raw pstats data to FILE")
    return parser.parse_args(argv)


def one_run(args):
    """(wall seconds, phase seconds, moves, profile) for one fresh run."""
    netlist = build_benchmark(args.benchmark, standard_library())
    windowed = args.windowed or args.jobs > 1
    options = OptimizeOptions(
        num_patterns=args.patterns,
        repeat=15,
        max_rounds=args.rounds,
        backtrack_limit=10_000,
        permissibility=args.mode,
        windowed=windowed,
        jobs=args.jobs,
        window_size=args.window_size,
        window_radius=args.window_radius,
    )
    if windowed:
        from repro.transform.windowed import WindowedOptimizer

        optimizer = WindowedOptimizer(netlist, options)
    else:
        optimizer = PowerOptimizer(netlist, options)
    profile = cProfile.Profile()
    start = time.perf_counter()
    profile.enable()
    result = optimizer.run()
    profile.disable()
    wall = time.perf_counter() - start
    phases = dict(optimizer.phase_seconds)
    # Pool startup is environment cost, not optimizer work: keep the
    # phase row but take it out of the wall clock the shares divide by.
    wall -= phases.get("spawn", 0.0)
    return wall, phases, len(result.moves), profile


def main(argv=None) -> int:
    args = parse_args(argv)
    best = None
    for _ in range(max(1, args.runs)):
        run = one_run(args)
        if best is None or run[0] < best[0]:
            best = run
    wall, phases, moves, profile = best

    flow = (
        f"windowed jobs={args.jobs}"
        if args.windowed or args.jobs > 1
        else "flat"
    )
    print(f"{args.benchmark}: {wall:.3f}s wall (profiled, spawn excluded), "
          f"{moves} moves, mode={args.mode}, flow={flow}")
    print("phase wall clock:")
    for phase, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
        share = seconds / wall if wall else 0.0
        print(f"  {phase:12s} {seconds:7.3f}s  {share:5.1%}")
    print()

    stats = pstats.Stats(profile, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"raw pstats written to {args.dump}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
