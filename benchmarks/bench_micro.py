"""Micro-benchmarks of the substrates.

These time the building blocks the optimizer's inner loop lives on:
bit-parallel simulation, observability extraction, candidate generation,
the ATPG permissibility oracle, and technology mapping.  They are honest
pytest-benchmark measurements (multiple rounds), unlike the table benches
which run their experiment once.
"""

import pytest

from repro.atpg.fault import all_stem_faults
from repro.atpg.faultsim import fault_simulate
from repro.atpg.podem import Podem
from repro.bench.suite import build_benchmark
from repro.equiv.checker import check_equivalent
from repro.library.standard import standard_library
from repro.netlist.simulate import SimState, random_patterns
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.synth.flow import build_subject_graph
from repro.synth.mapper import MapOptions, technology_map
from repro.transform.candidates import CandidateOptions, generate_candidates
from repro.bench.pla import random_pla


@pytest.fixture(scope="module")
def lib():
    return standard_library()


@pytest.fixture(scope="module")
def circuit(lib):
    return build_benchmark("alu2", lib)


@pytest.fixture(scope="module")
def sim(circuit):
    return SimState(circuit, random_patterns(circuit.input_names, 2048, seed=1))


def test_full_simulation(benchmark, sim):
    """2048-pattern full re-simulation of alu2."""
    benchmark(sim.resimulate_all)


def test_stem_observability(benchmark, circuit, sim):
    """Observability masks for every stem (candidate-generation kernel)."""
    gates = [g for g in circuit.logic_gates()]

    def run():
        for gate in gates:
            sim.stem_observability(gate)

    benchmark(run)


def test_fault_simulation(benchmark, circuit, sim):
    """Parallel-pattern fault simulation of all stem faults."""
    faults = all_stem_faults(circuit)
    benchmark(fault_simulate, sim, faults)


def test_podem_full_fault_list(benchmark, circuit):
    """PODEM over every stem fault of alu2."""
    faults = all_stem_faults(circuit)

    def run():
        detected = 0
        for fault in faults:
            if Podem(circuit, fault, backtrack_limit=5000).run().testable:
                detected += 1
        return detected

    detected = benchmark.pedantic(run, rounds=1, iterations=1)
    assert detected > 0


def test_equivalence_check(benchmark, circuit):
    """Miter + justification on a self-copy (the permissibility oracle)."""
    copy = circuit.copy("copy")
    result = benchmark.pedantic(
        check_equivalent, args=(circuit, copy), rounds=1, iterations=1
    )
    assert result.equal


def test_candidate_generation(benchmark, circuit):
    """One full candidate-generation round on alu2."""
    estimator = PowerEstimator(
        circuit, SimulationProbability(circuit, num_patterns=1024, seed=2)
    )
    candidates = benchmark.pedantic(
        generate_candidates,
        args=(estimator, CandidateOptions()),
        rounds=1,
        iterations=1,
    )
    assert candidates


class TestIncrementalEngine:
    """Old from-scratch paths vs the incremental engine, per circuit size.

    Pairs of benchmarks sharing a prefix measure the same work: the
    ``_fresh`` variant pays the full rebuild the legacy loop paid per
    round/move, the ``_incremental`` variant pays what the persistent
    engine pays.  ``BENCH_incremental.json`` records the measured ratios.
    """

    CIRCUITS = ("rd53", "alu2")

    @pytest.fixture(scope="class", params=CIRCUITS)
    def sized_circuit(self, request, lib):
        return build_benchmark(request.param, lib)

    @pytest.fixture(scope="class")
    def sized_estimator(self, sized_circuit):
        return PowerEstimator(
            sized_circuit,
            SimulationProbability(sized_circuit, num_patterns=1024, seed=2),
        )

    # -- observability ----------------------------------------------------
    # Both variants produce what one candidate round consumes: a stem mask
    # per driving stem plus a branch mask per branch of every multi-fanout
    # stem.  The legacy kernel pays one flip-propagation pass per mask.

    @staticmethod
    def _consumed_masks(circuit):
        stems = [
            g for g in circuit.gates.values()
            if not g.is_input and g.fanout_count()
        ]
        branches = [
            (sink, pin)
            for g in circuit.gates.values()
            if g.fanout_count() >= 2
            for sink, pin in g.fanouts
        ]
        return stems, branches

    def test_observability_per_stem(self, benchmark, sized_circuit, sized_estimator):
        """Legacy kernel: one flip-propagation pass per stem and branch."""
        state = sized_estimator.engine.sim
        stems, branches = self._consumed_masks(sized_circuit)

        def run():
            for gate in stems:
                state.stem_observability(gate)
            for sink, pin in branches:
                state.branch_observability(sink, pin)

        benchmark(run)

    def test_observability_batched(self, benchmark, sized_circuit, sized_estimator):
        """Batched kernel: one reverse sweep; branch masks are a by-product."""
        from repro.netlist.observability import ObservabilityMaps

        state = sized_estimator.engine.sim
        _stems, branches = self._consumed_masks(sized_circuit)

        def run():
            maps = ObservabilityMaps(state)
            for sink, pin in branches:
                maps.branch(sink, pin)
            return maps

        benchmark(run)

    # -- candidate generation ---------------------------------------------
    def test_candidates_fresh(self, benchmark, sized_estimator):
        """Legacy loop: a from-scratch workspace every round."""
        benchmark.pedantic(
            generate_candidates,
            args=(sized_estimator, CandidateOptions()),
            rounds=1,
            iterations=1,
        )

    def test_candidates_warm_workspace(self, benchmark, sized_estimator):
        """Incremental loop: a persistent workspace generating again."""
        from repro.transform.candidates import CandidateWorkspace

        workspace = CandidateWorkspace(sized_estimator)
        workspace.generate(CandidateOptions())
        benchmark.pedantic(
            workspace.generate,
            args=(CandidateOptions(),),
            rounds=1,
            iterations=1,
        )

    # -- static timing analysis -------------------------------------------
    def test_sta_rebuild(self, benchmark, sized_circuit):
        """Legacy loop: full STA reconstruction after a move."""
        from repro.timing.analysis import TimingAnalysis

        benchmark(lambda: TimingAnalysis(sized_circuit).circuit_delay)

    def test_sta_incremental_update(self, benchmark, sized_circuit):
        """Incremental loop: in-place update for a one-gate dirty set."""
        from repro.timing.analysis import TimingAnalysis

        timing = TimingAnalysis(sized_circuit)
        root = next(iter(sized_circuit.logic_gates()))
        benchmark(lambda: timing.update_after_edit([root]))

    def test_delay_check_trial_copy(self, benchmark, sized_circuit, sized_estimator):
        """Legacy check_delay: copy the netlist, apply, rebuild STA."""
        from repro.timing.analysis import TimingAnalysis
        from repro.transform.substitution import apply_to_copy

        substitution = self._first_applicable(sized_circuit, sized_estimator)

        def run():
            trial, _ = apply_to_copy(sized_circuit, substitution)
            return TimingAnalysis(trial).circuit_delay

        benchmark(run)

    def test_delay_check_what_if(self, benchmark, sized_circuit, sized_estimator):
        """Incremental check_delay: in-place what-if evaluation."""
        from repro.timing.analysis import TimingAnalysis

        substitution = self._first_applicable(sized_circuit, sized_estimator)
        timing = TimingAnalysis(sized_circuit)
        verdict = benchmark(lambda: timing.what_if(substitution))
        assert verdict is not None

    @staticmethod
    def _first_applicable(circuit, estimator):
        from repro.errors import NetlistError, TransformError
        from repro.transform.substitution import apply_to_copy

        for candidate in generate_candidates(estimator, CandidateOptions()):
            try:
                apply_to_copy(circuit, candidate.substitution)
            except (TransformError, NetlistError):
                continue
            return candidate.substitution
        raise RuntimeError("no applicable candidate")


class TestTracingOverhead:
    """Telemetry cost: a traced run vs. the default untraced run.

    The untraced variant is the acceptance bar — with ``trace=None``
    every optimizer hook is a single attribute test, so this measures
    the instrumented loop's steady-state cost.  The traced variant bounds
    the full recording overhead (expected low single-digit percent).
    """

    @pytest.fixture(scope="class")
    def small_circuit(self, lib):
        return build_benchmark("rd53", lib)

    @staticmethod
    def _optimize(circuit, tracer):
        from repro.transform.optimizer import OptimizeOptions, power_optimize

        working = circuit.copy("bench_copy")
        options = OptimizeOptions(
            num_patterns=512, max_rounds=2, trace=tracer
        )
        return power_optimize(working, options)

    def test_optimize_untraced(self, benchmark, small_circuit):
        result = benchmark.pedantic(
            self._optimize, args=(small_circuit, None), rounds=3, iterations=1
        )
        assert result.trace is None

    def test_optimize_traced(self, benchmark, small_circuit):
        from repro.telemetry import Tracer

        result = benchmark.pedantic(
            lambda: self._optimize(small_circuit, Tracer()),
            rounds=3,
            iterations=1,
        )
        assert result.trace is not None and result.trace.moves


class TestPassManagerOverhead:
    """Pipeline-scheduling cost vs driving the engine directly (ttt2).

    ``power_optimize`` now routes through ``OptimizationContext`` +
    ``PassManager``; the scheduling layer only adds configure/lazy-build/
    invalidate bookkeeping around one engine run, so its overhead budget
    is <2% of the direct ``PowerOptimizer.run()`` wall time.
    """

    OVERHEAD_BUDGET = 0.02

    @pytest.fixture(scope="class")
    def ttt2(self, lib):
        return build_benchmark("ttt2", lib)

    @staticmethod
    def _options():
        from repro.transform.optimizer import OptimizeOptions

        return OptimizeOptions(num_patterns=512)

    def _direct(self, circuit):
        from repro.transform.optimizer import PowerOptimizer

        return PowerOptimizer(circuit.copy("direct"), self._options()).run()

    def _pipeline(self, circuit):
        from repro.transform.optimizer import power_optimize

        return power_optimize(circuit.copy("piped"), self._options())

    def test_engine_direct(self, benchmark, ttt2):
        result = benchmark.pedantic(
            self._direct, args=(ttt2,), rounds=3, iterations=1
        )
        assert result.moves

    def test_engine_via_pipeline(self, benchmark, ttt2):
        result = benchmark.pedantic(
            self._pipeline, args=(ttt2,), rounds=3, iterations=1
        )
        assert result.moves

    def test_overhead_within_budget(self, ttt2):
        import time

        def best_of(fn, rounds=3):
            best = float("inf")
            for _ in range(rounds):
                tick = time.perf_counter()
                result = fn(ttt2)
                best = min(best, time.perf_counter() - tick)
                assert result.moves
            return best

        direct = best_of(self._direct)
        piped = best_of(self._pipeline)
        # Best-of-3 de-noises; the 50ms absolute slack guards against
        # scheduler hiccups dominating on a fast run.
        assert piped <= direct * (1.0 + self.OVERHEAD_BUDGET) + 0.05, (
            f"pipeline run {piped:.3f}s vs direct {direct:.3f}s exceeds "
            f"the {self.OVERHEAD_BUDGET:.0%} PassManager overhead budget"
        )


def test_technology_mapping(benchmark, lib):
    """Synthesis front-end + mapper on a 40-cube PLA."""
    pla = random_pla("bench", 12, 8, 40, seed=77)
    graph = build_subject_graph(pla.input_names, pla.on, name="bench")

    def run():
        return technology_map(graph, lib, MapOptions(mode="power"))

    netlist = benchmark.pedantic(run, rounds=1, iterations=1)
    assert netlist.num_gates() > 0


def test_sat_oracle_equivalence(benchmark, circuit):
    """DPLL SAT miter check on an alu2 self-copy (cross-check engine)."""
    from repro.sat.oracle import sat_check_equivalent

    copy = circuit.copy("sat_copy")
    result = benchmark.pedantic(
        sat_check_equivalent, args=(circuit, copy), rounds=1, iterations=1
    )
    assert result.equal


def test_bdd_oracle_equivalence(benchmark, circuit):
    """Global-BDD comparison on an alu2 self-copy (fallback engine)."""
    from repro.equiv.checker import _bdd_verdict

    copy = circuit.copy("bdd_copy")
    result = benchmark.pedantic(
        _bdd_verdict, args=(circuit, copy, 2_000_000), rounds=1, iterations=1
    )
    assert result is not None and result.equal
