"""Micro-benchmarks of the substrates.

These time the building blocks the optimizer's inner loop lives on:
bit-parallel simulation, observability extraction, candidate generation,
the ATPG permissibility oracle, and technology mapping.  They are honest
pytest-benchmark measurements (multiple rounds), unlike the table benches
which run their experiment once.
"""

import pytest

from repro.atpg.fault import all_stem_faults
from repro.atpg.faultsim import fault_simulate
from repro.atpg.podem import Podem
from repro.bench.suite import build_benchmark
from repro.equiv.checker import check_equivalent
from repro.library.standard import standard_library
from repro.netlist.simulate import SimState, random_patterns
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.synth.flow import build_subject_graph
from repro.synth.mapper import MapOptions, technology_map
from repro.transform.candidates import CandidateOptions, generate_candidates
from repro.bench.pla import random_pla


@pytest.fixture(scope="module")
def lib():
    return standard_library()


@pytest.fixture(scope="module")
def circuit(lib):
    return build_benchmark("alu2", lib)


@pytest.fixture(scope="module")
def sim(circuit):
    return SimState(circuit, random_patterns(circuit.input_names, 2048, seed=1))


def test_full_simulation(benchmark, sim):
    """2048-pattern full re-simulation of alu2."""
    benchmark(sim.resimulate_all)


def test_stem_observability(benchmark, circuit, sim):
    """Observability masks for every stem (candidate-generation kernel)."""
    gates = [g for g in circuit.logic_gates()]

    def run():
        for gate in gates:
            sim.stem_observability(gate)

    benchmark(run)


def test_fault_simulation(benchmark, circuit, sim):
    """Parallel-pattern fault simulation of all stem faults."""
    faults = all_stem_faults(circuit)
    benchmark(fault_simulate, sim, faults)


def test_podem_full_fault_list(benchmark, circuit):
    """PODEM over every stem fault of alu2."""
    faults = all_stem_faults(circuit)

    def run():
        detected = 0
        for fault in faults:
            if Podem(circuit, fault, backtrack_limit=5000).run().testable:
                detected += 1
        return detected

    detected = benchmark.pedantic(run, rounds=1, iterations=1)
    assert detected > 0


def test_equivalence_check(benchmark, circuit):
    """Miter + justification on a self-copy (the permissibility oracle)."""
    copy = circuit.copy("copy")
    result = benchmark.pedantic(
        check_equivalent, args=(circuit, copy), rounds=1, iterations=1
    )
    assert result.equal


def test_candidate_generation(benchmark, circuit):
    """One full candidate-generation round on alu2."""
    estimator = PowerEstimator(
        circuit, SimulationProbability(circuit, num_patterns=1024, seed=2)
    )
    candidates = benchmark.pedantic(
        generate_candidates,
        args=(estimator, CandidateOptions()),
        rounds=1,
        iterations=1,
    )
    assert candidates


def test_technology_mapping(benchmark, lib):
    """Synthesis front-end + mapper on a 40-cube PLA."""
    pla = random_pla("bench", 12, 8, 40, seed=77)
    graph = build_subject_graph(pla.input_names, pla.on, name="bench")

    def run():
        return technology_map(graph, lib, MapOptions(mode="power"))

    netlist = benchmark.pedantic(run, rounds=1, iterations=1)
    assert netlist.num_gates() > 0


def test_sat_oracle_equivalence(benchmark, circuit):
    """DPLL SAT miter check on an alu2 self-copy (cross-check engine)."""
    from repro.sat.oracle import sat_check_equivalent

    copy = circuit.copy("sat_copy")
    result = benchmark.pedantic(
        sat_check_equivalent, args=(circuit, copy), rounds=1, iterations=1
    )
    assert result.equal


def test_bdd_oracle_equivalence(benchmark, circuit):
    """Global-BDD comparison on an alu2 self-copy (fallback engine)."""
    from repro.equiv.checker import _bdd_verdict

    copy = circuit.copy("bdd_copy")
    result = benchmark.pedantic(
        _bdd_verdict, args=(circuit, copy, 2_000_000), rounds=1, iterations=1
    )
    assert result is not None and result.equal
