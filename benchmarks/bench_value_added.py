"""The paper's value-added claim (§5).

"Power consumption can be significantly reduced in this logic synthesis
phase even after previous power-oriented logic optimization and mapping.
Thus, the new approach is value-added to existing low-power techniques."

This bench measures the four corners for a set of circuits:

    area-mapped             power-mapped
    area-mapped + POWDER    power-mapped + POWDER

and asserts the claim's shape: POWDER reduces power on *both* starting
points, and the combination (power-aware mapping, then POWDER) is the best
overall — structural rewiring finds savings mapping cannot.
"""

import pytest

from benchmarks.conftest import BENCH_CONFIG, once
from repro.bench.suite import build_benchmark
from repro.experiments.common import initial_metrics
from repro.library.standard import standard_library
from repro.transform.optimizer import power_optimize

CIRCUITS = ("rd53", "misex1", "Z5xp1", "alu2")


def run_corner(name, map_mode, optimize):
    library = standard_library()
    netlist = build_benchmark(name, library, map_mode=map_mode)
    power, _area, _delay = initial_metrics(netlist, BENCH_CONFIG)
    if not optimize:
        return power
    result = power_optimize(
        netlist, BENCH_CONFIG.optimizer_options(None)
    )
    return result.final_power


@pytest.mark.parametrize("circuit", CIRCUITS)
def test_value_added(benchmark, circuit):
    def run():
        return {
            ("area", False): run_corner(circuit, "area", False),
            ("power", False): run_corner(circuit, "power", False),
            ("area", True): run_corner(circuit, "area", True),
            ("power", True): run_corner(circuit, "power", True),
        }

    corners = once(benchmark, run)
    print(
        f"\n  {circuit}: area-map {corners[('area', False)]:.2f} "
        f"(+POWDER {corners[('area', True)]:.2f}), "
        f"power-map {corners[('power', False)]:.2f} "
        f"(+POWDER {corners[('power', True)]:.2f})"
    )
    # POWDER reduces power from either starting point...
    assert corners[("area", True)] <= corners[("area", False)] + 1e-9
    assert corners[("power", True)] <= corners[("power", False)] + 1e-9
    # ...and the paper's claim: it adds savings on top of power-aware
    # mapping (strict improvement somewhere in the suite; per-circuit we
    # only require non-degradation, asserted above).


def test_value_added_aggregate(benchmark):
    def run():
        totals = {"pm": 0.0, "pm_powder": 0.0}
        for circuit in CIRCUITS:
            totals["pm"] += run_corner(circuit, "power", False)
            totals["pm_powder"] += run_corner(circuit, "power", True)
        return totals

    totals = once(benchmark, run)
    reduction = 100 * (1 - totals["pm_powder"] / totals["pm"])
    print(
        f"\n  aggregate: POWDER on top of power-aware mapping saves "
        f"{reduction:.1f}% (paper: 26.1% over its POSE baselines)"
    )
    assert reduction > 5.0
