"""Ablation benches for the design choices called out in DESIGN.md.

- probability-engine choice (Monte-Carlo vs exact BDD vs independence
  propagation): accuracy and cost,
- candidate-class ablation: how much each substitution class contributes
  when enabled alone,
- pattern-count sensitivity of the optimizer's outcome.
"""

import pytest

from benchmarks.conftest import once
from repro.bench.suite import build_benchmark
from repro.library.standard import standard_library
from repro.power.estimate import PowerEstimator
from repro.power.probability import (
    ExactBddProbability,
    PropagationProbability,
    SimulationProbability,
)
from repro.transform.candidates import CandidateOptions
from repro.transform.optimizer import OptimizeOptions, power_optimize


@pytest.fixture(scope="module")
def lib():
    return standard_library()


@pytest.fixture(scope="module")
def circuit(lib):
    return build_benchmark("misex1", lib)


class TestProbabilityEngineAblation:
    def test_monte_carlo(self, benchmark, circuit):
        benchmark(
            lambda: SimulationProbability(
                circuit, num_patterns=2048, seed=3
            )
        )

    def test_exact_bdd(self, benchmark, circuit):
        benchmark(lambda: ExactBddProbability(circuit))

    def test_propagation(self, benchmark, circuit):
        benchmark(lambda: PropagationProbability(circuit))

    def test_accuracy_report(self, benchmark, circuit):
        """Print the estimator-accuracy ablation (timing the exact engine
        so the test also runs under --benchmark-only)."""
        exact = benchmark(lambda: ExactBddProbability(circuit))
        monte = SimulationProbability(circuit, num_patterns=2048, seed=3)
        prop = PropagationProbability(circuit)
        worst_mc = worst_prop = 0.0
        for name in circuit.gates:
            p = exact.probability(name)
            worst_mc = max(worst_mc, abs(monte.probability(name) - p))
            worst_prop = max(worst_prop, abs(prop.probability(name) - p))
        print(
            f"\nprobability ablation on {circuit.name}: "
            f"max |err| Monte-Carlo(2048) = {worst_mc:.4f}, "
            f"independence propagation = {worst_prop:.4f}"
        )
        assert worst_mc < 0.05
        # Reconvergence bias makes propagation strictly worse here.
        assert worst_prop >= worst_mc


class TestClassAblation:
    @pytest.mark.parametrize("kind", ["OS2", "IS2", "OS3", "IS3"])
    def test_single_class(self, benchmark, lib, kind):
        base = build_benchmark("misex1", lib)
        candidates = CandidateOptions(
            enable_os2=kind == "OS2",
            enable_is2=kind == "IS2",
            enable_os3=kind == "OS3",
            enable_is3=kind == "IS3",
        )
        options = OptimizeOptions(
            num_patterns=1024,
            repeat=10,
            max_rounds=3,
            max_moves=20,
            candidates=candidates,
        )
        result = once(benchmark, power_optimize, base.copy(kind), options)
        print(
            f"\n  {kind}-only: {result.power_reduction_percent:5.1f}% power "
            f"reduction in {len(result.moves)} moves"
        )
        assert result.final_power <= result.initial_power + 1e-9


class TestPatternSensitivity:
    @pytest.mark.parametrize("patterns", [256, 1024, 4096])
    def test_pattern_count(self, benchmark, lib, patterns):
        base = build_benchmark("rd53", lib)
        options = OptimizeOptions(
            num_patterns=patterns, repeat=10, max_rounds=3, max_moves=15
        )
        result = once(benchmark, power_optimize, base, options)
        assert result.final_power <= result.initial_power + 1e-9


class TestSeedRobustness:
    """The optimizer's outcome should be stable across pattern seeds —
    the don't-cares it exploits are properties of the logic, not of the
    sample (the exact ATPG check filters sampling artifacts)."""

    def test_seed_stability(self, benchmark, lib):
        def run():
            reductions = []
            for seed in (1, 7, 42):
                base = build_benchmark("misex1", lib)
                result = power_optimize(
                    base,
                    OptimizeOptions(
                        num_patterns=1024, repeat=10, max_rounds=3,
                        max_moves=20, seed=seed,
                    ),
                )
                reductions.append(result.power_reduction_percent)
            return reductions

        reductions = once(benchmark, run)
        print(f"\n  misex1 reductions across seeds: "
              + ", ".join(f"{r:.1f}%" for r in reductions))
        assert min(reductions) > 0
        assert max(reductions) - min(reductions) < 15.0


class TestRepeatParameter:
    """Figure 5's `repeat` knob: how many substitutions run on one set of
    candidates before regenerating.  The paper introduced it "to increase
    efficiency"; this ablation shows the cost/quality trade."""

    @pytest.mark.parametrize("repeat", [1, 5, 25])
    def test_repeat(self, benchmark, lib, repeat):
        base = build_benchmark("Z5xp1", lib)
        options = OptimizeOptions(
            num_patterns=1024, repeat=repeat, max_rounds=40, max_moves=30
        )
        result = once(benchmark, power_optimize, base, options)
        print(
            f"\n  repeat={repeat}: {result.power_reduction_percent:.1f}% in "
            f"{len(result.moves)} moves, {result.rounds} rounds, "
            f"{result.runtime_seconds:.1f}s"
        )
        assert result.final_power <= result.initial_power + 1e-9


class TestIterateMapPowder:
    """Alternating mapping and POWDER: does a remap after POWDER expose
    further structural savings?  (A modern follow-up question — the paper
    runs one POWDER pass after one mapping.)"""

    def test_two_iterations(self, benchmark, lib):
        from repro.synth.resynth import resynthesize
        from repro.equiv.checker import check_equivalent

        def run():
            netlist = build_benchmark("Z5xp1", lib)
            reference = netlist.copy("ref")
            opts = OptimizeOptions(
                num_patterns=1024, repeat=15, max_rounds=4, max_moves=30
            )
            first = power_optimize(netlist, opts)
            remapped = resynthesize(netlist)
            second = power_optimize(remapped, opts)
            assert check_equivalent(reference, remapped).equal
            return first, second, remapped

        first, second, remapped = once(benchmark, run)
        print(
            f"\n  pass 1: {first.power_reduction_percent:.1f}% "
            f"(final {first.final_power:.2f}); after remap, pass 2 finds "
            f"another {second.power_reduction_percent:.1f}% "
            f"(final {second.final_power:.2f})"
        )
        # Remapping must not destroy pass-1's result catastrophically, and
        # pass 2 can only improve its own starting point.
        assert second.final_power <= second.initial_power + 1e-9
