"""Ablation benches for the design choices called out in DESIGN.md.

- probability-engine choice (Monte-Carlo vs exact BDD vs independence
  propagation): accuracy and cost,
- candidate-class ablation: how much each substitution class contributes
  when enabled alone,
- pattern-count sensitivity of the optimizer's outcome,
- the pipeline head-to-head judge (``python benchmarks/bench_ablation.py``):
  ≥ 4 pipeline specs × 2 cell libraries over the four golden circuits,
  every result oracle-verified, written to ``BENCH_ablation.json``.
"""

import argparse
import datetime
import json
import sys
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # script mode: PYTHONPATH-free bootstrap
    sys.path.insert(0, str(_REPO))
    sys.path.insert(0, str(_REPO / "src"))

import pytest  # noqa: E402

from benchmarks.conftest import once  # noqa: E402
from repro.bench.suite import build_benchmark  # noqa: E402
from repro.fuzz.oracle import check_equivalence_tiers  # noqa: E402
from repro.library.genlib import parse_genlib_file  # noqa: E402
from repro.library.standard import standard_library  # noqa: E402
from repro.pipeline import run_pipeline  # noqa: E402
from repro.power.estimate import PowerEstimator  # noqa: E402
from repro.power.probability import (  # noqa: E402
    ExactBddProbability,
    PropagationProbability,
    SimulationProbability,
)
from repro.timing.analysis import TimingAnalysis  # noqa: E402
from repro.transform.candidates import CandidateOptions  # noqa: E402
from repro.transform.optimizer import (  # noqa: E402
    OptimizeOptions,
    power_optimize,
)


@pytest.fixture(scope="module")
def lib():
    return standard_library()


@pytest.fixture(scope="module")
def circuit(lib):
    return build_benchmark("misex1", lib)


class TestProbabilityEngineAblation:
    def test_monte_carlo(self, benchmark, circuit):
        benchmark(
            lambda: SimulationProbability(
                circuit, num_patterns=2048, seed=3
            )
        )

    def test_exact_bdd(self, benchmark, circuit):
        benchmark(lambda: ExactBddProbability(circuit))

    def test_propagation(self, benchmark, circuit):
        benchmark(lambda: PropagationProbability(circuit))

    def test_accuracy_report(self, benchmark, circuit):
        """Print the estimator-accuracy ablation (timing the exact engine
        so the test also runs under --benchmark-only)."""
        exact = benchmark(lambda: ExactBddProbability(circuit))
        monte = SimulationProbability(circuit, num_patterns=2048, seed=3)
        prop = PropagationProbability(circuit)
        worst_mc = worst_prop = 0.0
        for name in circuit.gates:
            p = exact.probability(name)
            worst_mc = max(worst_mc, abs(monte.probability(name) - p))
            worst_prop = max(worst_prop, abs(prop.probability(name) - p))
        print(
            f"\nprobability ablation on {circuit.name}: "
            f"max |err| Monte-Carlo(2048) = {worst_mc:.4f}, "
            f"independence propagation = {worst_prop:.4f}"
        )
        assert worst_mc < 0.05
        # Reconvergence bias makes propagation strictly worse here.
        assert worst_prop >= worst_mc


class TestClassAblation:
    @pytest.mark.parametrize("kind", ["OS2", "IS2", "OS3", "IS3"])
    def test_single_class(self, benchmark, lib, kind):
        base = build_benchmark("misex1", lib)
        candidates = CandidateOptions(
            enable_os2=kind == "OS2",
            enable_is2=kind == "IS2",
            enable_os3=kind == "OS3",
            enable_is3=kind == "IS3",
        )
        options = OptimizeOptions(
            num_patterns=1024,
            repeat=10,
            max_rounds=3,
            max_moves=20,
            candidates=candidates,
        )
        result = once(benchmark, power_optimize, base.copy(kind), options)
        print(
            f"\n  {kind}-only: {result.power_reduction_percent:5.1f}% power "
            f"reduction in {len(result.moves)} moves"
        )
        assert result.final_power <= result.initial_power + 1e-9


class TestPatternSensitivity:
    @pytest.mark.parametrize("patterns", [256, 1024, 4096])
    def test_pattern_count(self, benchmark, lib, patterns):
        base = build_benchmark("rd53", lib)
        options = OptimizeOptions(
            num_patterns=patterns, repeat=10, max_rounds=3, max_moves=15
        )
        result = once(benchmark, power_optimize, base, options)
        assert result.final_power <= result.initial_power + 1e-9


class TestSeedRobustness:
    """The optimizer's outcome should be stable across pattern seeds —
    the don't-cares it exploits are properties of the logic, not of the
    sample (the exact ATPG check filters sampling artifacts)."""

    def test_seed_stability(self, benchmark, lib):
        def run():
            reductions = []
            for seed in (1, 7, 42):
                base = build_benchmark("misex1", lib)
                result = power_optimize(
                    base,
                    OptimizeOptions(
                        num_patterns=1024, repeat=10, max_rounds=3,
                        max_moves=20, seed=seed,
                    ),
                )
                reductions.append(result.power_reduction_percent)
            return reductions

        reductions = once(benchmark, run)
        print(f"\n  misex1 reductions across seeds: "
              + ", ".join(f"{r:.1f}%" for r in reductions))
        assert min(reductions) > 0
        assert max(reductions) - min(reductions) < 15.0


class TestRepeatParameter:
    """Figure 5's `repeat` knob: how many substitutions run on one set of
    candidates before regenerating.  The paper introduced it "to increase
    efficiency"; this ablation shows the cost/quality trade."""

    @pytest.mark.parametrize("repeat", [1, 5, 25])
    def test_repeat(self, benchmark, lib, repeat):
        base = build_benchmark("Z5xp1", lib)
        options = OptimizeOptions(
            num_patterns=1024, repeat=repeat, max_rounds=40, max_moves=30
        )
        result = once(benchmark, power_optimize, base, options)
        print(
            f"\n  repeat={repeat}: {result.power_reduction_percent:.1f}% in "
            f"{len(result.moves)} moves, {result.rounds} rounds, "
            f"{result.runtime_seconds:.1f}s"
        )
        assert result.final_power <= result.initial_power + 1e-9


class TestIterateMapPowder:
    """Alternating mapping and POWDER: does a remap after POWDER expose
    further structural savings?  (A modern follow-up question — the paper
    runs one POWDER pass after one mapping.)"""

    def test_two_iterations(self, benchmark, lib):
        from repro.synth.resynth import resynthesize
        from repro.equiv.checker import check_equivalent

        def run():
            netlist = build_benchmark("Z5xp1", lib)
            reference = netlist.copy("ref")
            opts = OptimizeOptions(
                num_patterns=1024, repeat=15, max_rounds=4, max_moves=30
            )
            first = power_optimize(netlist, opts)
            remapped = resynthesize(netlist)
            second = power_optimize(remapped, opts)
            assert check_equivalent(reference, remapped).equal
            return first, second, remapped

        first, second, remapped = once(benchmark, run)
        print(
            f"\n  pass 1: {first.power_reduction_percent:.1f}% "
            f"(final {first.final_power:.2f}); after remap, pass 2 finds "
            f"another {second.power_reduction_percent:.1f}% "
            f"(final {second.final_power:.2f})"
        )
        # Remapping must not destroy pass-1's result catastrophically, and
        # pass 2 can only improve its own starting point.
        assert second.final_power <= second.initial_power + 1e-9


# ----------------------------------------------------------------------
# Pipeline head-to-head judge (also runnable: python benchmarks/bench_ablation.py)
# ----------------------------------------------------------------------
GOLDEN_CIRCUITS = ("rd53", "sqrt8", "misex1", "ttt2")

#: The contenders.  ``bdd_resynth(sift=false)`` isolates the contribution
#: of probability-weighted sifting from the MUX-tree re-expression itself.
HEAD_TO_HEAD_SPECS = (
    "powder",
    "resynth; powder",
    "bdd_resynth; powder",
    "bdd_resynth(sift=false); powder",
)

GENLIB_DIR = Path(__file__).resolve().parent / "genlib"
ABLATION_OUTPUT = Path(__file__).resolve().parent / "BENCH_ablation.json"


def head_to_head_libraries():
    """The two library backends the judge compares: the built-in cells and
    the bundled NAND/NOR-only genlib (no AND/OR/XOR, alien names)."""
    return {
        "standard": standard_library(),
        "nandnor": parse_genlib_file(GENLIB_DIR / "nandnor.genlib"),
    }


def _judge_metrics(netlist, num_patterns):
    probability = SimulationProbability(
        netlist, num_patterns=num_patterns, seed=3
    )
    return {
        "gates": netlist.num_gates(),
        "area": netlist.total_area(),
        "power": PowerEstimator(netlist, probability).total(),
        "delay": TimingAnalysis(netlist).circuit_delay,
    }


def run_head_to_head(
    circuits=GOLDEN_CIRCUITS,
    specs=HEAD_TO_HEAD_SPECS,
    libraries=None,
    num_patterns=1024,
    repeat=15,
    max_rounds=4,
    oracle_patterns=1024,
):
    """Run every spec × library × circuit cell of the matrix.

    Each cell starts from a fresh power-mapped netlist in that library,
    runs the pipeline spec, measures power/area/delay, and verifies the
    result against the pre-pipeline baseline with the differential
    oracle.  Returns the full document (the ``judgement`` section names
    per-library winners and states honestly whether ``bdd_resynth;
    powder`` beat plain ``powder`` anywhere).
    """
    libraries = libraries or head_to_head_libraries()
    options = OptimizeOptions(
        num_patterns=num_patterns, repeat=repeat, max_rounds=max_rounds
    )
    matrix = {}
    for lib_name, library in libraries.items():
        matrix[lib_name] = {}
        for circuit in circuits:
            baseline = build_benchmark(circuit, library)
            entry = {
                "baseline": _judge_metrics(baseline, num_patterns),
                "specs": {},
            }
            for spec in specs:
                work = baseline.copy(f"{circuit}_h2h")
                tick = time.perf_counter()
                outcome = run_pipeline(work, spec, options)
                seconds = time.perf_counter() - tick
                final = outcome.netlist
                oracle = check_equivalence_tiers(
                    baseline, final, num_patterns=oracle_patterns
                )
                entry["specs"][spec] = {
                    **_judge_metrics(final, num_patterns),
                    "seconds": round(seconds, 3),
                    "equivalent": oracle.equal,
                    "oracle": dict(sorted(oracle.verdicts.items())),
                }
                print(
                    f"  {lib_name:8s} {circuit:7s} {spec:30s} "
                    f"power {entry['specs'][spec]['power']:9.2f}  "
                    f"gates {entry['specs'][spec]['gates']:4d}  "
                    f"{'equal' if oracle.equal else 'NOT EQUAL'}  "
                    f"{seconds:6.1f}s",
                    file=sys.stderr,
                )
            matrix[lib_name][circuit] = entry
    return {
        "description": (
            "pipeline head-to-head (benchmarks/bench_ablation.py): each "
            "spec runs on a fresh power-mapped golden circuit per "
            "library; power is the switching estimate over "
            f"{num_patterns} patterns (seed 3); every row is verified "
            "against its baseline by the differential oracle"
        ),
        "date": datetime.date.today().isoformat(),
        "config": {
            "num_patterns": num_patterns,
            "repeat": repeat,
            "max_rounds": max_rounds,
            "oracle_patterns": oracle_patterns,
            "specs": list(specs),
            "libraries": list(libraries),
            "circuits": list(circuits),
        },
        "matrix": matrix,
        "judgement": _judge(matrix, specs),
    }


def _judge(matrix, specs):
    """Per-library winners plus the bdd_resynth-vs-powder verdict."""
    judgement = {}
    bdd_wins = []
    for lib_name, circuits in matrix.items():
        winners = {}
        for circuit, entry in circuits.items():
            ranked = sorted(
                (cell["power"], spec)
                for spec, cell in entry["specs"].items()
                if cell["equivalent"]
            )
            winners[circuit] = ranked[0][1] if ranked else None
            bdd = entry["specs"].get("bdd_resynth; powder")
            plain = entry["specs"].get("powder")
            if (
                bdd is not None
                and plain is not None
                and bdd["equivalent"]
                and bdd["power"] < plain["power"]
            ):
                bdd_wins.append(f"{lib_name}/{circuit}")
        judgement[lib_name] = {"lowest_power_spec": winners}
    judgement["bdd_resynth_beats_powder_on"] = bdd_wins
    if not bdd_wins:
        judgement["note"] = (
            "honest result: 'bdd_resynth; powder' never beat plain "
            "'powder' on final power in this matrix — the MUX-tree "
            "re-expression trades structure for activity and does not "
            "pay off on these circuits at these settings"
        )
    return judgement


class TestPipelineHeadToHead:
    """A one-cell slice of the judge so the matrix logic is exercised by
    the pytest bench run too (the full matrix is the __main__ path)."""

    def test_single_cell(self, benchmark):
        document = once(
            benchmark,
            run_head_to_head,
            circuits=("rd53",),
            specs=("powder", "bdd_resynth; powder"),
            num_patterns=256,
            repeat=10,
            max_rounds=2,
            oracle_patterns=256,
        )
        for lib_name, circuits in document["matrix"].items():
            for circuit, entry in circuits.items():
                for spec, cell in entry["specs"].items():
                    assert cell["equivalent"], (lib_name, circuit, spec)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="pipeline head-to-head judge; writes BENCH_ablation.json"
    )
    parser.add_argument("--patterns", type=int, default=1024)
    parser.add_argument("--repeat", type=int, default=15)
    parser.add_argument("--max-rounds", type=int, default=4)
    parser.add_argument(
        "--circuits", nargs="*", default=list(GOLDEN_CIRCUITS)
    )
    parser.add_argument(
        "--output", "-o", default=str(ABLATION_OUTPUT),
        help="output path, or '-' for stdout only",
    )
    args = parser.parse_args(argv)
    document = run_head_to_head(
        circuits=tuple(args.circuits),
        num_patterns=args.patterns,
        repeat=args.repeat,
        max_rounds=args.max_rounds,
        oracle_patterns=args.patterns,
    )
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.output != "-":
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
