"""Figure 6 — the power-delay trade-off.

Sweeps delay constraints (0 % … 200 % above the initial delay) over the
trade-off circuit set and prints the relative power / relative delay
series.  Paper shape: ~26 % reduction at +0 % rising to ~38 % at +200 %,
two thirds of the extra gain by +30 %, saturation beyond +80 %.
"""

import pytest

from benchmarks.conftest import BENCH_CONFIG, once
from repro.experiments.figure6 import format_figure6, run_figure6

SWEEP_CIRCUITS = ("rd53", "sqrt8", "misex1", "alu2", "Z5xp1")
SLACKS = (0, 10, 30, 80, 200)


def test_figure6_tradeoff(benchmark):
    result = once(
        benchmark,
        run_figure6,
        circuits=list(SWEEP_CIRCUITS),
        slack_percents=SLACKS,
        config=BENCH_CONFIG,
    )
    print()
    print(format_figure6(result))
    points = {p.slack_percent: p for p in result.points}
    # Every point honours its constraint.
    for slack, point in points.items():
        assert point.relative_delay <= 1.0 + slack / 100.0 + 1e-9
    # Monotone shape: more allowance, no worse power (small greedy noise
    # tolerance), and the 0% point already achieves a real reduction.
    assert points[0].power_reduction_pct > 0.0
    assert (
        points[200].relative_power
        <= points[0].relative_power + 0.02
    )
    # Saturation: the last doubling of allowance buys little.
    gain_80_to_200 = points[80].relative_power - points[200].relative_power
    gain_0_to_80 = points[0].relative_power - points[80].relative_power
    assert gain_80_to_200 <= max(gain_0_to_80, 0.0) + 0.02
