"""Scale benches: flat vs. windowed optimizer throughput (gates/sec).

The numbers recorded in ``BENCH_scale.json`` come from these benches run
over ``large``-shape generator netlists (64 PIs, exact gate budget).  The
flat optimizer's candidate rounds are super-linear in netlist size — it
cannot finish 2 000 gates in ten minutes — so the baseline is measured at
a size it can handle and the windowed flow carries the larger sizes.

Worker-pool size comes from the harness ``--jobs`` option::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py --jobs 4 -s

Pool spawn time is reported separately (``spawn_seconds``) and excluded
from the throughput figure, so worker startup is never billed as
optimizer time.
"""

from __future__ import annotations

import time

from benchmarks.conftest import once
from repro.fuzz.generator import large_config, random_mapped_netlist
from repro.library.standard import standard_library
from repro.transform.optimizer import OptimizeOptions, PowerOptimizer
from repro.transform.windowed import WindowedOptimizer

#: The flat baseline is quadratic-ish; keep it at a size it finishes.
SEQUENTIAL_GATES = 300
WINDOWED_GATES = 600
SCALE_SEED = 9


def _large(num_gates):
    lib = standard_library()
    return random_mapped_netlist(large_config(SCALE_SEED, num_gates), lib)


def _scale_options(**overrides):
    base = dict(num_patterns=64, max_rounds=1)
    base.update(overrides)
    return OptimizeOptions(**base)


def test_sequential_baseline(benchmark):
    """Flat PowerOptimizer throughput at a size it can handle."""
    netlist = _large(SEQUENTIAL_GATES)

    def run():
        tick = time.perf_counter()
        result = PowerOptimizer(netlist.copy(), _scale_options()).run()
        return result, time.perf_counter() - tick

    result, seconds = once(benchmark, run)
    benchmark.extra_info["gates"] = SEQUENTIAL_GATES
    benchmark.extra_info["gates_per_sec"] = round(
        SEQUENTIAL_GATES / seconds, 1
    )
    benchmark.extra_info["moves"] = len(result.moves)


def test_windowed_throughput(benchmark, jobs):
    """Windowed flow at the harness ``--jobs`` worker count."""
    netlist = _large(WINDOWED_GATES)
    options = _scale_options(
        windowed=True, window_size=40, window_radius=3, jobs=jobs
    )

    def run():
        optimizer = WindowedOptimizer(netlist.copy(), options)
        tick = time.perf_counter()
        result = optimizer.run()
        wall = time.perf_counter() - tick
        spawn = result.phase_seconds.get("spawn", 0.0)
        return result, wall - spawn, spawn

    result, work_seconds, spawn_seconds = once(benchmark, run)
    benchmark.extra_info["gates"] = WINDOWED_GATES
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["spawn_seconds"] = round(spawn_seconds, 3)
    benchmark.extra_info["gates_per_sec"] = round(
        WINDOWED_GATES / work_seconds, 1
    )
    benchmark.extra_info["windows"] = result.rounds
    benchmark.extra_info["moves"] = len(result.moves)
