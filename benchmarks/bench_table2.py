"""Table 2 — contribution of the substitution classes.

Runs the unconstrained protocol over the bench circuits, aggregates the
per-move logs by class and prints the shares next to the paper's
(power: OS2 32.5 / IS2 36.5 / OS3 27.6 / IS3 3.4 %).
"""

import pytest

from benchmarks.conftest import BENCH_CIRCUITS, BENCH_CONFIG, once
from repro.experiments.common import run_circuit
from repro.experiments.table2 import format_table2, table2_from_runs


def _run_all():
    return [
        run_circuit(name, BENCH_CONFIG, constrained=False)
        for name in BENCH_CIRCUITS
    ]


def test_table2_class_contributions(benchmark):
    runs = once(benchmark, _run_all)
    result = table2_from_runs(runs)
    print()
    print(format_table2(result))
    total_moves = sum(s.count for s in result.stats.values())
    assert total_moves > 0
    # Shape: the 2-signal substitutions dominate, IS3 is marginal (paper:
    # 3.4 % — "the power increase due to the new gate can be compensated
    # only in rare cases").
    shares = {k: result.power_share_pct(k) for k in result.stats}
    assert shares["OS2"] + shares["IS2"] + shares["OS3"] >= 80.0
    assert shares["IS3"] <= max(shares["OS2"], shares["IS2"])
    # Power shares sum to 100% of the achieved reduction.
    assert sum(shares.values()) == pytest.approx(100.0, abs=1e-6)
