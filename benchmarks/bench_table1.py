"""Table 1 — POWDER on the benchmark suite.

Regenerates the paper's per-circuit columns (initial power/area/delay,
unconstrained and delay-constrained optimization) over the bench slice of
the suite and prints the assembled table.  Paper totals for reference:
−26.1 % power (unconstrained), −21.4 % power / −6.8 % delay (constrained).
"""

import pytest

from benchmarks.conftest import BENCH_CIRCUITS, BENCH_CONFIG, once
from repro.experiments.common import run_circuit
from repro.experiments.table1 import Table1Result, Table1Row, format_table1

_rows_cache: list = []
_runs_cache: list = []


@pytest.mark.parametrize("circuit", BENCH_CIRCUITS)
def test_table1_circuit(benchmark, circuit):
    """One Table-1 row: synthesize + optimize (both modes) one circuit."""
    run = once(benchmark, run_circuit, circuit, BENCH_CONFIG)
    row = Table1Row.from_run(run)
    _rows_cache.append(row)
    _runs_cache.append(run)
    # Shape assertions mirroring the paper's claims:
    assert row.unc_power <= row.initial_power + 1e-9
    assert row.con_power <= row.initial_power + 1e-9
    assert row.con_delay <= row.initial_delay + 1e-9
    # Constrained mode can never beat unconstrained by much (same greedy,
    # strictly fewer admissible moves).
    assert row.unc_reduction_pct >= -1e-9


def test_table1_totals_and_print(benchmark):
    """Assemble and print the table, checking the aggregate shape.

    (Takes the ``benchmark`` fixture — timing the table assembly — so the
    test still runs under ``--benchmark-only``.)
    """
    if not _rows_cache:
        pytest.skip("per-circuit benches did not run")
    result = benchmark(
        lambda: Table1Result(rows=list(_rows_cache), runs=list(_runs_cache))
    )
    print()
    print(format_table1(result))
    # Paper shape: double-digit average unconstrained power reduction and a
    # positive constrained reduction that does not exceed it.
    assert result.unc_power_reduction_pct > 5.0
    assert 0.0 <= result.con_power_reduction_pct
    assert result.con_power_reduction_pct <= result.unc_power_reduction_pct + 2.0
    # Constrained delay never increases in aggregate.
    assert result.con_delay_reduction_pct >= -1e-9
