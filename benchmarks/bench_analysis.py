"""Benchmarks of the dataflow analysis framework and analysis_prune.

Three layers, matching the claims recorded in ``BENCH_analysis.json``:

- fact-base construction cost per golden circuit (what ``LintPass``
  and the S-rules pay up front),
- soundness-check cost (the CI gate's budget),
- the end-to-end question ``analysis_prune`` exists to answer: how many
  full-gain evaluations does fact-driven memoisation avoid across a
  whole optimisation, and does the move sequence stay bit-identical.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from benchmarks.conftest import once
from repro.analysis import AnalysisSuite
from repro.analysis.soundness import check_soundness
from repro.netlist.blif import parse_blif_file
from repro.telemetry import Tracer
from repro.transform.optimizer import OptimizeOptions, power_optimize

BLIF_DIR = Path(__file__).resolve().parent / "blif"
GOLDEN = ("rd53", "misex1", "sqrt8", "ttt2")


@pytest.fixture(params=GOLDEN)
def golden(request, lib):
    return request.param, parse_blif_file(
        BLIF_DIR / f"{request.param}.blif", lib
    )


def test_fact_base_construction(benchmark, golden):
    """Full AnalysisSuite fact build (dataflow + SAT confirmation)."""
    _name, netlist = golden
    benchmark(lambda: AnalysisSuite(netlist).refresh(force=True))


def test_soundness_check(benchmark, golden):
    """Independent re-derivation of every fact (the CI gate)."""
    _name, netlist = golden
    facts = AnalysisSuite(netlist).facts

    def run():
        report = check_soundness(netlist, facts)
        assert report.ok
        return report

    once(benchmark, run)


@pytest.mark.parametrize("analysis_prune", (False, True))
def test_end_to_end_optimize(benchmark, lib, analysis_prune):
    """power_optimize on ttt2 with and without analysis_prune.

    The paired runs behind BENCH_analysis.json's ``end_to_end`` block:
    identical move sequence, fewer full-gain evaluations.
    """
    netlist = parse_blif_file(BLIF_DIR / "ttt2.blif", lib)
    tracer = Tracer()
    options = OptimizeOptions(
        num_patterns=512, trace=tracer, analysis_prune=analysis_prune
    )
    result = once(benchmark, power_optimize, netlist, options)
    assert result.moves
    if analysis_prune:
        counters = result.trace.counters
        assert counters["prune_constant_sources"] > 0
