"""Shared fixtures for the benchmark harness.

Every ``bench_table*.py`` / ``bench_figure*.py`` file regenerates one table
or figure of the paper: running it prints the reproduced rows (use ``-s`` to
see them) and records the runtime through pytest-benchmark.  Experiment
effort is reduced relative to the paper's (see DESIGN.md §6) but the
protocol is identical.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentConfig
from repro.library.standard import standard_library

#: Benchmark-harness experiment configuration: one notch below the CLI
#: defaults so the full suite completes in minutes, same protocol.
BENCH_CONFIG = ExperimentConfig(
    num_patterns=1024,
    repeat=15,
    max_rounds=6,
    max_moves=40,
    backtrack_limit=10000,
)

#: Circuits used by the table benches (a representative slice of the suite).
BENCH_CIRCUITS = ("rd53", "sqrt8", "misex1", "alu2", "rd84", "Z5xp1", "bw")


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker-pool size for the windowed benches (bench_scale); "
            "pool spawn time is measured separately and never billed as "
            "optimizer time"
        ),
    )


@pytest.fixture(scope="session")
def jobs(request):
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def lib():
    return standard_library()


def once(benchmark, func, *args, **kwargs):
    """Run a long experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
