"""Benchmark the optimization service; writes ``BENCH_serve.json``.

Not a pytest-benchmark module: service numbers need a live server and
shaped load, so this is a standalone script.

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --duration 10 -o -

Three campaigns against one private server (ephemeral port):

- **cold latency** — distinct circuits submitted one at a time with the
  cache off: the end-to-end cost of a solo optimization job (queue +
  fork + optimize + serialize),
- **closed loop** — N clients drawing from a small circuit pool, cache
  on: steady-state throughput where most submissions are duplicates
  (cache hits / coalescing), the service's intended regime,
- **open loop** — fixed arrival rate above single-worker capacity with
  the cache off: queueing behaviour under honest overload.

The committed JSON records the machine-honest numbers this was run on
(1-CPU container); re-run the script to refresh them.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve import (  # noqa: E402
    LoadGenConfig,
    ServerConfig,
    ServerThread,
    build_circuit_pool,
    run_load,
)
from repro.serve.stats import latency_summary  # noqa: E402

OUTPUT = Path(__file__).resolve().parent / "BENCH_serve.json"


def _round_floats(value, digits=4):
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {key: _round_floats(item, digits)
                for key, item in value.items()}
    if isinstance(value, list):
        return [_round_floats(item, digits) for item in value]
    return value


def _campaign_view(report) -> dict:
    data = report.to_dict()
    data.pop("server_metrics", None)
    data.pop("config", None)
    return data


def bench_cold_latency(handle, args) -> dict:
    """Solo-job latency over distinct circuits, cache off."""
    config = LoadGenConfig(
        port=handle.port, seed=args.seed,
        unique_circuits=args.cold_jobs,
        min_gates=args.min_gates, max_gates=args.max_gates,
        patterns=args.patterns, max_rounds=args.max_rounds,
    )
    client = handle.client(timeout=120.0)
    latencies = []
    for blif in build_circuit_pool(config):
        start = time.monotonic()
        view = client.submit(blif, options={
            "num_patterns": args.patterns, "max_rounds": args.max_rounds,
        }, use_cache=False)
        final = client.wait(view["job_id"], timeout=120.0)
        assert final["status"] == "done", final
        latencies.append(time.monotonic() - start)
    return {
        "comment": (
            "distinct circuits, one at a time, use_cache=false: the "
            "full queue+fork+optimize+serialize path per job"
        ),
        "jobs": len(latencies),
        "latency_seconds": latency_summary(latencies),
    }


def bench_closed_loop(handle, args) -> dict:
    """Steady-state duplicate-heavy throughput (the intended regime)."""
    report = run_load(LoadGenConfig(
        port=handle.port, mode="closed", clients=args.clients,
        duration=args.duration, seed=args.seed,
        unique_circuits=args.unique_circuits,
        min_gates=args.min_gates, max_gates=args.max_gates,
        patterns=args.patterns, max_rounds=args.max_rounds,
    ))
    assert report.ok(require_cache_hits=True), report.to_dict()
    data = _campaign_view(report)
    data["comment"] = (
        f"{args.clients} closed-loop clients over "
        f"{args.unique_circuits} distinct circuits, cache on: most "
        "submissions are exact duplicates and settle from the LRU"
    )
    return data


def bench_open_loop(handle, args) -> dict:
    """Fixed arrival rate with the cache bypassed: every job runs."""
    report = run_load(LoadGenConfig(
        port=handle.port, mode="open", clients=args.clients,
        rate=args.rate, duration=args.duration, seed=args.seed + 1,
        unique_circuits=max(args.unique_circuits, 4),
        min_gates=args.min_gates, max_gates=args.max_gates,
        patterns=args.patterns, max_rounds=args.max_rounds,
    ))
    data = _campaign_view(report)
    data["comment"] = (
        f"open loop at {args.rate} jobs/s with a {args.unique_circuits}"
        "-circuit pool, cache on: arrival rate is fixed, so latency "
        "shows queueing once cold jobs occupy the workers"
    )
    return data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--duration", type=float, default=8.0)
    parser.add_argument("--rate", type=float, default=6.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cold-jobs", type=int, default=8)
    parser.add_argument("--unique-circuits", type=int, default=5)
    parser.add_argument("--min-gates", type=int, default=8)
    parser.add_argument("--max-gates", type=int, default=16)
    parser.add_argument("--patterns", type=int, default=64)
    parser.add_argument("--max-rounds", type=int, default=3)
    parser.add_argument("--output", "-o", default=str(OUTPUT),
                        help="output path, or '-' for stdout only")
    args = parser.parse_args(argv)

    results = {}
    with ServerThread(ServerConfig(workers=args.workers)) as handle:
        print("server up on port", handle.port, file=sys.stderr)
        for name, bench in (
            ("cold_latency", bench_cold_latency),
            ("closed_loop", bench_closed_loop),
            ("open_loop", bench_open_loop),
        ):
            print(f"running {name} ...", file=sys.stderr)
            results[name] = bench(handle, args)
        metrics = handle.client().metrics()

    document = {
        "description": (
            "powder serve under shaped load (benchmarks/bench_serve.py): "
            "cold solo-job latency, duplicate-heavy closed-loop "
            "throughput, and open-loop queueing, all against one "
            f"{args.workers}-worker server on an ephemeral port. "
            "Latencies are end-to-end client seconds (submit to "
            "terminal state)."
        ),
        "date": datetime.date.today().isoformat(),
        "config": {
            "workers": args.workers, "clients": args.clients,
            "duration_seconds": args.duration,
            "open_loop_rate": args.rate, "seed": args.seed,
            "patterns": args.patterns, "max_rounds": args.max_rounds,
            "gates": [args.min_gates, args.max_gates],
        },
        "campaigns": _round_floats(results),
        "final_server_metrics": _round_floats({
            "cache": metrics.get("cache"),
            "counters": metrics.get("counters"),
            "timers": metrics.get("timers"),
        }),
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.output != "-":
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
