"""The paper's §4.2 convergence observation.

"During the experiments we observed that most of the power reduction is
achieved by the first couple of substitutions.  Much of the CPU time is
spent at the end to achieve negligible power reductions."

This bench reproduces both halves of that sentence on our substrate: the
cumulative-gain curve is strongly front-loaded, and the suggested
threshold termination (§4.2 / ``gain_threshold_fraction``) recovers most
of the result at a fraction of the moves.
"""

import pytest

from benchmarks.conftest import BENCH_CONFIG, once
from repro.bench.suite import build_benchmark
from repro.library.standard import standard_library
from repro.transform.optimizer import OptimizeOptions, power_optimize

CIRCUIT = "ttt2"


def run_full():
    library = standard_library()
    netlist = build_benchmark(CIRCUIT, library, map_mode="power")
    options = OptimizeOptions(
        num_patterns=BENCH_CONFIG.num_patterns,
        repeat=BENCH_CONFIG.repeat,
        max_rounds=BENCH_CONFIG.max_rounds,
        backtrack_limit=BENCH_CONFIG.backtrack_limit,
    )
    return power_optimize(netlist, options)


def test_gain_is_front_loaded(benchmark):
    result = once(benchmark, run_full)
    gains = [m.measured_power_gain for m in result.moves]
    assert len(gains) >= 6, "need a real move sequence to measure shape"
    total = sum(gains)
    half = sum(gains[: max(1, len(gains) // 2)])
    print(
        f"\n  {CIRCUIT}: {len(gains)} moves, first half of the moves give "
        f"{100 * half / total:.0f}% of the reduction"
    )
    # Front-loaded: the first half of the moves delivers the majority.
    assert half / total > 0.5
    # And the single best early move dwarfs the median late move.
    assert max(gains[:3]) > 4 * max(gains[-1], 1e-12)


def test_threshold_termination_tradeoff(benchmark):
    def run():
        library = standard_library()
        base = build_benchmark(CIRCUIT, library, map_mode="power")
        full = power_optimize(
            base.copy("full"),
            OptimizeOptions(
                num_patterns=BENCH_CONFIG.num_patterns,
                repeat=BENCH_CONFIG.repeat,
                max_rounds=BENCH_CONFIG.max_rounds,
            ),
        )
        thresholded = power_optimize(
            base.copy("thr"),
            OptimizeOptions(
                num_patterns=BENCH_CONFIG.num_patterns,
                repeat=BENCH_CONFIG.repeat,
                max_rounds=BENCH_CONFIG.max_rounds,
                gain_threshold_fraction=0.002,
            ),
        )
        return full, thresholded

    full, thresholded = once(benchmark, run)
    print(
        f"\n  full: {full.power_reduction_percent:.1f}% in "
        f"{len(full.moves)} moves / {full.runtime_seconds:.1f}s; "
        f"0.2% threshold: {thresholded.power_reduction_percent:.1f}% in "
        f"{len(thresholded.moves)} moves / {thresholded.runtime_seconds:.1f}s"
    )
    # The paper's prediction: "substantially reduce the CPU times but only
    # slightly degrade the results."
    assert len(thresholded.moves) <= len(full.moves)
    assert (
        thresholded.power_reduction_percent
        >= 0.7 * full.power_reduction_percent
    )
