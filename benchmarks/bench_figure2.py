"""Figure 2 — the paper's worked IS2 example.

Builds the example circuit (e = a·b shared, d = a⊕c, f = d·b with AND-pin
load 1 and XOR-pin load 2), runs POWDER and checks that it performs exactly
the paper's rewiring, lowering Σ C·E.
"""

from benchmarks.conftest import once
from repro.library.standard import standard_library
from repro.netlist.build import NetlistBuilder
from repro.transform.optimizer import OptimizeOptions, power_optimize
from repro.transform.substitution import IS2


def build_figure2():
    lib = standard_library()
    b = NetlistBuilder(lib, "fig2")
    a, bb, c = b.inputs("a", "b", "c")
    b.and_(a, bb, name="e")
    d = b.xor_(a, c, name="d")
    f = b.and_(d, bb, name="f")
    b.output("f_out", f)
    b.output("e_out", b.netlist.gate("e"))
    return b.build()


def run_example():
    netlist = build_figure2()
    return power_optimize(
        netlist, OptimizeOptions(num_patterns=1024, repeat=5, max_rounds=2)
    )


def test_figure2_example(benchmark):
    result = once(benchmark, run_example)
    print()
    print(result.summary())
    assert result.final_power < result.initial_power
    rewirings = [
        m
        for m in result.moves
        if m.substitution.kind == IS2
        and m.substitution.target == "a"
        and m.substitution.source1 == "e"
    ]
    assert rewirings, "POWDER must find the paper's Figure-2 rewiring"
