"""Tests for the temporal-correlation activity engine."""

import pytest

from repro.errors import NetlistError
from repro.power.estimate import PowerEstimator, transition_probability
from repro.power.temporal import TemporalSimulationProbability, TemporalSpec


class TestTemporalSpec:
    def test_defaults(self):
        spec = TemporalSpec()
        assert spec.p_rise == pytest.approx(0.5)
        assert spec.p_fall == pytest.approx(0.5)

    def test_stationarity_relation(self):
        spec = TemporalSpec(p1=0.25, activity=0.2)
        # p1 * P(fall) == (1 - p1) * P(rise) == activity / 2
        assert spec.p1 * spec.p_fall == pytest.approx(0.1)
        assert (1 - spec.p1) * spec.p_rise == pytest.approx(0.1)

    def test_infeasible_activity(self):
        with pytest.raises(NetlistError):
            TemporalSpec(p1=0.1, activity=0.5)  # max is 0.2

    def test_bad_probability(self):
        with pytest.raises(NetlistError):
            TemporalSpec(p1=1.5)


class TestEngine:
    def test_input_statistics(self, figure2):
        spec = TemporalSpec(p1=0.5, activity=0.1)
        engine = TemporalSimulationProbability(
            figure2, num_patterns=64 * 512, seed=4,
            input_specs={"a": spec},
        )
        # Input a: stationary p ~ 0.5, measured activity ~ 0.1.
        assert engine.probability("a") == pytest.approx(0.5, abs=0.03)
        assert engine.activity("a") == pytest.approx(0.1, abs=0.02)
        # Other inputs default to independence: activity ~ 0.5.
        assert engine.activity("b") == pytest.approx(0.5, abs=0.03)

    def test_independence_limit_matches_formula(self, figure2):
        # With activity = 2p(1-p) on every input, internal activities must
        # approach the 2p(1-p) formula on internal signals too.
        engine = TemporalSimulationProbability(
            figure2, num_patterns=64 * 512, seed=9
        )
        for name in ("d", "e", "f"):
            p = engine.probability(name)
            assert engine.activity(name) == pytest.approx(
                transition_probability(p), abs=0.03
            )

    def test_low_input_activity_damps_internal(self, figure2):
        slow = TemporalSpec(p1=0.5, activity=0.05)
        engine = TemporalSimulationProbability(
            figure2,
            num_patterns=64 * 256,
            seed=5,
            default_spec=slow,
        )
        fast = TemporalSimulationProbability(
            figure2, num_patterns=64 * 256, seed=5
        )
        for name in ("d", "e", "f"):
            assert engine.activity(name) < fast.activity(name)

    def test_estimator_uses_measured_activity(self, figure2):
        slow = TemporalSpec(p1=0.5, activity=0.02)
        engine = TemporalSimulationProbability(
            figure2, num_patterns=64 * 128, seed=6, default_spec=slow
        )
        est = PowerEstimator(figure2, engine)
        gate = figure2.gate("d")
        assert est.activity(gate) == pytest.approx(
            engine.activity("d")
        )
        # Total power under slow inputs is far below independence power.
        fast_est = PowerEstimator(figure2)
        assert est.total() < 0.5 * fast_est.total()

    def test_update_fanout_consistent(self, figure2):
        engine = TemporalSimulationProbability(
            figure2, num_patterns=64 * 64, seed=7
        )
        f = figure2.gate("f")
        figure2.replace_fanin(f, 0, figure2.gate("e"))
        figure2.sweep_dead()
        engine.update_fanout([f])
        incremental = {n: engine.activity(n) for n in figure2.gates}
        engine.refresh()
        full = {n: engine.activity(n) for n in figure2.gates}
        assert incremental == full


class TestGainExactnessTemporal:
    def test_full_gain_matches_measured(self, figure2):
        from repro.transform.gain import full_gain
        from repro.transform.substitution import IS2, Substitution, apply_substitution

        engine = TemporalSimulationProbability(
            figure2, num_patterns=64 * 64, seed=8,
            default_spec=TemporalSpec(p1=0.5, activity=0.3),
        )
        est = PowerEstimator(figure2, engine)
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        sub = Substitution(IS2, "a", "e", branch=("d", pin))
        predicted = full_gain(est, sub)
        before = est.total()
        applied = apply_substitution(figure2, sub)
        est.update_after_edit(
            [figure2.gate(n) for n in applied.resim_roots if n in figure2.gates]
        )
        assert predicted.total == pytest.approx(before - est.total(), abs=1e-9)

    def test_optimizer_with_temporal_specs(self, figure2):
        from repro.equiv import check_equivalent
        from repro.transform.optimizer import power_optimize

        reference = figure2.copy("ref")
        result = power_optimize(
            figure2,
            num_patterns=1024,
            max_rounds=2,
            input_temporal_specs={"b": TemporalSpec(p1=0.5, activity=0.1)},
        )
        assert result.final_power <= result.initial_power
        assert check_equivalent(reference, figure2).equal
