"""Tests for the temporal-correlation activity engine."""

import itertools

import pytest

from repro.errors import NetlistError
from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
from repro.netlist.traverse import topological_order
from repro.power.estimate import PowerEstimator, transition_probability
from repro.power.temporal import TemporalSimulationProbability, TemporalSpec


class TestTemporalSpec:
    def test_defaults(self):
        spec = TemporalSpec()
        assert spec.p_rise == pytest.approx(0.5)
        assert spec.p_fall == pytest.approx(0.5)

    def test_stationarity_relation(self):
        spec = TemporalSpec(p1=0.25, activity=0.2)
        # p1 * P(fall) == (1 - p1) * P(rise) == activity / 2
        assert spec.p1 * spec.p_fall == pytest.approx(0.1)
        assert (1 - spec.p1) * spec.p_rise == pytest.approx(0.1)

    def test_infeasible_activity(self):
        with pytest.raises(NetlistError):
            TemporalSpec(p1=0.1, activity=0.5)  # max is 0.2

    def test_bad_probability(self):
        with pytest.raises(NetlistError):
            TemporalSpec(p1=1.5)


class TestEngine:
    def test_input_statistics(self, figure2):
        spec = TemporalSpec(p1=0.5, activity=0.1)
        engine = TemporalSimulationProbability(
            figure2, num_patterns=64 * 512, seed=4,
            input_specs={"a": spec},
        )
        # Input a: stationary p ~ 0.5, measured activity ~ 0.1.
        assert engine.probability("a") == pytest.approx(0.5, abs=0.03)
        assert engine.activity("a") == pytest.approx(0.1, abs=0.02)
        # Other inputs default to independence: activity ~ 0.5.
        assert engine.activity("b") == pytest.approx(0.5, abs=0.03)

    def test_independence_limit_matches_formula(self, figure2):
        # With activity = 2p(1-p) on every input, internal activities must
        # approach the 2p(1-p) formula on internal signals too.
        engine = TemporalSimulationProbability(
            figure2, num_patterns=64 * 512, seed=9
        )
        for name in ("d", "e", "f"):
            p = engine.probability(name)
            assert engine.activity(name) == pytest.approx(
                transition_probability(p), abs=0.03
            )

    def test_low_input_activity_damps_internal(self, figure2):
        slow = TemporalSpec(p1=0.5, activity=0.05)
        engine = TemporalSimulationProbability(
            figure2,
            num_patterns=64 * 256,
            seed=5,
            default_spec=slow,
        )
        fast = TemporalSimulationProbability(
            figure2, num_patterns=64 * 256, seed=5
        )
        for name in ("d", "e", "f"):
            assert engine.activity(name) < fast.activity(name)

    def test_estimator_uses_measured_activity(self, figure2):
        slow = TemporalSpec(p1=0.5, activity=0.02)
        engine = TemporalSimulationProbability(
            figure2, num_patterns=64 * 128, seed=6, default_spec=slow
        )
        est = PowerEstimator(figure2, engine)
        gate = figure2.gate("d")
        assert est.activity(gate) == pytest.approx(
            engine.activity("d")
        )
        # Total power under slow inputs is far below independence power.
        fast_est = PowerEstimator(figure2)
        assert est.total() < 0.5 * fast_est.total()

    def test_update_fanout_consistent(self, figure2):
        engine = TemporalSimulationProbability(
            figure2, num_patterns=64 * 64, seed=7
        )
        f = figure2.gate("f")
        figure2.replace_fanin(f, 0, figure2.gate("e"))
        figure2.sweep_dead()
        engine.update_fanout([f])
        incremental = {n: engine.activity(n) for n in figure2.gates}
        engine.refresh()
        full = {n: engine.activity(n) for n in figure2.gates}
        assert incremental == full


def _evaluate(order, inputs):
    """Per-vector circuit evaluation, independent of the sim engine."""
    values = {}
    for gate in order:
        if gate.is_input:
            values[gate.name] = inputs[gate.name]
        else:
            values[gate.name] = gate.cell.evaluate(
                [values[f.name] for f in gate.fanins]
            )
    return values


def _exact_statistics(netlist, specs):
    """Brute-force stationary probability and activity of every stem.

    Enumerates every (cycle-t, cycle-t+1) input-vector pair with its
    exact lag-1 Markov probability — ``P(v) · Π P(v'_i | v_i)`` — and
    accumulates each gate's onset and toggle probability.  Exponential in
    the input count, so only for small circuits; this is the ground truth
    the pair-simulation engine samples.
    """
    order = topological_order(netlist)
    names = list(netlist.input_names)
    probability = {g.name: 0.0 for g in order}
    activity = {g.name: 0.0 for g in order}
    for v_t in itertools.product((0, 1), repeat=len(names)):
        weight_t = 1.0
        for name, bit in zip(names, v_t):
            spec = specs[name]
            weight_t *= spec.p1 if bit else 1.0 - spec.p1
        if weight_t == 0.0:
            continue
        values_t = _evaluate(order, dict(zip(names, v_t)))
        for name, p in probability.items():
            probability[name] = p + weight_t * values_t[name]
        for v_t1 in itertools.product((0, 1), repeat=len(names)):
            weight = weight_t
            for name, bit, nxt in zip(names, v_t, v_t1):
                spec = specs[name]
                if bit:
                    weight *= spec.p_fall if nxt == 0 else 1.0 - spec.p_fall
                else:
                    weight *= spec.p_rise if nxt == 1 else 1.0 - spec.p_rise
            if weight == 0.0:
                continue
            values_t1 = _evaluate(order, dict(zip(names, v_t1)))
            for name in activity:
                if values_t[name] != values_t1[name]:
                    activity[name] += weight
    return probability, activity


class TestBruteForceCrossCheck:
    """Engine estimates vs. exact enumeration on small circuits."""

    @pytest.mark.parametrize(
        "shape, seed", [("random", 3), ("reconvergent", 6), ("random", 17)]
    )
    def test_generated_circuit_matches_enumeration(self, lib, shape, seed):
        netlist = random_mapped_netlist(
            GeneratorConfig(
                seed=seed, shape=shape, min_inputs=4, max_inputs=5,
                min_gates=8, max_gates=14,
            ),
            lib,
        )
        specs = {
            name: TemporalSpec(p1=0.3 + 0.1 * (i % 3), activity=0.1 + 0.05 * (i % 4))
            for i, name in enumerate(netlist.input_names)
        }
        engine = TemporalSimulationProbability(
            netlist, num_patterns=64 * 512, seed=seed, input_specs=specs
        )
        probability, activity = _exact_statistics(netlist, specs)
        for gate in netlist.gates.values():
            assert engine.probability(gate.name) == pytest.approx(
                probability[gate.name], abs=0.02
            ), f"stationary probability of {gate.name}"
            assert engine.activity(gate.name) == pytest.approx(
                activity[gate.name], abs=0.02
            ), f"toggle activity of {gate.name}"

    def test_figure2_asymmetric_specs(self, figure2):
        specs = {
            "a": TemporalSpec(p1=0.8, activity=0.1),
            "b": TemporalSpec(p1=0.5, activity=0.5),
            "c": TemporalSpec(p1=0.2, activity=0.3),
        }
        engine = TemporalSimulationProbability(
            figure2, num_patterns=64 * 512, seed=13, input_specs=specs
        )
        probability, activity = _exact_statistics(figure2, specs)
        for name in figure2.gates:
            assert engine.probability(name) == pytest.approx(
                probability[name], abs=0.02
            )
            assert engine.activity(name) == pytest.approx(
                activity[name], abs=0.02
            )

    def test_power_total_matches_enumeration(self, figure2):
        """The full Σ C·E estimate agrees with the exact expectation."""
        specs = {
            name: TemporalSpec(p1=0.5, activity=0.2)
            for name in figure2.input_names
        }
        engine = TemporalSimulationProbability(
            figure2, num_patterns=64 * 1024, seed=21, input_specs=specs
        )
        estimator = PowerEstimator(figure2, engine)
        _probability, activity = _exact_statistics(figure2, specs)
        exact_total = sum(
            figure2.load_of(g) * activity[g.name]
            for g in figure2.gates.values()
        )
        assert estimator.total() == pytest.approx(exact_total, rel=0.05)


class TestGainExactnessTemporal:
    def test_full_gain_matches_measured(self, figure2):
        from repro.transform.gain import full_gain
        from repro.transform.substitution import IS2, Substitution, apply_substitution

        engine = TemporalSimulationProbability(
            figure2, num_patterns=64 * 64, seed=8,
            default_spec=TemporalSpec(p1=0.5, activity=0.3),
        )
        est = PowerEstimator(figure2, engine)
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        sub = Substitution(IS2, "a", "e", branch=("d", pin))
        predicted = full_gain(est, sub)
        before = est.total()
        applied = apply_substitution(figure2, sub)
        est.update_after_edit(
            [figure2.gate(n) for n in applied.resim_roots if n in figure2.gates]
        )
        assert predicted.total == pytest.approx(before - est.total(), abs=1e-9)

    def test_optimizer_with_temporal_specs(self, figure2):
        from repro.equiv import check_equivalent
        from repro.transform.optimizer import power_optimize

        reference = figure2.copy("ref")
        result = power_optimize(
            figure2,
            num_patterns=1024,
            max_rounds=2,
            input_temporal_specs={"b": TemporalSpec(p1=0.5, activity=0.1)},
        )
        assert result.final_power <= result.initial_power
        assert check_equivalent(reference, figure2).equal
