"""Tests for the glitch-aware power analysis."""

import pytest

from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
from repro.netlist.simulate import random_patterns
from repro.netlist.traverse import topological_order
from repro.power.glitch import analyze_glitches
from repro.timing.analysis import gate_delay


class TestGlitchAnalysis:
    def test_timed_at_least_zero_delay(self, figure2):
        report = analyze_glitches(figure2, num_pairs=128, seed=1)
        assert report.timed_power >= report.zero_delay_power - 1e-9
        for name, density in report.transition_density.items():
            assert density >= report.zero_delay_activity[name] - 1e-12

    def test_parity_of_transitions(self, figure2):
        # A net's transition count and its zero-delay change indicator have
        # the same parity (it settles at the zero-delay final value).
        report = analyze_glitches(figure2, num_pairs=64, seed=2)
        for name in report.transition_density:
            t = report.transition_density[name] * report.num_pairs
            e = report.zero_delay_activity[name] * report.num_pairs
            assert (round(t) - round(e)) % 2 == 0, name

    def test_single_gate_has_no_glitches(self, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        builder.output("o", g)
        nl = builder.build()
        report = analyze_glitches(nl, num_pairs=128, seed=3)
        # One gate, single evaluation: T == E exactly.
        assert report.glitch_power == pytest.approx(0.0, abs=1e-12)

    def test_unbalanced_xor_glitches(self, builder):
        # f = a XOR buffer-chain(a): function is constant 0, zero-delay
        # power ~0, but real transitions occur while the chain settles.
        a = builder.input("a")
        delayed = a
        for i in range(4):
            delayed = builder.not_(delayed, name=f"inv{i}")
        f = builder.xor_(a, delayed, name="f")
        builder.output("o", f)
        nl = builder.build()
        report = analyze_glitches(nl, num_pairs=128, seed=4)
        # f's zero-delay activity is 0 (constant function)...
        assert report.zero_delay_activity["f"] == 0.0
        # ...but the timed simulation sees pulses whenever `a` toggles.
        assert report.transition_density["f"] > 0.2
        assert report.glitch_fraction > 0.0
        assert ("f", report.transition_density["f"]) in report.worst_glitchers(3)

    def test_glitch_fraction_plausible_on_benchmark(self, lib):
        from repro.bench.suite import build_benchmark

        netlist = build_benchmark("misex1", lib)
        report = analyze_glitches(netlist, num_pairs=96, seed=5)
        # Real multi-level circuits glitch, but not absurdly: the paper
        # quotes ~20%; accept a generous band.
        assert 0.0 <= report.glitch_fraction < 0.6

    def test_deterministic(self, figure2):
        a = analyze_glitches(figure2, num_pairs=64, seed=6)
        b = analyze_glitches(figure2, num_pairs=64, seed=6)
        assert a.timed_power == b.timed_power

    def test_biased_inputs(self, figure2):
        report = analyze_glitches(
            figure2, num_pairs=64, seed=7, input_probs={"a": 0.9}
        )
        assert report.timed_power >= 0.0


def _settled(order, inputs):
    values = {}
    for gate in order:
        if gate.is_input:
            values[gate.name] = inputs[gate.name]
        else:
            values[gate.name] = gate.cell.evaluate(
                [values[f.name] for f in gate.fanins]
            )
    return values


def _sample(wave, time):
    """Value of a (initial, events) waveform at ``time`` (events ≤ time)."""
    initial, events = wave
    value = initial
    for t, v in events:
        if t > time:
            break
        value = v
    return value


def _waveform_transitions(netlist, num_pairs, seed, input_probs=None):
    """Brute-force transition counts via per-gate waveform algebra.

    Independent re-implementation of the timed model without an event
    queue: each gate's full output waveform is computed in topological
    order from its fanins' completed waveforms.  The output can only
    change at ``t_f + d`` for a fanin change at ``t_f``, taking the value
    ``f(fanins sampled at the evaluation time)`` — the same transport /
    last-write-wins semantics the event-driven simulator implements with
    a heap.  Exponentially simpler to audit; used as ground truth.
    """
    order = topological_order(netlist)
    delays = {g.name: gate_delay(netlist, g) for g in order}
    rounded = max(64, ((num_pairs + 63) // 64) * 64)
    before = random_patterns(netlist.input_names, rounded, seed, input_probs)
    after = random_patterns(
        netlist.input_names, rounded, seed + 1, input_probs
    )

    def vector(patterns, index):
        word, bit = divmod(index, 64)
        return {
            name: (int(patterns[name][word]) >> bit) & 1
            for name in netlist.input_names
        }

    counts = {g.name: 0 for g in order}
    for index in range(num_pairs):
        v0 = vector(before, index)
        v1 = vector(after, index)
        settled0 = _settled(order, v0)
        settled1 = _settled(order, v1)
        waves = {}
        for gate in order:
            initial = settled0[gate.name]
            events = []
            if gate.is_input:
                if v0[gate.name] != v1[gate.name]:
                    events.append((0.0, v1[gate.name]))
            else:
                d = delays[gate.name]
                times = sorted(
                    {
                        t + d
                        for f in gate.fanins
                        for t, _v in waves[f.name][1]
                    }
                )
                value = initial
                for t in times:
                    new = gate.cell.evaluate(
                        [_sample(waves[f.name], t) for f in gate.fanins]
                    )
                    if new != value:
                        events.append((t, new))
                        value = new
            waves[gate.name] = (initial, events)
            counts[gate.name] += len(events)
            final = events[-1][1] if events else initial
            assert final == settled1[gate.name], gate.name
    return {name: count / num_pairs for name, count in counts.items()}


class TestBruteForceCrossCheck:
    """analyze_glitches vs. an independent waveform simulator."""

    def test_figure2_densities_match_exactly(self, figure2):
        report = analyze_glitches(figure2, num_pairs=128, seed=11)
        expected = _waveform_transitions(figure2, num_pairs=128, seed=11)
        assert report.transition_density == expected

    def test_hazard_circuit_matches_exactly(self, builder):
        a = builder.input("a")
        delayed = a
        for i in range(4):
            delayed = builder.not_(delayed, name=f"inv{i}")
        f = builder.xor_(a, delayed, name="f")
        builder.output("o", f)
        nl = builder.build()
        report = analyze_glitches(nl, num_pairs=128, seed=12)
        expected = _waveform_transitions(nl, num_pairs=128, seed=12)
        assert report.transition_density == expected
        # Sanity: the hazard node really glitches in both simulators.
        assert expected["f"] > report.zero_delay_activity["f"]

    @pytest.mark.parametrize(
        "shape, seed", [("random", 3), ("reconvergent", 9), ("high_fanout", 5)]
    )
    def test_generated_circuits_match_exactly(self, lib, shape, seed):
        netlist = random_mapped_netlist(
            GeneratorConfig(
                seed=seed, shape=shape, min_inputs=5, max_inputs=8,
                min_gates=12, max_gates=24,
            ),
            lib,
        )
        report = analyze_glitches(netlist, num_pairs=64, seed=seed)
        expected = _waveform_transitions(netlist, num_pairs=64, seed=seed)
        assert report.transition_density == expected

    def test_biased_inputs_match_exactly(self, figure2):
        probs = {"a": 0.9, "b": 0.2}
        report = analyze_glitches(
            figure2, num_pairs=64, seed=13, input_probs=probs
        )
        expected = _waveform_transitions(
            figure2, num_pairs=64, seed=13, input_probs=probs
        )
        assert report.transition_density == expected
