"""Tests for the glitch-aware power analysis."""

import pytest

from repro.power.glitch import analyze_glitches


class TestGlitchAnalysis:
    def test_timed_at_least_zero_delay(self, figure2):
        report = analyze_glitches(figure2, num_pairs=128, seed=1)
        assert report.timed_power >= report.zero_delay_power - 1e-9
        for name, density in report.transition_density.items():
            assert density >= report.zero_delay_activity[name] - 1e-12

    def test_parity_of_transitions(self, figure2):
        # A net's transition count and its zero-delay change indicator have
        # the same parity (it settles at the zero-delay final value).
        report = analyze_glitches(figure2, num_pairs=64, seed=2)
        for name in report.transition_density:
            t = report.transition_density[name] * report.num_pairs
            e = report.zero_delay_activity[name] * report.num_pairs
            assert (round(t) - round(e)) % 2 == 0, name

    def test_single_gate_has_no_glitches(self, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        builder.output("o", g)
        nl = builder.build()
        report = analyze_glitches(nl, num_pairs=128, seed=3)
        # One gate, single evaluation: T == E exactly.
        assert report.glitch_power == pytest.approx(0.0, abs=1e-12)

    def test_unbalanced_xor_glitches(self, builder):
        # f = a XOR buffer-chain(a): function is constant 0, zero-delay
        # power ~0, but real transitions occur while the chain settles.
        a = builder.input("a")
        delayed = a
        for i in range(4):
            delayed = builder.not_(delayed, name=f"inv{i}")
        f = builder.xor_(a, delayed, name="f")
        builder.output("o", f)
        nl = builder.build()
        report = analyze_glitches(nl, num_pairs=128, seed=4)
        # f's zero-delay activity is 0 (constant function)...
        assert report.zero_delay_activity["f"] == 0.0
        # ...but the timed simulation sees pulses whenever `a` toggles.
        assert report.transition_density["f"] > 0.2
        assert report.glitch_fraction > 0.0
        assert ("f", report.transition_density["f"]) in report.worst_glitchers(3)

    def test_glitch_fraction_plausible_on_benchmark(self, lib):
        from repro.bench.suite import build_benchmark

        netlist = build_benchmark("misex1", lib)
        report = analyze_glitches(netlist, num_pairs=96, seed=5)
        # Real multi-level circuits glitch, but not absurdly: the paper
        # quotes ~20%; accept a generous band.
        assert 0.0 <= report.glitch_fraction < 0.6

    def test_deterministic(self, figure2):
        a = analyze_glitches(figure2, num_pairs=64, seed=6)
        b = analyze_glitches(figure2, num_pairs=64, seed=6)
        assert a.timed_power == b.timed_power

    def test_biased_inputs(self, figure2):
        report = analyze_glitches(
            figure2, num_pairs=64, seed=7, input_probs={"a": 0.9}
        )
        assert report.timed_power >= 0.0
