"""Tests for the signal-probability engines."""

import pytest

from repro.errors import NetlistError
from repro.power.probability import (
    ExactBddProbability,
    PropagationProbability,
    SimulationProbability,
)


class TestSimulationEngine:
    def test_exhaustive_is_exact(self, figure2):
        engine = SimulationProbability(figure2, exhaustive=True)
        assert engine.probability("e") == 0.25
        assert engine.probability("d") == 0.5
        assert engine.probability("f") == 0.25
        assert engine.probability("a") == 0.5

    def test_exhaustive_rejects_bias(self, figure2):
        with pytest.raises(NetlistError):
            SimulationProbability(
                figure2, exhaustive=True, input_probs={"a": 0.9}
            )

    def test_monte_carlo_close_to_exact(self, figure2):
        engine = SimulationProbability(figure2, num_patterns=16384, seed=1)
        assert engine.probability("e") == pytest.approx(0.25, abs=0.02)

    def test_deterministic(self, figure2):
        a = SimulationProbability(figure2, num_patterns=512, seed=9)
        b = SimulationProbability(figure2, num_patterns=512, seed=9)
        for name in figure2.gates:
            assert a.probability(name) == b.probability(name)

    def test_update_fanout_matches_refresh(self, figure2):
        engine = SimulationProbability(figure2, exhaustive=True)
        f = figure2.gate("f")
        e = figure2.gate("e")
        figure2.replace_fanin(f, 0, e)  # f = e & b now
        engine.update_fanout([f])
        incremental = {n: engine.probability(n) for n in figure2.gates}
        engine.refresh()
        full = {n: engine.probability(n) for n in figure2.gates}
        assert incremental == full

    def test_update_handles_removed_gates(self, figure2):
        engine = SimulationProbability(figure2, exhaustive=True)
        f = figure2.gate("f")
        figure2.replace_fanin(f, 0, figure2.gate("e"))
        removed = figure2.sweep_dead()
        assert "d" in removed
        engine.update_fanout([f])
        with pytest.raises(KeyError):
            engine.probability("d")


class TestPropagationEngine:
    def test_exact_on_tree(self, builder):
        # A tree: no reconvergence, propagation is exact.
        a, b, c, d = builder.inputs("a", "b", "c", "d")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.or_(c, d, name="g2")
        g3 = builder.xor_(g1, g2, name="g3")
        builder.output("o", g3)
        nl = builder.build()
        prop = PropagationProbability(nl)
        exact = ExactBddProbability(nl)
        for name in nl.gates:
            assert prop.probability(name) == pytest.approx(
                exact.probability(name)
            )

    def test_biased_inputs(self, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        builder.output("o", g)
        nl = builder.build()
        prop = PropagationProbability(nl, input_probs={"a": 1.0, "b": 0.5})
        assert prop.probability("g") == pytest.approx(0.5)

    def test_reconvergence_bias_exists(self, builder):
        # f = a & !a should be 0; propagation thinks 0.25.
        a = builder.input("a")
        na = builder.not_(a, name="na")
        f = builder.and_(a, na, name="f")
        builder.output("o", f)
        nl = builder.build()
        prop = PropagationProbability(nl)
        exact = ExactBddProbability(nl)
        assert exact.probability("f") == 0.0
        assert prop.probability("f") == pytest.approx(0.25)

    def test_update_fanout(self, figure2):
        prop = PropagationProbability(figure2)
        f = figure2.gate("f")
        figure2.replace_fanin(f, 0, figure2.gate("e"))
        prop.update_fanout([f])
        reference = PropagationProbability(figure2)
        for name in figure2.gates:
            assert prop.probability(name) == pytest.approx(
                reference.probability(name)
            )


class TestExactEngine:
    def test_figure2(self, figure2):
        exact = ExactBddProbability(figure2)
        assert exact.probability("e") == pytest.approx(0.25)
        assert exact.probability("f") == pytest.approx(0.25)

    def test_matches_exhaustive_simulation(self, random_netlist):
        exact = ExactBddProbability(random_netlist)
        sim = SimulationProbability(random_netlist, exhaustive=True)
        for name in random_netlist.gates:
            assert exact.probability(name) == pytest.approx(
                sim.probability(name)
            ), name

    def test_biased(self, builder):
        a, b = builder.inputs("a", "b")
        g = builder.or_(a, b, name="g")
        builder.output("o", g)
        nl = builder.build()
        exact = ExactBddProbability(nl, input_probs={"a": 0.1, "b": 0.2})
        assert exact.probability("g") == pytest.approx(1 - 0.9 * 0.8)

    def test_update_is_refresh(self, figure2):
        exact = ExactBddProbability(figure2)
        f = figure2.gate("f")
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        # Change d to c XOR c = 0: p(d) and p(f) collapse to 0.
        figure2.replace_fanin(d, pin, figure2.gate("c"))
        changed = exact.update_fanout([d])
        assert "d" in changed and "f" in changed
        assert exact.probability("f") == 0.0
