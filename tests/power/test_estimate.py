"""Tests for the power estimator (eq. 1)."""

import pytest

from repro.power.estimate import PowerEstimator, transition_probability
from repro.power.probability import SimulationProbability


class TestTransitionProbability:
    def test_extremes(self):
        assert transition_probability(0.0) == 0.0
        assert transition_probability(1.0) == 0.0

    def test_maximum_at_half(self):
        assert transition_probability(0.5) == 0.5

    def test_symmetry(self):
        assert transition_probability(0.3) == pytest.approx(
            transition_probability(0.7)
        )


def exhaustive_estimator(netlist):
    return PowerEstimator(
        netlist, SimulationProbability(netlist, exhaustive=True)
    )


class TestEstimator:
    def test_total_matches_hand_computation(self, figure2):
        est = exhaustive_estimator(figure2)
        # Loads: a -> and(e) pin 1 + xor(d) pin 2 = 3; b -> 2 and pins = 2;
        # c -> xor pin = 2; d -> and pin = 1; e -> PO 1; f -> PO 1.
        # E: inputs 0.5; d 0.5; e,f 2*0.25*0.75 = 0.375.
        expected = (
            3 * 0.5 + 2 * 0.5 + 2 * 0.5 + 1 * 0.5 + 1 * 0.375 + 1 * 0.375
        )
        assert est.total() == pytest.approx(expected)

    def test_contribution_sums_to_total(self, random_netlist):
        est = exhaustive_estimator(random_netlist)
        total = sum(
            est.contribution(g) for g in random_netlist.gates.values()
        )
        assert est.total() == pytest.approx(total)

    def test_report(self, figure2):
        est = exhaustive_estimator(figure2)
        report = est.report()
        assert report.total == pytest.approx(est.total())
        assert report.num_signals == len(figure2.gates)
        top = report.top_contributors(2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]

    def test_physical_power_scaling(self, figure2):
        est = exhaustive_estimator(figure2)
        est.vdd = 2.0
        est.frequency = 1.0
        assert est.physical_power() == pytest.approx(2.0 * est.total())

    def test_incremental_update_consistent(self, figure2):
        est = exhaustive_estimator(figure2)
        f = figure2.gate("f")
        figure2.replace_fanin(f, 0, figure2.gate("e"))
        figure2.sweep_dead()
        est.update_after_edit([f])
        incremental_total = est.total()
        fresh = exhaustive_estimator(figure2)
        assert incremental_total == pytest.approx(fresh.total())

    def test_engine_netlist_mismatch(self, figure2, random_netlist):
        engine = SimulationProbability(random_netlist, exhaustive=True)
        with pytest.raises(ValueError):
            PowerEstimator(figure2, engine)

    def test_figure2_improvement_direction(self, figure2):
        # The paper's rewiring reduces sum C*E.
        est = exhaustive_estimator(figure2)
        before = est.total()
        f = figure2.gate("d")
        pin = [i for i, g in enumerate(f.fanins) if g.name == "a"][0]
        figure2.replace_fanin(f, pin, figure2.gate("e"))
        est.update_after_edit([f])
        assert est.total() < before


class TestReportExtras:
    def test_by_signal_triplets(self, figure2):
        est = exhaustive_estimator(figure2)
        report = est.report()
        for name, (c, e, ce) in report.by_signal.items():
            assert ce == pytest.approx(c * e)
            assert 0.0 <= e <= 0.5 + 1e-12

    def test_probability_accessor(self, figure2):
        est = exhaustive_estimator(figure2)
        assert est.probability(figure2.gate("e")) == pytest.approx(0.25)

    def test_load_accessor(self, figure2):
        est = exhaustive_estimator(figure2)
        # e drives only its PO (load 1.0).
        assert est.load(figure2.gate("e")) == pytest.approx(1.0)
