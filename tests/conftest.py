"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.library.standard import standard_library
from repro.netlist.build import NetlistBuilder
from repro.netlist.netlist import Netlist


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the committed golden run traces under "
        "tests/telemetry/golden/ instead of comparing against them",
    )


@pytest.fixture(scope="session")
def lib():
    return standard_library()


@pytest.fixture
def builder(lib):
    return NetlistBuilder(lib, "test")


def make_figure2(lib) -> Netlist:
    """The paper's Figure-2 circuit: e = a·b, d = a⊕c, f = d·b."""
    b = NetlistBuilder(lib, "fig2")
    a, bb, c = b.inputs("a", "b", "c")
    b.and_(a, bb, name="e")
    d = b.xor_(a, c, name="d")
    f = b.and_(d, bb, name="f")
    b.output("f_out", f)
    b.output("e_out", b.netlist.gate("e"))
    return b.build()


@pytest.fixture
def figure2(lib):
    return make_figure2(lib)


def make_random_netlist(
    lib, num_inputs: int, num_gates: int, num_outputs: int, seed: int
) -> Netlist:
    """A random mapped DAG over 2-input cells (deterministic per seed)."""
    rng = random.Random(seed)
    b = NetlistBuilder(lib, f"rand{seed}")
    signals = [b.input(f"x{i}") for i in range(num_inputs)]
    ops = [b.and_, b.or_, b.nand_, b.nor_, b.xor_, b.xnor_]
    for i in range(num_gates):
        op = rng.choice(ops)
        left = rng.choice(signals)
        right = rng.choice(signals)
        if left is right:
            right = rng.choice(signals)
        signals.append(op(left, right, name=f"g{i}"))
        if rng.random() < 0.15:
            signals.append(b.not_(signals[-1], name=f"n{i}"))
    # Last gates (and a couple of random picks) become outputs.
    chosen = signals[-num_outputs:]
    for index, gate in enumerate(chosen):
        b.output(f"o{index}", gate)
    netlist = b.build()
    netlist.sweep_dead()
    return netlist


@pytest.fixture
def random_netlist(lib):
    return make_random_netlist(lib, 6, 18, 3, seed=7)
