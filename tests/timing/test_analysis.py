"""Tests for static timing analysis."""

import pytest

from repro.netlist.netlist import Netlist
from repro.timing.analysis import TimingAnalysis, gate_delay


class TestGateDelay:
    def test_linear_model(self, lib, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        builder.output("o", g, load=1.0)
        nl = builder.build()
        cell = lib["and2"]
        tau = max(p.tau for p in cell.pins)
        res = max(p.resistance for p in cell.pins)
        assert gate_delay(nl, g) == pytest.approx(tau + res * 1.0)

    def test_load_dependence(self, lib, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        builder.xor_(g, a, name="x")  # adds load 2.0 to g
        builder.output("o", nl_gate := g, load=1.0)
        nl = builder.build()
        base = gate_delay(nl, g)
        assert gate_delay(nl, g, extra_load=1.0) == pytest.approx(
            base + max(p.resistance for p in lib["and2"].pins)
        )

    def test_input_has_zero_delay(self, builder):
        a = builder.input("a")
        nl = builder.build()
        assert gate_delay(nl, a) == 0.0


class TestTimingAnalysis:
    def test_chain_arrival(self, lib, builder):
        a = builder.input("a")
        g1 = builder.not_(a, name="g1")
        g2 = builder.not_(g1, name="g2")
        builder.output("o", g2, load=1.0)
        nl = builder.build()
        ta = TimingAnalysis(nl)
        d1 = gate_delay(nl, g1)
        d2 = gate_delay(nl, g2)
        assert ta.arrival["g1"] == pytest.approx(d1)
        assert ta.arrival["g2"] == pytest.approx(d1 + d2)
        assert ta.circuit_delay == pytest.approx(d1 + d2)

    def test_max_over_fanins(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.not_(a, name="g1")
        g2 = builder.and_(g1, b, name="g2")
        builder.output("o", g2)
        nl = builder.build()
        ta = TimingAnalysis(nl)
        assert ta.arrival["g2"] == pytest.approx(
            ta.arrival["g1"] + ta.delay_of["g2"]
        )

    def test_required_times_and_slack(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.not_(a, name="g1")
        g2 = builder.and_(g1, b, name="g2")
        builder.output("o", g2)
        nl = builder.build()
        ta = TimingAnalysis(nl)
        # Default constraint = circuit delay: critical path slack 0.
        assert ta.slack(g2) == pytest.approx(0.0)
        assert ta.slack(g1) == pytest.approx(0.0)
        # b arrives at 0 but is only needed later.
        assert ta.slack(b) >= 0

    def test_explicit_constraint(self, builder):
        a = builder.input("a")
        g = builder.not_(a, name="g")
        builder.output("o", g)
        nl = builder.build()
        ta = TimingAnalysis(nl, required_limit=100.0)
        assert ta.slack(g) == pytest.approx(100.0 - ta.arrival["g"])
        assert ta.meets(100.0)

    def test_violated_constraint(self, builder):
        a = builder.input("a")
        g = builder.not_(a, name="g")
        builder.output("o", g)
        nl = builder.build()
        ta = TimingAnalysis(nl, required_limit=0.0)
        assert ta.slack(g) < 0
        assert not ta.meets(0.0)

    def test_dead_logic_has_infinite_slack(self, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        dead = builder.not_(g, name="dead")
        builder.output("o", g)
        nl = builder.build()
        ta = TimingAnalysis(nl)
        assert ta.slack(dead) == float("inf")

    def test_critical_path(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.xor_(a, b, name="g1")
        g2 = builder.not_(g1, name="g2")
        builder.output("o", g2)
        nl = builder.build()
        path = [g.name for g in TimingAnalysis(nl).critical_path()]
        assert path[-1] == "g2"
        assert path[-2] == "g1"

    def test_empty_netlist(self, lib):
        nl = Netlist("empty", lib)
        ta = TimingAnalysis(nl)
        assert ta.circuit_delay == 0.0
        assert ta.critical_path() == []

    def test_validate(self, random_netlist):
        TimingAnalysis(random_netlist).validate()

    def test_more_load_more_delay(self, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        builder.output("o", g)
        nl = builder.build()
        before = TimingAnalysis(nl).circuit_delay
        # Hang two extra sinks on g.
        builder.output("o2", builder.xor_(g, a, name="x"))
        after = TimingAnalysis(nl).circuit_delay
        assert after > before
