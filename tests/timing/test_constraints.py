"""Tests for delay-constraint handling (§3.4)."""

import pytest

from repro.errors import TimingError
from repro.timing.analysis import TimingAnalysis
from repro.timing.constraints import (
    DelayConstraint,
    quick_delay_reject,
    substitution_meets_constraint,
)


class TestDelayConstraint:
    def test_from_netlist_zero_slack(self, figure2):
        constraint = DelayConstraint.from_netlist(figure2, 0.0)
        assert constraint.limit == pytest.approx(
            TimingAnalysis(figure2).circuit_delay
        )

    def test_from_netlist_with_slack(self, figure2):
        base = TimingAnalysis(figure2).circuit_delay
        constraint = DelayConstraint.from_netlist(figure2, 50.0)
        assert constraint.limit == pytest.approx(base * 1.5)

    def test_negative_slack_rejected(self, figure2):
        with pytest.raises(TimingError):
            DelayConstraint.from_netlist(figure2, -10.0)

    def test_satisfied_by(self, figure2):
        constraint = DelayConstraint.from_netlist(figure2, 0.0)
        assert constraint.satisfied_by(figure2)

    def test_meets_constraint_none(self, figure2):
        assert substitution_meets_constraint(figure2, None)

    def test_meets_constraint_exact(self, figure2):
        tight = DelayConstraint(0.001)
        assert not substitution_meets_constraint(figure2, tight)
        loose = DelayConstraint(1e9)
        assert substitution_meets_constraint(figure2, loose)


class TestQuickReject:
    def test_late_arrival_rejected(self, builder):
        # Long chain from a; substituting its end into an early signal
        # violates the required time.
        a, b = builder.inputs("a", "b")
        chain = a
        for i in range(6):
            chain = builder.not_(chain, name=f"c{i}")
        early = builder.and_(a, b, name="early")
        merge = builder.and_(chain, early, name="merge")
        builder.output("o", merge)
        nl = builder.build()
        timing = TimingAnalysis(nl)  # constraint = current delay
        # 'early' is needed at its required time; the chain end arrives
        # much later, so substituting early <- c5 must be rejected.
        assert quick_delay_reject(
            timing,
            substituting=nl.gate("c5"),
            substituted=early,
            added_load=1.0,
        )

    def test_early_arrival_accepted(self, builder):
        a, b = builder.inputs("a", "b")
        chain = a
        for i in range(6):
            chain = builder.not_(chain, name=f"c{i}")
        early = builder.and_(a, b, name="early")
        merge = builder.and_(chain, early, name="merge")
        builder.output("o", merge)
        nl = builder.build()
        timing = TimingAnalysis(nl)
        # Substituting deep signal c5 by the early AND adds little load and
        # arrives far before c5's required time.
        assert not quick_delay_reject(
            timing,
            substituting=early,
            substituted=nl.gate("c5"),
            added_load=0.0,
        )

    def test_load_slack_rejection(self, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        builder.output("o", g)
        nl = builder.build()
        timing = TimingAnalysis(nl)  # zero slack on the critical path
        # Any real extra load on g must push it past its slack.
        assert quick_delay_reject(
            timing, substituting=g, substituted=g, added_load=100.0
        )
