"""Incremental STA: ``update_after_edit`` must match a from-scratch rebuild
exactly, and ``what_if`` must match STA on an applied trial copy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError, TransformError
from repro.library.standard import standard_library
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.timing.analysis import TimingAnalysis
from repro.transform.candidates import CandidateOptions, generate_candidates
from repro.transform.substitution import (
    IS2,
    OS2,
    Substitution,
    apply_substitution,
    apply_to_copy,
)

from tests.conftest import make_random_netlist

LIB = standard_library()


def _estimator(netlist, seed=2):
    return PowerEstimator(
        netlist, SimulationProbability(netlist, num_patterns=256, seed=seed)
    )


def assert_timing_equal(incremental, fresh):
    assert set(incremental.arrival) == set(fresh.arrival)
    for name, value in fresh.arrival.items():
        assert incremental.arrival[name] == value, name
    for name, value in fresh.delay_of.items():
        assert incremental.delay_of[name] == value, name
    assert incremental.circuit_delay == fresh.circuit_delay
    assert incremental.required_limit == fresh.required_limit
    assert incremental.required == fresh.required


class TestUpdateAfterEdit:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_rebuild_after_substitutions(self, seed):
        netlist = make_random_netlist(LIB, 6, 20, 3, seed)
        estimator = _estimator(netlist)
        timing = TimingAnalysis(netlist)
        pool = generate_candidates(estimator, CandidateOptions(max_total=50))
        applied_count = 0
        for candidate in pool:
            if applied_count >= 4:
                break
            if not candidate.substitution.validate_against(netlist):
                continue
            try:
                applied = apply_substitution(netlist, candidate.substitution)
            except (TransformError, NetlistError):
                continue
            applied_count += 1
            roots = [
                netlist.gate(n)
                for n in applied.dirty_gate_names(netlist)
            ]
            timing.update_after_edit(roots)
            assert_timing_equal(timing, TimingAnalysis(netlist))

    def test_with_explicit_limit(self):
        netlist = make_random_netlist(LIB, 5, 14, 2, seed=11)
        limit = TimingAnalysis(netlist).circuit_delay * 1.5
        timing = TimingAnalysis(netlist, limit)
        estimator = _estimator(netlist)
        pool = generate_candidates(estimator, CandidateOptions(max_total=20))
        for candidate in pool:
            if not candidate.substitution.validate_against(netlist):
                continue
            try:
                applied = apply_substitution(netlist, candidate.substitution)
            except (TransformError, NetlistError):
                continue
            roots = [netlist.gate(n) for n in applied.dirty_gate_names(netlist)]
            timing.update_after_edit(roots)
            break
        fresh = TimingAnalysis(netlist, limit)
        assert_timing_equal(timing, fresh)
        assert timing.required_limit == limit

    def test_required_lazy_invalidated(self):
        netlist = make_random_netlist(LIB, 5, 14, 2, seed=4)
        timing = TimingAnalysis(netlist)
        before = dict(timing.required)
        estimator = _estimator(netlist)
        for candidate in generate_candidates(estimator, CandidateOptions()):
            try:
                applied = apply_substitution(netlist, candidate.substitution)
            except (TransformError, NetlistError):
                continue
            roots = [netlist.gate(n) for n in applied.dirty_gate_names(netlist)]
            timing.update_after_edit(roots)
            break
        after = timing.required
        assert after == TimingAnalysis(netlist).required
        assert set(before) != set(after) or before != after or True

    def test_noop_update(self):
        netlist = make_random_netlist(LIB, 5, 12, 2, seed=9)
        timing = TimingAnalysis(netlist)
        timing.update_after_edit([])
        assert_timing_equal(timing, TimingAnalysis(netlist))


class TestWhatIf:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_trial_copy(self, seed):
        netlist = make_random_netlist(LIB, 6, 20, 3, seed)
        estimator = _estimator(netlist)
        timing = TimingAnalysis(netlist)
        checked = 0
        for candidate in generate_candidates(
            estimator, CandidateOptions(max_total=60)
        ):
            predicted = timing.what_if(candidate.substitution)
            try:
                trial, _ = apply_to_copy(netlist, candidate.substitution)
            except (TransformError, NetlistError):
                assert predicted is None
                continue
            expected = TimingAnalysis(trial).circuit_delay
            assert predicted is not None
            assert predicted == pytest.approx(expected, abs=1e-9), str(
                candidate.substitution
            )
            checked += 1
        assert checked > 0

    def test_stale_substitution_is_none(self):
        netlist = make_random_netlist(LIB, 5, 14, 2, seed=6)
        timing = TimingAnalysis(netlist)
        sub = Substitution(OS2, "does_not_exist", netlist.input_names[0])
        assert timing.what_if(sub) is None

    def test_cycle_creating_substitution_is_none(self):
        netlist = make_random_netlist(LIB, 5, 16, 3, seed=8)
        timing = TimingAnalysis(netlist)
        # Find a (target, source) pair where the source lies in the TFO of
        # one of the target's sinks: rewiring would create a cycle, and the
        # reference path (apply_to_copy) raises.
        found = None
        for target in netlist.logic_gates():
            for sink, pin in target.fanouts:
                from repro.netlist.traverse import transitive_fanout

                for downstream in transitive_fanout(netlist, [sink]):
                    if downstream is target or downstream.is_input:
                        continue
                    sub = Substitution(
                        IS2, target.name, downstream.name, branch=(sink.name, pin)
                    )
                    found = sub
                    break
                if found:
                    break
            if found:
                break
        if found is None:
            pytest.skip("no cycle-creating pair in this netlist")
        with pytest.raises((TransformError, NetlistError)):
            apply_to_copy(netlist, found)
        assert timing.what_if(found) is None

    def test_inverted_and_pair_candidates_covered(self):
        # Make sure the property test exercised OS3/IS3 and inversion at
        # least once across a few seeds (guards against silent fast-paths).
        kinds = set()
        for seed in range(6):
            netlist = make_random_netlist(LIB, 6, 20, 3, seed)
            estimator = _estimator(netlist)
            timing = TimingAnalysis(netlist)
            for candidate in generate_candidates(
                estimator, CandidateOptions(max_total=80)
            ):
                sub = candidate.substitution
                predicted = timing.what_if(sub)
                try:
                    trial, _ = apply_to_copy(netlist, sub)
                except (TransformError, NetlistError):
                    assert predicted is None
                    continue
                assert predicted == pytest.approx(
                    TimingAnalysis(trial).circuit_delay, abs=1e-9
                )
                kinds.add((sub.kind, sub.invert1))
        assert len(kinds) >= 3
