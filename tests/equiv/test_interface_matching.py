"""Interface matching in the production checker is by name, never position.

Regression tests for the guarantee documented on ``check_equivalent``: the
operands may declare their primary inputs/outputs in any order, and a true
name-set mismatch raises a clean :class:`NetlistError` up front instead of
a deep KeyError from whichever stage touched the missing signal first.
"""

from __future__ import annotations

import pytest

from repro.equiv.checker import EQUAL, NOT_EQUAL, check_equivalent
from repro.errors import NetlistError
from repro.netlist.build import NetlistBuilder


def _build(lib, pi_order, po_order=("s", "c"), flip=False):
    """A 1-bit adder slice; ``pi_order``/``po_order`` permute declarations."""
    b = NetlistBuilder(lib, "slice")
    pis = {name: b.input(name) for name in pi_order}
    a, x, cin = pis["a"], pis["b"], pis["cin"]
    t = b.xor_(a, x, name="t")
    s = b.xor_(t, cin, name="s_g")
    and1 = b.and_(a, x, name="and1")
    and2 = b.and_(t, cin, name="and2")
    carry = b.or_(and1, and2, name="c_g")
    if flip:  # functionally different: carry output inverted
        carry = b.not_(carry, name="c_inv")
    outputs = {"s": s, "c": carry}
    for po in po_order:
        b.output(po, outputs[po])
    return b.build()


def test_equal_with_permuted_pi_and_po_order(lib):
    left = _build(lib, ["a", "b", "cin"])
    right = _build(lib, ["cin", "b", "a"], po_order=("c", "s"))
    assert check_equivalent(left, right).status == EQUAL


def test_equal_with_permuted_order_through_atpg_stage(lib):
    # num_patterns=0 skips the simulation filter: the ATPG/miter stage must
    # itself be order-independent.
    left = _build(lib, ["a", "b", "cin"])
    right = _build(lib, ["cin", "a", "b"])
    result = check_equivalent(left, right, num_patterns=0)
    assert result.status == EQUAL
    assert result.stage in ("atpg", "bdd")


def test_equal_with_permuted_order_through_bdd_stage(lib):
    # A one-backtrack budget forces the ATPG stage to abort, pushing the
    # decision into the BDD fallback, which must also match by name.
    left = _build(lib, ["a", "b", "cin"])
    right = _build(lib, ["b", "cin", "a"])
    result = check_equivalent(left, right, num_patterns=0, backtrack_limit=1)
    assert result.status == EQUAL


def test_not_equal_with_permuted_order_gives_valid_counterexample(lib):
    left = _build(lib, ["a", "b", "cin"])
    right = _build(lib, ["cin", "b", "a"], flip=True)
    result = check_equivalent(left, right)
    assert result.status == NOT_EQUAL
    cex = result.counterexample
    assert cex is not None and set(cex) == {"a", "b", "cin"}
    # The vector must actually distinguish the pair.
    from repro.fuzz.oracle import verify_counterexample

    assert verify_counterexample(left, right, cex)


def test_differing_input_sets_raise_with_names(lib):
    left = _build(lib, ["a", "b", "cin"])
    b2 = NetlistBuilder(lib, "other")
    a, x = b2.inputs("a", "b")
    b2.output("s", b2.xor_(a, x, name="s_g"))
    b2.output("c", b2.and_(a, x, name="c_g"))
    with pytest.raises(NetlistError, match="cin"):
        check_equivalent(left, b2.build())


def test_differing_output_sets_raise_with_names(lib):
    left = _build(lib, ["a", "b", "cin"])
    right = _build(lib, ["a", "b", "cin"])
    renamed = right.copy("renamed")
    driver = renamed.outputs.pop("c")
    renamed.output_loads.pop("c", None)
    driver.po_names.remove("c")
    renamed.set_output("carry", driver)
    with pytest.raises(NetlistError, match="carry"):
        check_equivalent(left, renamed)
