"""Tests for miter construction."""

import pytest

from repro.equiv.miter import build_miter
from repro.errors import NetlistError
from repro.netlist.simulate import SimState, exhaustive_patterns
from repro.netlist.verify import check_netlist
from tests.conftest import make_figure2


class TestBuildMiter:
    def test_equal_circuits_miter_is_zero(self, lib, figure2):
        other = make_figure2(lib)
        miter, out = build_miter(figure2, other)
        check_netlist(miter)
        sim = SimState(miter, exhaustive_patterns(miter.input_names))
        assert sim.signal_probability(out.name) == 0.0

    def test_different_circuits_miter_fires(self, lib, figure2, builder):
        a, bb, c = builder.inputs("a", "b", "c")
        e = builder.and_(a, bb, name="e")
        f = builder.or_(a, c, name="f")  # different function for f_out
        builder.output("f_out", f)
        builder.output("e_out", e)
        other = builder.build()
        miter, out = build_miter(figure2, other)
        sim = SimState(miter, exhaustive_patterns(miter.input_names))
        assert sim.signal_probability(out.name) > 0.0

    def test_operands_untouched(self, lib, figure2):
        other = make_figure2(lib)
        gates_before = set(figure2.gates)
        build_miter(figure2, other)
        assert set(figure2.gates) == gates_before
        check_netlist(figure2)

    def test_mismatched_inputs_rejected(self, lib, figure2, builder):
        builder.input("z")
        g = builder.not_(builder.netlist.gate("z"))
        builder.output("f_out", g)
        builder.output("e_out", g)
        with pytest.raises(NetlistError):
            build_miter(figure2, builder.build())

    def test_mismatched_outputs_rejected(self, lib, figure2, builder):
        a, bb, c = builder.inputs("a", "b", "c")
        g = builder.and_(a, bb)
        builder.output("only", g)
        with pytest.raises(NetlistError):
            build_miter(figure2, builder.build())

    def test_multi_output_or_tree(self, lib, builder):
        # Four outputs exercise the OR-tree reduction.
        a, b = builder.inputs("a", "b")
        for i, g in enumerate(
            [builder.and_(a, b), builder.or_(a, b), builder.xor_(a, b), builder.nand_(a, b)]
        ):
            builder.output(f"o{i}", g)
        left = builder.build()
        from repro.netlist.build import NetlistBuilder

        b2 = NetlistBuilder(lib, "right")
        a2, bb2 = b2.inputs("a", "b")
        for i, g in enumerate(
            [b2.and_(a2, bb2), b2.or_(a2, bb2), b2.xor_(a2, bb2), b2.nand_(a2, bb2)]
        ):
            b2.output(f"o{i}", g)
        right = b2.build()
        miter, out = build_miter(left, right)
        sim = SimState(miter, exhaustive_patterns(miter.input_names))
        assert sim.signal_probability(out.name) == 0.0
