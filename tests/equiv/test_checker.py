"""Tests for the equivalence oracle."""

import pytest

from repro.equiv.checker import EQUAL, NOT_EQUAL, UNKNOWN, check_equivalent
from repro.netlist.simulate import SimState, exhaustive_patterns
from tests.conftest import make_figure2, make_random_netlist


def evaluate_outputs(netlist, assignment):
    sim_inputs = {}
    import numpy as np

    for name in netlist.input_names:
        value = assignment[name]
        sim_inputs[name] = np.full(
            1, np.uint64(0xFFFFFFFFFFFFFFFF if value else 0), dtype=np.uint64
        )
    sim = SimState(netlist, sim_inputs)
    return {po: int(sim.value(d.name)[0]) & 1 for po, d in netlist.outputs.items()}


class TestCheckEquivalent:
    def test_identical_copies(self, lib, figure2):
        result = check_equivalent(figure2, make_figure2(lib))
        assert result.status == EQUAL
        assert result.equal

    def test_self_copy(self, random_netlist):
        result = check_equivalent(random_netlist, random_netlist.copy("c"))
        assert result.equal

    def test_functionally_equal_different_structure(self, lib, builder):
        # a & b  vs  !(!(a & b)) via nand+inv
        a, b = builder.inputs("a", "b")
        builder.output("o", builder.and_(a, b))
        left = builder.build()
        from repro.netlist.build import NetlistBuilder

        b2 = NetlistBuilder(lib)
        a2, bb2 = b2.inputs("a", "b")
        n = b2.nand_(a2, bb2)
        b2.output("o", b2.not_(n))
        result = check_equivalent(left, b2.build())
        assert result.equal

    def test_not_equal_has_valid_counterexample(self, lib, builder):
        a, b = builder.inputs("a", "b")
        builder.output("o", builder.and_(a, b))
        left = builder.build()
        from repro.netlist.build import NetlistBuilder

        b2 = NetlistBuilder(lib)
        a2, bb2 = b2.inputs("a", "b")
        b2.output("o", b2.or_(a2, bb2))
        right = b2.build()
        result = check_equivalent(left, right)
        assert result.status == NOT_EQUAL
        assert result.counterexample is not None
        assert evaluate_outputs(left, result.counterexample) != evaluate_outputs(
            right, result.counterexample
        )

    def test_atpg_only_path(self, lib, builder):
        # Disable the simulation stage; ATPG must find the difference.
        a, b = builder.inputs("a", "b")
        builder.output("o", builder.and_(a, b))
        left = builder.build()
        from repro.netlist.build import NetlistBuilder

        b2 = NetlistBuilder(lib)
        a2, bb2 = b2.inputs("a", "b")
        b2.output("o", b2.xor_(a2, bb2))
        right = b2.build()
        result = check_equivalent(left, right, num_patterns=0)
        assert result.status == NOT_EQUAL
        assert result.stage == "atpg"
        assert evaluate_outputs(left, result.counterexample) != evaluate_outputs(
            right, result.counterexample
        )

    def test_unknown_on_zero_budget(self, lib, figure2):
        # Equal circuits with no ATPG budget: cannot prove, must say so.
        result = check_equivalent(
            figure2, make_figure2(lib), backtrack_limit=0
        )
        assert result.status in (EQUAL, UNKNOWN)
        # With equal circuits the simulation stage finds nothing and the
        # justifier proves UNSAT only if it needs no backtracking; a zero
        # budget must never yield NOT_EQUAL.
        assert result.status != NOT_EQUAL

    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_random_self_equivalence(self, lib, seed):
        nl = make_random_netlist(lib, 5, 15, 3, seed=seed)
        assert check_equivalent(nl, nl.copy("c")).equal

    @pytest.mark.parametrize("seed", [31, 32])
    def test_random_mutation_detected(self, lib, seed):
        nl = make_random_netlist(lib, 5, 15, 3, seed=seed)
        mutated = nl.copy("m")
        # Flip one gate's cell: and <-> or (changes the function somewhere
        # visible, usually).
        for gate in mutated.logic_gates():
            if gate.cell.name == "and2" and gate.po_names:
                gate.cell = mutated.library["or2"]
                break
        else:
            # Fall back: invert one PO by inserting an inverter.
            po, driver = next(iter(mutated.outputs.items()))
            inv = mutated.add_gate(
                mutated.library.inverter(), [driver], name="mut"
            )
            mutated.set_output(po, inv)
        result = check_equivalent(nl, mutated)
        assert result.status == NOT_EQUAL


class TestBddFallback:
    def build_adder_pair(self, lib, width=6, mutate=False):
        """Two ripple adders; optionally one output inverted."""
        from repro.bench.functions import adder_exprs
        from repro.synth.subject import SubjectGraph
        from repro.synth.mapper import technology_map, MapOptions

        bundle = adder_exprs("add", width, carry_in=True)
        graph = SubjectGraph("add")
        for pi in bundle.input_names:
            graph.add_pi(pi)
        for po, expr in bundle.outputs.items():
            graph.set_output(po, graph.add_expr(expr))
        nl = technology_map(graph, lib, MapOptions(mode="area"))
        other = nl.copy("other")
        if mutate:
            po, driver = next(iter(other.outputs.items()))
            inv = other.add_gate(other.library.inverter(), [driver], name="mut")
            other.set_output(po, inv)
        return nl, other

    def test_bdd_proves_adder_equivalence(self, lib):
        # Zero ATPG budget forces the BDD stage; adders have linear BDDs.
        left, right = self.build_adder_pair(lib)
        result = check_equivalent(right, left, backtrack_limit=0)
        assert result.equal
        assert result.stage == "bdd"

    def test_bdd_counterexample_is_valid(self, lib):
        left, right = self.build_adder_pair(lib, mutate=True)
        result = check_equivalent(
            left, right, num_patterns=0, backtrack_limit=0
        )
        assert result.status == NOT_EQUAL
        # Inverted-output differences are easy: ATPG may find them without
        # any backtracking; either stage must hand back a real witness.
        assert result.stage in ("atpg", "bdd")
        assert evaluate_outputs(left, result.counterexample) != evaluate_outputs(
            right, result.counterexample
        )

    def test_fallback_disabled_gives_unknown(self, lib):
        left, right = self.build_adder_pair(lib)
        result = check_equivalent(
            right, left, backtrack_limit=0, bdd_node_limit=0
        )
        assert result.status == UNKNOWN
