"""Tests for the built-in standard library."""

from repro.library.standard import standard_library


class TestStandardLibrary:
    def test_validates(self):
        lib = standard_library()
        lib.validate()

    def test_cached_instance(self):
        assert standard_library() is standard_library()

    def test_expected_gate_classes(self):
        lib = standard_library()
        for name in [
            "inv1", "buf1", "nand2", "nand3", "nand4", "nor2", "nor3",
            "nor4", "and2", "or2", "xor2", "xnor2", "aoi21", "oai21",
            "zero", "one",
        ]:
            assert name in lib, name

    def test_figure2_load_convention(self):
        # The paper's example: AND input load 1, XOR input load 2.
        lib = standard_library()
        assert lib["and2"].pins[0].load == 1.0
        assert lib["xor2"].pins[0].load == 2.0

    def test_functions(self):
        lib = standard_library()
        assert lib["nand2"].function.bits == 0b0111
        assert lib["xor2"].function.bits == 0b0110
        assert lib["xnor2"].function.bits == 0b1001
        assert lib["aoi21"].evaluate([1, 1, 0]) == 0
        assert lib["aoi21"].evaluate([0, 0, 0]) == 1
        assert lib["oai22"].evaluate([1, 0, 0, 1]) == 0

    def test_constants(self):
        lib = standard_library()
        assert lib.constant(False).name == "zero"
        assert lib.constant(True).name == "one"

    def test_inverter_is_smallest(self):
        lib = standard_library()
        assert lib.inverter().name == "inv1"

    def test_areas_monotone_in_fanin(self):
        lib = standard_library()
        assert lib["nand2"].area < lib["nand3"].area < lib["nand4"].area
