"""Tests for genlib parsing and writing."""

import pytest

from repro.errors import LibraryError, ParseError
from repro.library.genlib import parse_genlib, write_genlib

SIMPLE = """
# a comment
GATE inv 1.0 O=!a;  PIN a INV 1.0 999 0.9 0.4 1.1 0.6
GATE nand2 2.0 O=!(a*b);
  PIN * INV 1.5 999 1.0 0.5 1.0 0.5
"""


class TestParse:
    def test_basic(self):
        lib = parse_genlib(SIMPLE, "test")
        assert len(lib) == 2
        inv = lib["inv"]
        assert inv.area == 1.0
        assert inv.is_inverter()

    def test_delay_averaging(self):
        lib = parse_genlib(SIMPLE)
        pin = lib["inv"].pins[0]
        assert pin.tau == pytest.approx(1.0)  # (0.9 + 1.1)/2
        assert pin.resistance == pytest.approx(0.5)

    def test_wildcard_pin(self):
        lib = parse_genlib(SIMPLE)
        nand = lib["nand2"]
        assert [p.name for p in nand.pins] == ["a", "b"]
        assert all(p.load == 1.5 for p in nand.pins)

    def test_constant_gate(self):
        lib = parse_genlib("GATE one 0.5 O=CONST1;")
        assert lib["one"].is_constant()

    def test_named_pins_ordered_by_expression(self):
        text = (
            "GATE g 1.0 O=b*a;\n"
            " PIN a INV 1.0 9 1 1 1 1\n"
            " PIN b INV 2.0 9 1 1 1 1\n"
        )
        lib = parse_genlib(text)
        # Pin order follows expression appearance order: b first.
        assert lib["g"].pin_names == ("b", "a")
        assert lib["g"].pin("b").load == 2.0

    def test_missing_pin_data(self):
        with pytest.raises(ParseError):
            parse_genlib("GATE g 1.0 O=a*b; PIN a INV 1 9 1 1 1 1")

    def test_pin_for_unknown_input(self):
        with pytest.raises(ParseError):
            parse_genlib(
                "GATE g 1.0 O=a; PIN a INV 1 9 1 1 1 1\n"
                "PIN z INV 1 9 1 1 1 1"
            )

    def test_bad_area(self):
        with pytest.raises(ParseError):
            parse_genlib("GATE g x O=a; PIN a INV 1 9 1 1 1 1")

    def test_bad_phase(self):
        with pytest.raises(ParseError):
            parse_genlib("GATE g 1.0 O=a; PIN a WEIRD 1 9 1 1 1 1")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_genlib("GATE g 1.0 O=a PIN a INV 1 9 1 1 1 1")

    def test_not_a_gate(self):
        with pytest.raises(ParseError):
            parse_genlib("WIRE w 1.0 O=a;")

    def test_empty_expression(self):
        with pytest.raises(ParseError):
            parse_genlib("GATE g 1.0 O=; PIN a INV 1 9 1 1 1 1")


class TestRoundtrip:
    def test_write_then_parse(self):
        lib = parse_genlib(SIMPLE, "orig")
        text = write_genlib(lib)
        lib2 = parse_genlib(text, "copy")
        assert set(lib2.cells) == set(lib.cells)
        for name in lib.cells:
            a, b = lib[name], lib2[name]
            assert a.area == b.area
            assert a.function == b.function
            for pa, pb in zip(a.pins, b.pins):
                assert pa.load == pb.load
                assert pa.tau == pytest.approx(pb.tau)
                assert pa.resistance == pytest.approx(pb.resistance)


class TestHardening:
    """Duplicate definitions must fail loudly with the offending line."""

    def test_duplicate_gate_rejected(self):
        text = (
            "GATE inv 1.0 O=!a; PIN a INV 1 9 1 1 1 1\n"
            "GATE nand2 2.0 O=!(a*b); PIN * INV 1 9 1 1 1 1\n"
            "GATE inv 3.0 O=!a; PIN a INV 1 9 1 1 1 1\n"
        )
        with pytest.raises(LibraryError) as excinfo:
            parse_genlib(text)
        assert "duplicate gate 'inv'" in str(excinfo.value)
        assert excinfo.value.line == 3

    def test_duplicate_named_pin_rejected(self):
        text = (
            "GATE g 1.0 O=a*b;\n"
            "  PIN a INV 1 9 1 1 1 1\n"
            "  PIN a INV 2 9 1 1 1 1\n"
            "  PIN b INV 1 9 1 1 1 1\n"
        )
        with pytest.raises(LibraryError) as excinfo:
            parse_genlib(text)
        assert "duplicate PIN 'a'" in str(excinfo.value)
        assert excinfo.value.line == 3

    def test_duplicate_wildcard_pin_rejected(self):
        text = (
            "GATE g 1.0 O=a*b;\n"
            "  PIN * INV 1 9 1 1 1 1\n"
            "  PIN * INV 2 9 1 1 1 1\n"
        )
        with pytest.raises(LibraryError) as excinfo:
            parse_genlib(text)
        assert "wildcard PIN '*'" in str(excinfo.value)
        assert excinfo.value.line == 3

    def test_error_message_carries_line_prefix(self):
        with pytest.raises(LibraryError, match="line 2:"):
            parse_genlib(
                "GATE inv 1.0 O=!a; PIN a INV 1 9 1 1 1 1\n"
                "GATE inv 1.0 O=!a; PIN a INV 1 9 1 1 1 1\n"
            )

    def test_same_name_in_separate_libraries_still_fine(self):
        one = parse_genlib("GATE inv 1.0 O=!a; PIN a INV 1 9 1 1 1 1")
        two = parse_genlib("GATE inv 2.0 O=!a; PIN a INV 1 9 1 1 1 1")
        assert one["inv"].area != two["inv"].area
