"""Tests for NPN canonicalization and the library's NPN index."""

import pytest

from repro.library.genlib import parse_genlib
from repro.library.npn import (
    MAX_NPN_VARS,
    NpnTransform,
    apply_npn,
    negate_inputs,
    npn_canon,
    npn_key,
)
from repro.library.standard import standard_library
from repro.logic.truthtable import TruthTable

AND2 = TruthTable(2, 0b1000)
OR2 = TruthTable(2, 0b1110)
NAND2 = TruthTable(2, 0b0111)
NOR2 = TruthTable(2, 0b0001)
XOR2 = TruthTable(2, 0b0110)
XNOR2 = TruthTable(2, 0b1001)


class TestNegateInputs:
    def test_noop_mask(self):
        assert negate_inputs(AND2, 0) == AND2

    def test_single_negation(self):
        # AND with input a inverted: !a * b  -> minterms where a=0, b=1.
        assert negate_inputs(AND2, 0b01) == TruthTable(2, 0b0100)

    def test_double_negation_roundtrip(self):
        for mask in range(4):
            assert negate_inputs(negate_inputs(XOR2, mask), mask) == XOR2

    def test_three_input(self):
        maj = TruthTable(3, 0b11101000)
        once = negate_inputs(maj, 0b111)
        # Negating every input of majority gives the complement-symmetric
        # minority-of-ones pattern.
        assert once == TruthTable(3, 0b00010111)


class TestNpnCanon:
    def test_and_nand_nor_or_share_class(self):
        keys = {npn_key(t) for t in (AND2, OR2, NAND2, NOR2)}
        assert len(keys) == 1

    def test_xor_is_a_different_class(self):
        assert npn_key(XOR2) != npn_key(AND2)
        assert npn_key(XOR2) == npn_key(XNOR2)

    def test_transform_reproduces_canon(self):
        for table in (AND2, OR2, NAND2, NOR2, XOR2, TruthTable(3, 0xCA)):
            canon, transform = npn_canon(table)
            assert isinstance(transform, NpnTransform)
            assert apply_npn(table, transform) == canon
            assert npn_key(table) == (table.nvars, canon.bits)

    def test_canon_is_idempotent(self):
        canon, _ = npn_canon(NAND2)
        again, transform = npn_canon(canon)
        assert again == canon
        assert apply_npn(canon, transform) == canon

    def test_rejects_oversized(self):
        with pytest.raises(Exception):
            npn_canon(TruthTable(MAX_NPN_VARS + 1, 0))


class TestLibraryNpnIndex:
    def test_standard_library_groups_and_class(self):
        lib = standard_library()
        cells = lib.npn_cells(AND2)
        names = {cell.name for cell in cells}
        # The whole AND/OR/NAND/NOR family shares the class.
        assert {"and2", "or2", "nand2", "nor2"} <= names

    def test_sorted_by_area_then_name(self):
        lib = standard_library()
        cells = lib.npn_cells(AND2)
        assert cells == sorted(cells, key=lambda c: (c.area, c.name))

    def test_index_rebuilt_after_add(self):
        lib = parse_genlib(
            "GATE inv 1 O=!a; PIN a INV 1 9 1 1 1 1\n"
            "GATE and2 2 O=a*b; PIN * NONINV 1 9 1 1 1 1\n"
        )
        assert len(lib.npn_cells(AND2)) == 1
        extra = parse_genlib(
            "GATE nor2 2 O=!(a+b); PIN * INV 1 9 1 1 1 1"
        )
        lib.add(extra["nor2"])
        assert {c.name for c in lib.npn_cells(AND2)} == {"and2", "nor2"}

    def test_unindexed_class_is_empty(self):
        lib = standard_library()
        assert lib.npn_cells(TruthTable(4, 0b0110100110010110)) == []
