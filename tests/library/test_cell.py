"""Tests for cell and library models."""

import pytest

from repro.errors import LibraryError
from repro.library.cell import Cell, Library, Pin, build_library
from repro.logic.truthtable import TruthTable


def make_pin(name="a", load=1.0):
    return Pin(name=name, load=load)


def make_inv(name="inv", area=1.0):
    return Cell(name, area, "O", "!a", [make_pin("a")])


def make_nand2(name="nand2", area=2.0):
    return Cell(name, area, "O", "!(a*b)", [make_pin("a"), make_pin("b")])


def make_and2(name="and2", area=3.0):
    return Cell(name, area, "O", "a*b", [make_pin("a"), make_pin("b")])


class TestPin:
    def test_negative_load(self):
        with pytest.raises(LibraryError):
            Pin(name="a", load=-1.0)

    def test_negative_delay(self):
        with pytest.raises(LibraryError):
            Pin(name="a", load=1.0, tau=-1.0)


class TestCell:
    def test_function_tabulated(self):
        cell = make_nand2()
        assert cell.function.bits == 0b0111

    def test_num_inputs(self):
        assert make_nand2().num_inputs == 2

    def test_pin_lookup(self):
        cell = make_nand2()
        assert cell.pin_index("b") == 1
        assert cell.pin("b").name == "b"
        assert cell.pin(0).name == "a"

    def test_pin_lookup_missing(self):
        with pytest.raises(LibraryError):
            make_nand2().pin_index("z")

    def test_duplicate_pins(self):
        with pytest.raises(LibraryError):
            Cell("bad", 1, "O", "a*b", [make_pin("a"), make_pin("a")])

    def test_undeclared_pin_in_expression(self):
        with pytest.raises(LibraryError):
            Cell("bad", 1, "O", "a*b", [make_pin("a")])

    def test_negative_area(self):
        with pytest.raises(LibraryError):
            Cell("bad", -1, "O", "a", [make_pin("a")])

    def test_is_inverter(self):
        assert make_inv().is_inverter()
        assert not make_nand2().is_inverter()

    def test_is_buffer(self):
        buf = Cell("buf", 1, "O", "a", [make_pin("a")])
        assert buf.is_buffer()
        assert not make_inv().is_buffer()

    def test_is_constant(self):
        tie = Cell("one", 1, "O", "CONST1", [])
        assert tie.is_constant()

    def test_evaluate(self):
        assert make_and2().evaluate([1, 1]) == 1
        assert make_and2().evaluate([1, 0]) == 0

    def test_total_input_load(self):
        assert make_nand2().total_input_load() == 2.0


class TestLibrary:
    def test_add_and_lookup(self):
        lib = Library("t")
        lib.add(make_inv())
        assert "inv" in lib
        assert lib["inv"].name == "inv"

    def test_duplicate_cell(self):
        lib = Library("t")
        lib.add(make_inv())
        with pytest.raises(LibraryError):
            lib.add(make_inv())

    def test_missing_cell(self):
        with pytest.raises(LibraryError):
            Library("t")["nope"]

    def test_inverter_selection_cheapest(self):
        lib = Library("t")
        lib.add(make_inv("inv_big", area=5.0))
        lib.add(make_inv("inv_small", area=1.0))
        assert lib.inverter().name == "inv_small"

    def test_inverter_missing(self):
        lib = Library("t")
        lib.add(make_nand2())
        with pytest.raises(LibraryError):
            lib.inverter()

    def test_constant_lookup(self):
        lib = Library("t")
        lib.add(Cell("one", 1, "O", "CONST1", []))
        assert lib.constant(True).name == "one"
        assert lib.constant(False) is None

    def test_find_two_input(self):
        lib = Library("t")
        lib.add(make_and2("and_a", area=3.0))
        lib.add(make_and2("and_b", area=2.0))
        found = lib.find_two_input(TruthTable(2, 0b1000))
        assert found.name == "and_b"
        assert lib.find_two_input(TruthTable(2, 0b0110)) is None

    def test_find_two_input_arity_check(self):
        with pytest.raises(LibraryError):
            Library("t").find_two_input(TruthTable(1, 0b01))

    def test_cells_with_inputs(self):
        lib = Library("t")
        lib.add(make_inv())
        lib.add(make_nand2())
        assert [c.name for c in lib.cells_with_inputs(2)] == ["nand2"]

    def test_matchable_excludes_constants(self):
        lib = Library("t")
        lib.add(make_inv())
        lib.add(Cell("one", 1, "O", "CONST1", []))
        names = [c.name for c in lib.matchable_cells()]
        assert names == ["inv"]

    def test_validate_ok(self):
        lib = build_library("t", [make_inv(), make_nand2()])
        assert len(lib) == 2

    def test_validate_needs_two_input(self):
        lib = Library("t")
        lib.add(make_inv())
        with pytest.raises(LibraryError):
            lib.validate()

    def test_iteration(self):
        lib = build_library("t", [make_inv(), make_nand2()])
        assert {c.name for c in lib} == {"inv", "nand2"}
