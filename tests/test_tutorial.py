"""The tutorial's code blocks must stay executable as written."""

import contextlib
import io
import re
from pathlib import Path

DOCS = Path(__file__).resolve().parent.parent / "docs"


class TestTutorial:
    def test_all_python_blocks_run(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # the export section writes files
        text = (DOCS / "TUTORIAL.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert len(blocks) >= 6
        code = "\n".join(blocks)
        namespace: dict = {}
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            exec(code, namespace)  # noqa: S102 - executing our own docs
        out = buffer.getvalue()
        assert "equal" in out  # both equivalence oracles agreed
        assert (tmp_path / "out.blif").exists()
        assert (tmp_path / "out.v").exists()
        assert (tmp_path / "out.dot").exists()
