"""Tests for the stuck-at fault model."""

import pytest

from repro.atpg.fault import StuckAtFault, all_faults, all_stem_faults
from repro.errors import NetlistError


class TestStuckAtFault:
    def test_bad_value(self):
        with pytest.raises(NetlistError):
            StuckAtFault("g", 2)

    def test_stem_str(self):
        assert str(StuckAtFault("g", 0)) == "g/sa0"

    def test_branch_str(self):
        f = StuckAtFault("g", 1, branch=("h", 2))
        assert str(f) == "g->h.2/sa1"

    def test_resolve_stem(self, figure2):
        stem, branch = StuckAtFault("d", 0).resolve(figure2)
        assert stem.name == "d"
        assert branch is None

    def test_resolve_branch(self, figure2):
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        fault = StuckAtFault("a", 1, branch=("d", pin))
        stem, branch = fault.resolve(figure2)
        assert stem.name == "a"
        assert branch == (d, pin)

    def test_resolve_stale_branch(self, figure2):
        fault = StuckAtFault("a", 1, branch=("f", 0))  # f pin 0 is d, not a
        with pytest.raises(NetlistError):
            fault.resolve(figure2)


class TestFaultLists:
    def test_stem_fault_count(self, figure2):
        faults = all_stem_faults(figure2)
        assert len(faults) == 2 * len(figure2.gates)

    def test_all_faults_adds_branches(self, figure2):
        faults = all_faults(figure2)
        stem_count = 2 * len(figure2.gates)
        # Multi-fanout stems: a (2 gate branches), b (2).
        branch_count = 2 * (2 + 2)
        assert len(faults) == stem_count + branch_count

    def test_single_fanout_has_no_branch_faults(self, figure2):
        faults = all_faults(figure2)
        assert not any(
            f.branch is not None and f.gate_name == "d" for f in faults
        )
