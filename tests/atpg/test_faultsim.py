"""Tests for parallel-pattern fault simulation."""

from repro.atpg.fault import StuckAtFault, all_faults
from repro.atpg.faultsim import (
    detected_mask,
    fault_coverage,
    fault_simulate,
    undetected_faults,
)
from repro.netlist.simulate import SimState, exhaustive_patterns, popcount


def brute_force_detects(netlist, fault, minterm):
    """Reference detection check by explicit good/faulty evaluation."""

    def evaluate(inject):
        values = {}
        from repro.netlist.traverse import topological_order

        for gate in topological_order(netlist):
            if gate.is_input:
                index = netlist.input_names.index(gate.name)
                v = (minterm >> index) & 1
            else:
                ins = []
                for pin, fanin in enumerate(gate.fanins):
                    value = values[fanin.name]
                    if (
                        inject
                        and fault.branch is not None
                        and fault.branch[0] == gate.name
                        and fault.branch[1] == pin
                    ):
                        value = fault.value
                    ins.append(value)
                v = gate.cell.evaluate(ins)
            if inject and fault.branch is None and gate.name == fault.gate_name:
                v = fault.value
            values[gate.name] = v
        return {po: values[d.name] for po, d in netlist.outputs.items()}

    return evaluate(False) != evaluate(True)


class TestDetectedMask:
    def test_matches_brute_force_figure2(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        for fault in all_faults(figure2):
            mask = detected_mask(sim, fault)
            for minterm in range(8):
                got = (int(mask[0]) >> minterm) & 1
                want = int(brute_force_detects(figure2, fault, minterm))
                assert got == want, (str(fault), minterm)

    def test_matches_brute_force_random(self, random_netlist):
        nl = random_netlist
        sim = SimState(nl, exhaustive_patterns(nl.input_names))
        for fault in all_faults(nl)[:40]:
            mask = detected_mask(sim, fault)
            for minterm in range(1 << len(nl.input_names)):
                got = (int(mask[minterm // 64]) >> (minterm % 64)) & 1
                want = int(brute_force_detects(nl, fault, minterm))
                assert got == want, (str(fault), minterm)

    def test_input_stem_fault(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        mask = detected_mask(sim, StuckAtFault("b", 0))
        assert popcount(mask) > 0


class TestAggregates:
    def test_fault_simulate_counts(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        results = fault_simulate(sim, all_faults(figure2))
        assert all(count >= 0 for count in results.values())
        # f stuck-at-1 detected whenever f == 0 (6 of 8 minterms).
        assert results[StuckAtFault("f", 1)] * 8 // sim.num_patterns == 6

    def test_coverage_range(self, random_netlist):
        sim = SimState(
            random_netlist, exhaustive_patterns(random_netlist.input_names)
        )
        cov = fault_coverage(sim, all_faults(random_netlist))
        assert 0.0 <= cov <= 1.0

    def test_coverage_empty_list(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        assert fault_coverage(sim, []) == 1.0

    def test_undetected_are_redundant_candidates(self, builder):
        # f = a OR (a AND b): the AND's sa0 is undetectable.
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        f = builder.or_(a, g, name="f")
        builder.output("o", f)
        nl = builder.build()
        sim = SimState(nl, exhaustive_patterns(nl.input_names))
        undetected = undetected_faults(sim, all_faults(nl))
        assert StuckAtFault("g", 0) in undetected
        assert StuckAtFault("g", 1) not in undetected
