"""Tests for redundancy identification."""

from repro.atpg.fault import StuckAtFault, all_faults
from repro.atpg.redundancy import (
    ABORTED,
    REDUNDANT,
    TESTABLE,
    classify_fault,
    is_redundant,
    redundant_faults,
)


def redundant_circuit(builder):
    """f = a OR (a AND b): the AND gate's sa0 is redundant."""
    a, b = builder.inputs("a", "b")
    g = builder.and_(a, b, name="g")
    f = builder.or_(a, g, name="f")
    builder.output("o", f)
    return builder.build()


class TestClassification:
    def test_redundant(self, builder):
        nl = redundant_circuit(builder)
        assert classify_fault(nl, StuckAtFault("g", 0)) == REDUNDANT
        assert is_redundant(nl, StuckAtFault("g", 0))

    def test_testable(self, builder):
        nl = redundant_circuit(builder)
        assert classify_fault(nl, StuckAtFault("g", 1)) == TESTABLE
        assert not is_redundant(nl, StuckAtFault("g", 1))

    def test_abort_is_not_redundant(self, builder):
        nl = redundant_circuit(builder)
        assert classify_fault(nl, StuckAtFault("g", 0), backtrack_limit=0) == ABORTED
        assert not is_redundant(nl, StuckAtFault("g", 0), backtrack_limit=0)

    def test_redundant_faults_filter(self, builder):
        nl = redundant_circuit(builder)
        found = redundant_faults(nl, all_faults(nl))
        assert StuckAtFault("g", 0) in found
        assert all(is_redundant(nl, f) for f in found)

    def test_irredundant_circuit_has_none(self, figure2):
        found = redundant_faults(figure2, all_faults(figure2))
        # Figure 2 is fully testable except branch don't-cares; check stems.
        stem_redundant = [f for f in found if f.branch is None]
        assert stem_redundant == []
