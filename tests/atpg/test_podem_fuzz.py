"""PODEM's redundant-fault and abort paths on generator-produced circuits.

Reconvergent fanout is what makes faults redundant (the diamond masks the
fault effect) and what blows up the branch-and-bound search; the fuzz
generator's ``reconvergent`` shape produces both on demand.  Every PODEM
verdict is cross-checked against exhaustive fault simulation, and the
optimizer-facing contract — an aborted check is a rejected candidate — is
pinned down explicitly.
"""

from __future__ import annotations

import pytest

from repro.atpg.fault import StuckAtFault, all_faults
from repro.atpg.faultsim import detected_mask, undetected_faults
from repro.atpg.podem import Podem
from repro.atpg.redundancy import classify_fault, is_redundant
from repro.errors import AtpgAbort
from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
from repro.netlist.build import NetlistBuilder
from repro.netlist.simulate import SimState, exhaustive_patterns
from repro.transform.permissible import (
    ABORTED,
    NOT_PERMISSIBLE,
    PERMISSIBLE,
    check_candidate,
)
from repro.transform.substitution import OS2, Substitution


def test_known_redundant_fault_proved_untestable(lib):
    # z = a AND (a OR b): with a=1 the OR is 1 regardless of b, with a=0
    # the AND masks it — so "b stuck-at-1" is a classic redundancy.
    b = NetlistBuilder(lib, "redundant")
    a, bb = b.inputs("a", "b")
    o = b.or_(a, bb, name="o")
    b.output("z", b.and_(a, o, name="z_g"))
    netlist = b.build()

    fault = StuckAtFault("b", 1)
    result = Podem(netlist, fault, backtrack_limit=10_000).run()
    assert not result.testable
    assert is_redundant(netlist, fault)
    # Exhaustive fault simulation agrees: no vector ever detects it.
    sim = SimState(netlist, exhaustive_patterns(netlist.input_names))
    assert int(detected_mask(sim, fault).sum()) == 0


def test_podem_verdicts_match_exhaustive_fault_simulation(lib):
    netlist = random_mapped_netlist(
        GeneratorConfig(seed=0, shape="reconvergent"), lib
    )
    faults = all_faults(netlist)
    sim = SimState(netlist, exhaustive_patterns(netlist.input_names))
    undetectable = set(map(str, undetected_faults(sim, faults)))

    redundant = []
    for fault in faults:
        verdict = classify_fault(netlist, fault, backtrack_limit=20_000)
        assert verdict in ("testable", "redundant")
        if verdict == "redundant":
            redundant.append(fault)
            assert str(fault) in undetectable, (
                f"PODEM called {fault} redundant but simulation detects it"
            )
        else:
            assert str(fault) not in undetectable, (
                f"PODEM called {fault} testable but no vector detects it"
            )
    assert redundant, "the reconvergent shape must produce redundancies"


def test_tiny_budget_aborts_and_classifies_as_aborted(lib):
    netlist = random_mapped_netlist(
        GeneratorConfig(seed=0, shape="reconvergent"), lib
    )
    aborted = []
    for fault in all_faults(netlist):
        if classify_fault(netlist, fault, backtrack_limit=1) == "aborted":
            aborted.append(fault)
    assert aborted, "a one-backtrack budget must abort on reconvergence"
    with pytest.raises(AtpgAbort):
        Podem(netlist, aborted[0], backtrack_limit=1).run()


def _twin_xor_chains(lib):
    """Two structurally identical 8-input XOR chains: substituting one
    stem by the other is permissible, but *proving* it is the ATPG
    worst case (the miter is a parity function)."""
    b = NetlistBuilder(lib, "twinxor")
    xs = [b.input(f"x{i}") for i in range(8)]

    def chain(tag):
        acc = b.xor_(xs[0], xs[1], name=f"{tag}0")
        for i in range(2, 8):
            acc = b.xor_(acc, xs[i], name=f"{tag}{i - 1}")
        return acc

    first, second = chain("a"), chain("b")
    b.output("z0", b.and_(first, xs[0], name="mix"))
    b.output("z1", second)
    return b.build()


def test_check_candidate_abort_is_a_reject(lib):
    netlist = _twin_xor_chains(lib)
    sub = Substitution(OS2, "a6", "b6")

    # Tiny search budget with the BDD fallback disabled: the justifier
    # aborts, and the abort maps to "not allowed" (paper §3.5: an aborted
    # check must never be applied).
    result = check_candidate(
        netlist, sub, backtrack_limit=5, bdd_node_limit=0
    )
    assert result.status == ABORTED
    assert not result.allowed

    # With a real budget the same candidate is proven permissible.
    full = check_candidate(netlist, sub, backtrack_limit=20_000)
    assert full.status == PERMISSIBLE and full.allowed


def test_check_candidate_rejects_with_counterexample(lib):
    netlist = _twin_xor_chains(lib)
    # a6 <- a0 changes the function: simulation disproves it immediately.
    result = check_candidate(netlist, Substitution(OS2, "a6", "a0"))
    assert result.status == NOT_PERMISSIBLE
    assert not result.allowed
    assert result.counterexample is not None
