"""Tests for the PODEM engine and the justifier."""

import pytest

from repro.atpg.fault import StuckAtFault, all_faults
from repro.atpg.faultsim import detected_mask
from repro.atpg.podem import Podem, justify
from repro.errors import AtpgAbort, AtpgError
from repro.netlist.simulate import SimState, exhaustive_patterns, popcount
from tests.conftest import make_random_netlist


def verdict_matches_brute_force(netlist, fault):
    sim = SimState(netlist, exhaustive_patterns(netlist.input_names))
    testable_ref = popcount(detected_mask(sim, fault)) > 0
    result = Podem(netlist, fault).run()
    assert result.testable == testable_ref, str(fault)
    if result.testable:
        # The produced assignment must actually detect the fault: complete
        # with zeros and check against the mask.
        minterm = 0
        for index, name in enumerate(netlist.input_names):
            if result.assignment.get(name, 0):
                minterm |= 1 << index
        mask = detected_mask(sim, fault)
        assert (int(mask[minterm // 64]) >> (minterm % 64)) & 1, str(fault)


class TestPodemBasic:
    def test_and_sa0(self, builder):
        a, b = builder.inputs("a", "b")
        f = builder.and_(a, b, name="f")
        builder.output("o", f)
        nl = builder.build()
        result = Podem(nl, StuckAtFault("f", 0)).run()
        assert result.testable
        assert result.assignment == {"a": 1, "b": 1}

    def test_input_fault_needs_propagation(self, builder):
        a, b = builder.inputs("a", "b")
        f = builder.and_(a, b, name="f")
        builder.output("o", f)
        nl = builder.build()
        result = Podem(nl, StuckAtFault("a", 0)).run()
        assert result.testable
        assert result.assignment["a"] == 1
        assert result.assignment["b"] == 1  # non-controlling side value

    def test_redundant_fault_unsat(self, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        f = builder.or_(a, g, name="f")
        builder.output("o", f)
        nl = builder.build()
        assert not Podem(nl, StuckAtFault("g", 0)).run().testable

    def test_branch_fault(self, figure2):
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        fault = StuckAtFault("a", 0, branch=("d", pin))
        result = Podem(figure2, fault).run()
        assert result.testable
        # a=1 activates; b=1 needed to observe through f.
        assert result.assignment["a"] == 1
        assert result.assignment["b"] == 1

    def test_unobservable_gate(self, builder):
        # A gate with no path to any output is untestable.
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        dead = builder.not_(g, name="dead")
        builder.output("o", g)
        nl = builder.build()
        assert not Podem(nl, StuckAtFault("dead", 0)).run().testable

    def test_abort_raises(self, builder):
        # Proving redundancy requires exhausting the search, which needs
        # backtracks; a zero budget must abort.
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        f = builder.or_(a, g, name="f")
        builder.output("o", f)
        nl = builder.build()
        with pytest.raises(AtpgAbort):
            Podem(nl, StuckAtFault("g", 0), backtrack_limit=0).run()


class TestPodemExhaustiveCrossCheck:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_random_netlists(self, lib, seed):
        nl = make_random_netlist(lib, 5, 14, 3, seed=seed)
        for fault in all_faults(nl):
            verdict_matches_brute_force(nl, fault)

    def test_figure2_all_faults(self, figure2):
        for fault in all_faults(figure2):
            verdict_matches_brute_force(figure2, fault)

    def test_xor_heavy_netlist(self, builder):
        xs = builder.inputs(*[f"x{i}" for i in range(4)])
        g = builder.xor_tree(list(xs))
        builder.output("o", g)
        nl = builder.build()
        for fault in all_faults(nl):
            verdict_matches_brute_force(nl, fault)


class TestJustify:
    def test_sat(self, figure2):
        result = justify(figure2, figure2.gate("e"), 1)
        assert result.testable
        assert result.assignment["a"] == 1
        assert result.assignment["b"] == 1

    def test_unsat_constant(self, builder):
        a = builder.input("a")
        na = builder.not_(a, name="na")
        f = builder.and_(a, na, name="f")
        builder.output("o", f)
        nl = builder.build()
        assert not justify(nl, f, 1).testable
        assert justify(nl, f, 0).testable

    def test_justify_zero(self, figure2):
        result = justify(figure2, figure2.gate("e"), 0)
        assert result.testable
        # Any returned assignment must actually produce 0.
        env = {n: result.assignment.get(n, 0) for n in figure2.input_names}
        assert env["a"] == 0 or env["b"] == 0

    def test_bad_target_value(self, figure2):
        with pytest.raises(AtpgError):
            justify(figure2, figure2.gate("e"), 2)

    def test_justify_respects_backtrack_limit(self, builder):
        a = builder.input("a")
        na = builder.not_(a, name="na")
        f = builder.and_(a, na, name="f")
        builder.output("o", f)
        nl = builder.build()
        # Proving f can never be 1 needs at least one backtrack.
        with pytest.raises(AtpgAbort):
            justify(nl, f, 1, backtrack_limit=0)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_justify_cross_check(self, lib, seed):
        nl = make_random_netlist(lib, 5, 12, 2, seed=seed)
        sim = SimState(nl, exhaustive_patterns(nl.input_names))
        for gate in list(nl.logic_gates())[:10]:
            word = sim.value(gate.name)
            total = popcount(word)
            can_be_1 = total > 0
            can_be_0 = total < sim.num_patterns
            assert justify(nl, gate, 1).testable == can_be_1, gate.name
            assert justify(nl, gate, 0).testable == can_be_0, gate.name
