"""Tests for multi-valued cell evaluation."""

from repro.atpg.values import (
    ONE,
    X,
    ZERO,
    can_output,
    eval3,
    eval5,
    is_d_or_dbar,
    pin_settings_allowing,
    symbol5,
)


class TestEval3:
    def test_binary_inputs(self, lib):
        nand = lib["nand2"]
        assert eval3(nand, [ONE, ONE]) == ZERO
        assert eval3(nand, [ZERO, ONE]) == ONE

    def test_controlling_x(self, lib):
        # NAND with a 0 input is 1 regardless of the X.
        assert eval3(lib["nand2"], [ZERO, X]) == ONE
        # AND with a 0 input is 0.
        assert eval3(lib["and2"], [ZERO, X]) == ZERO

    def test_non_controlling_x(self, lib):
        assert eval3(lib["nand2"], [ONE, X]) == X
        assert eval3(lib["xor2"], [ONE, X]) == X

    def test_all_x(self, lib):
        assert eval3(lib["aoi21"], [X, X, X]) == X

    def test_complex_cell_partial(self, lib):
        # aoi21: O = !(a*b + c); c = 1 forces 0.
        assert eval3(lib["aoi21"], [X, X, ONE]) == ZERO

    def test_cache_consistency(self, lib):
        first = eval3(lib["xor2"], [X, ONE])
        second = eval3(lib["xor2"], [X, ONE])
        assert first == second == X


class TestCanOutput:
    def test_possible(self, lib):
        assert can_output(lib["and2"], [X, ONE], ONE)
        assert can_output(lib["and2"], [X, ONE], ZERO)

    def test_impossible(self, lib):
        assert not can_output(lib["and2"], [ZERO, X], ONE)


class TestPinSettings:
    def test_and_needs_one(self, lib):
        settings = pin_settings_allowing(lib["and2"], [X, ONE], 0, ONE)
        assert settings == [ONE]

    def test_nand_zero_forces(self, lib):
        settings = pin_settings_allowing(lib["nand2"], [X, X], 0, ONE)
        # Either value still allows output 1 (other input X).
        assert set(settings) == {ZERO, ONE}

    def test_no_setting_possible(self, lib):
        settings = pin_settings_allowing(lib["and2"], [X, ZERO], 0, ONE)
        assert settings == []


class TestEval5:
    def test_d_propagation_through_inverter(self, lib):
        inv = lib["inv1"]
        d = (ONE, ZERO)
        out = eval5(inv, [d])
        assert out == (ZERO, ONE)  # D'
        assert is_d_or_dbar(out)

    def test_d_blocked_by_controlling(self, lib):
        out = eval5(lib["and2"], [(ONE, ZERO), (ZERO, ZERO)])
        assert out == (ZERO, ZERO)

    def test_d_through_and_with_one(self, lib):
        out = eval5(lib["and2"], [(ONE, ZERO), (ONE, ONE)])
        assert out == (ONE, ZERO)

    def test_x_mixes(self, lib):
        # Good side: 1 & X = X; faulty side: 0 & X = 0.
        out = eval5(lib["and2"], [(ONE, ZERO), (X, X)])
        assert out == (X, ZERO)


class TestSymbols:
    def test_symbols(self):
        assert symbol5((ZERO, ZERO)) == "0"
        assert symbol5((ONE, ONE)) == "1"
        assert symbol5((X, X)) == "X"
        assert symbol5((ONE, ZERO)) == "D"
        assert symbol5((ZERO, ONE)) == "D'"
        assert symbol5((X, ONE)) == "(2,1)"
