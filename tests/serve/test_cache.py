"""Units for the completed-result LRU and the canonical job keying."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServeError
from repro.serve.cache import ResultCache
from repro.serve.jobspec import canonicalize_job
from tests.serve.conftest import FAST_OPTIONS, make_blif


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get("k") is None
        cache.put("k", "{}")
        assert cache.get("k") == "{}"
        assert cache.stats() == {
            "entries": 1, "max_entries": 4,
            "hits": 1, "misses": 1, "hit_rate": 0.5,
        }

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(2)
        cache.put("a", "1")
        cache.put("b", "2")
        assert cache.get("a") == "1"  # refresh a's recency
        cache.put("c", "3")  # evicts b, not a
        assert "b" not in cache
        assert cache.peek("a") == "1"
        assert cache.peek("c") == "3"

    def test_peek_does_not_touch_counters_or_recency(self):
        cache = ResultCache(2)
        cache.put("a", "1")
        cache.put("b", "2")
        assert cache.peek("a") == "1"
        cache.put("c", "3")  # a is still oldest: peek kept recency
        assert "a" not in cache
        assert cache.hits == 0 and cache.misses == 0

    def test_zero_capacity_never_stores(self):
        cache = ResultCache(0)
        cache.put("a", "1")
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)


class TestCanonicalKeying:
    def test_syntactic_variants_share_a_key(self):
        blif = make_blif(5)
        spec = canonicalize_job({"blif": blif, "options": FAST_OPTIONS})
        # Same netlist with noise: comments, blank lines, CRLF endings.
        noisy = "# a comment\n\n" + blif.replace("\n", "\n\n")
        spec2 = canonicalize_job({"blif": noisy, "options": FAST_OPTIONS})
        assert spec.key == spec2.key
        assert spec.blif == spec2.blif

    def test_default_options_are_filled_in(self):
        blif = make_blif(5)
        explicit = canonicalize_job({"blif": blif, "options": {}})
        implicit = canonicalize_job({"blif": blif})
        assert explicit.key == implicit.key
        assert json.loads(explicit.options_json)["num_patterns"] > 0

    def test_different_options_change_the_key(self):
        blif = make_blif(5)
        base = canonicalize_job({"blif": blif, "options": FAST_OPTIONS})
        other = canonicalize_job({"blif": blif, "options": dict(
            FAST_OPTIONS, num_patterns=FAST_OPTIONS["num_patterns"] * 2,
        )})
        assert base.key != other.key

    def test_spec_roundtrips_to_canonical_text(self):
        blif = make_blif(5)
        spec = canonicalize_job({
            "blif": blif,
            "spec": "  powder( max_rounds = 2 )  ",
            "options": FAST_OPTIONS,
        })
        tight = canonicalize_job({
            "blif": blif,
            "spec": "powder(max_rounds=2)",
            "options": FAST_OPTIONS,
        })
        assert spec.key == tight.key
        assert spec.spec == tight.spec

    @pytest.mark.parametrize("payload, code", [
        ({}, "bad-blif"),
        ({"blif": ""}, "bad-blif"),
        ({"blif": 7}, "bad-blif"),
        ({"blif": "not blif at all"}, "bad-blif"),
        ({"blif": "x", "options": {"bogus_knob": 1}}, "bad-options"),
        ({"blif": "x", "options": "nope"}, "bad-options"),
        ({"blif": "x", "spec": "no_such_pass()"}, "bad-spec"),
        ({"blif": "x", "spec": 9}, "bad-spec"),
    ])
    def test_rejections_are_structured_400s(self, payload, code):
        with pytest.raises(ServeError) as excinfo:
            canonicalize_job(payload)
        assert excinfo.value.status == 400
        assert excinfo.value.code == code
