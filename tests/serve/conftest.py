"""Fixtures for the optimization-service suite.

One live server per module (session-scoped startup is too sticky when a
test intentionally shuts a server down), always on an ephemeral port,
always torn down through the graceful-drain path.
"""

from __future__ import annotations

import pytest

from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
from repro.netlist.blif import write_blif
from repro.serve import ServerConfig, ServerThread

#: Small, fast optimizer knobs: the suite tests the service, not POWDER.
FAST_OPTIONS = {"num_patterns": 64, "repeat": 5, "max_rounds": 2}

#: Heavier knobs for jobs that must still be running when we act on them.
SLOW_OPTIONS = {"num_patterns": 2048, "repeat": 6, "max_rounds": 10}


def make_blif(seed: int, min_gates: int = 8, max_gates: int = 12) -> str:
    return write_blif(random_mapped_netlist(GeneratorConfig(
        seed=seed, min_gates=min_gates, max_gates=max_gates,
    )))


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServerConfig(workers=2)) as handle:
        yield handle


@pytest.fixture(scope="module")
def client(server):
    return server.client()
