"""End-to-end tests against a live server on an ephemeral port."""

from __future__ import annotations

import json
import os

import pytest

from repro.serve import ServeClientError, ServerConfig, ServerThread
from tests.serve.conftest import FAST_OPTIONS, SLOW_OPTIONS, make_blif


class TestLifecycle:
    def test_health(self, client):
        assert client.health() == {"status": "ok", "accepting": True}

    def test_submit_poll_result(self, client):
        blif = make_blif(100)
        accepted = client.submit(blif, options=FAST_OPTIONS,
                                 use_cache=False)
        assert accepted["job_id"].startswith("j")
        assert accepted["status"] in ("queued", "running")
        view = client.wait(accepted["job_id"])
        assert view["status"] == "done"
        result = view["result"]
        assert result["blif"].startswith(".model")
        assert result["summary"]["final_power"] <= (
            result["summary"]["initial_power"]
        )
        listed = client.jobs(state="done")
        assert accepted["job_id"] in [job["job_id"] for job in listed]

    def test_result_endpoint_serves_canonical_bytes(self, client):
        accepted = client.submit(make_blif(101), options=FAST_OPTIONS)
        client.wait(accepted["job_id"])
        raw = client.result_bytes(accepted["job_id"])
        parsed = json.loads(raw)
        # byte-stable canonical JSON: sorted keys, compact separators
        assert raw == json.dumps(
            parsed, sort_keys=True, separators=(",", ":")
        ).encode()

    def test_result_before_done_is_409(self, client):
        accepted = client.submit(make_blif(102), options=SLOW_OPTIONS,
                                 use_cache=False)
        with pytest.raises(ServeClientError) as excinfo:
            client.result_bytes(accepted["job_id"])
        assert excinfo.value.status == 409
        client.cancel(accepted["job_id"])

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.job("j999999")
        assert excinfo.value.status == 404

    def test_unknown_endpoint_and_bad_method(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client._json("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeClientError) as excinfo:
            client._json("DELETE", "/healthz")
        assert excinfo.value.status == 405


class TestEvents:
    def test_stream_replays_rounds_to_terminal(self, client):
        accepted = client.submit(make_blif(110), options=FAST_OPTIONS,
                                 use_cache=False)
        events = list(client.events(accepted["job_id"]))
        kinds = [event["type"] for event in events]
        assert kinds[0] == "state"
        assert "round" in kinds
        assert events[-1] == {"type": "state", "status": "done"}
        rounds = [event for event in events if event["type"] == "round"]
        assert all("moves_applied" in event for event in rounds)
        assert [event["index"] for event in rounds] == list(
            range(1, len(rounds) + 1)
        )

    def test_stream_on_finished_job_replays_everything(self, client):
        accepted = client.submit(make_blif(111), options=FAST_OPTIONS)
        client.wait(accepted["job_id"])
        events = list(client.events(accepted["job_id"]))
        assert events[-1] == {"type": "state", "status": "done"}

    def test_stream_unknown_job_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            list(client.events("j999999"))
        assert excinfo.value.status == 404


class TestDedup:
    def test_cache_hit_is_bit_identical_and_instant_done(self, client):
        blif = make_blif(120)
        first = client.submit(blif, options=FAST_OPTIONS)
        client.wait(first["job_id"])
        solo = client.result_bytes(first["job_id"])

        duplicate = client.submit(blif, options=FAST_OPTIONS)
        assert duplicate["status"] == "done"
        assert duplicate["cached"] is True
        assert client.result_bytes(duplicate["job_id"]) == solo

    def test_syntactic_noise_still_hits_the_cache(self, client):
        blif = make_blif(121)
        first = client.submit(blif, options=FAST_OPTIONS)
        client.wait(first["job_id"])
        noisy = "# comment\n\n" + blif.replace("\n", "\n\n")
        duplicate = client.submit(noisy, options=FAST_OPTIONS)
        assert duplicate["cached"] is True
        assert duplicate["key"] == first["key"]

    def test_inflight_duplicates_coalesce_to_one_run(self, client):
        blif = make_blif(122, min_gates=25, max_gates=35)
        first = client.submit(blif, options=SLOW_OPTIONS)
        second = client.submit(blif, options=SLOW_OPTIONS)
        third = client.submit(blif, options=SLOW_OPTIONS)
        assert first["coalesced"] is False
        assert second["coalesced"] is True and third["coalesced"] is True
        ids = {first["job_id"], second["job_id"], third["job_id"]}
        assert len(ids) == 3  # every submission keeps its own job ID
        views = [client.wait(job_id, timeout=180) for job_id in ids]
        assert all(view["status"] == "done" for view in views)
        results = {client.result_bytes(job_id) for job_id in ids}
        assert len(results) == 1  # byte-identical across the batch

    def test_use_cache_false_bypasses_both_layers(self, client):
        blif = make_blif(123)
        first = client.submit(blif, options=FAST_OPTIONS)
        client.wait(first["job_id"])
        private = client.submit(blif, options=FAST_OPTIONS,
                                use_cache=False)
        assert private["cached"] is False
        assert private["coalesced"] is False
        view = client.wait(private["job_id"])
        assert view["status"] == "done"


class TestCancellation:
    def test_cancel_running_job(self, client):
        accepted = client.submit(
            make_blif(130, min_gates=25, max_gates=35),
            options=SLOW_OPTIONS, use_cache=False,
        )
        out = client.cancel(accepted["job_id"])
        assert out["status"] == "cancelled"
        assert out["error"]["code"] == "cancelled"
        # idempotent: cancelling a terminal job changes nothing
        again = client.cancel(accepted["job_id"])
        assert again["status"] == "cancelled"

    def test_cancelling_one_coalesced_job_spares_the_other(self, client):
        blif = make_blif(131, min_gates=25, max_gates=35)
        keeper = client.submit(blif, options=SLOW_OPTIONS)
        victim = client.submit(blif, options=SLOW_OPTIONS)
        assert victim["coalesced"] is True
        assert client.cancel(victim["job_id"])["status"] == "cancelled"
        view = client.wait(keeper["job_id"], timeout=180)
        assert view["status"] == "done"

    def test_timeout_kills_the_run(self, client):
        accepted = client.submit(
            make_blif(132, min_gates=30, max_gates=40),
            options={"num_patterns": 4096, "repeat": 8, "max_rounds": 20},
            timeout=0.3, use_cache=False,
        )
        view = client.wait(accepted["job_id"], timeout=60)
        assert view["status"] == "timeout"
        assert view["error"]["code"] == "timeout"


class TestMalformedInputs:
    """Every rejection is a structured 4xx and the server keeps serving."""

    @pytest.mark.parametrize("payload, status, code", [
        ({"blif": "not a blif"}, 400, "bad-blif"),
        ({"blif": ""}, 400, "bad-blif"),
        ({}, 400, "bad-blif"),
        ({"blif": "x", "options": {"bogus": 1}}, 400, "bad-options"),
        ({"blif": "x", "options": {"repeat": -1}}, 400,
         "bad-options"),
        ({"blif": "x", "spec": "no_such_pass()"}, 400, "bad-spec"),
        ({"blif": "x", "priority": "high"}, 400, "bad-request"),
        ({"blif": "x", "timeout": -1}, 400, "bad-request"),
        ({"blif": "x", "use_cache": "yes"}, 400, "bad-request"),
    ])
    def test_submit_rejections(self, client, payload, status, code):
        with pytest.raises(ServeClientError) as excinfo:
            client._json("POST", "/jobs", payload)
        assert excinfo.value.status == status
        assert excinfo.value.code == code
        assert client.health()["status"] == "ok"

    def test_non_json_body_is_400(self, server, client):
        import http.client

        connection = http.client.HTTPConnection(
            server.config.host, server.port, timeout=10
        )
        try:
            connection.request("POST", "/jobs", body=b"\x00garbage{{{")
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert payload["error"]["code"] == "bad-json"
        assert client.health()["status"] == "ok"

    def test_raw_garbage_connection_is_survived(self, server, client):
        import socket

        with socket.create_connection(
            (server.config.host, server.port), timeout=10
        ) as sock:
            sock.sendall(b"\r\n\x00\xff NONSENSE\r\n\r\n")
            sock.recv(4096)  # whatever the server answers, it answers
        assert client.health()["status"] == "ok"

    def test_oversized_request_is_413(self):
        with ServerThread(ServerConfig(
            workers=1, max_request_bytes=1024,
        )) as handle:
            client = handle.client()
            with pytest.raises(ServeClientError) as excinfo:
                client.submit("x" * 4096, options=FAST_OPTIONS)
            assert excinfo.value.status == 413
            assert client.health()["status"] == "ok"


class TestCrashRecovery:
    def test_worker_crash_is_retried_to_success(self, monkeypatch,
                                                tmp_path):
        import repro.serve.worker as worker_module

        flag = tmp_path / "crashed-once"
        original = worker_module._child_main

        def crash_once(conn, spec):
            if not flag.exists():
                flag.write_text("x")
                os._exit(17)  # simulate a segfault-style death
            original(conn, spec)

        monkeypatch.setattr(worker_module, "spawn_target", crash_once)
        with ServerThread(ServerConfig(workers=1, max_retries=1)) as handle:
            client = handle.client()
            view = client.run(make_blif(140), options=FAST_OPTIONS)
            assert view["status"] == "done"
            metrics = client.metrics()
            assert metrics["counters"]["worker_retries"] == 1

    def test_crash_budget_exhausted_fails_the_job(self, monkeypatch):
        import repro.serve.worker as worker_module

        def always_crash(conn, spec):
            os._exit(17)

        monkeypatch.setattr(worker_module, "spawn_target", always_crash)
        with ServerThread(ServerConfig(workers=1, max_retries=1)) as handle:
            client = handle.client()
            accepted = client.submit(make_blif(141), options=FAST_OPTIONS)
            view = client.wait(accepted["job_id"])
            assert view["status"] == "failed"
            assert view["error"]["code"] == "worker-crash"
            metrics = client.metrics()
            assert metrics["counters"]["worker_crashes"] == 1
            # the server itself survived the crashing workers
            assert client.health()["status"] == "ok"


class TestLintService:
    def test_lint_clean_netlist(self, client):
        report = client.lint(make_blif(150))
        assert report["counts"] == {}
        assert report["worst"] is None
        assert report["diagnostics"] == []

    def test_lint_flags_a_dangling_gate(self, client, lib):
        from repro.netlist.blif import write_blif
        from repro.netlist.build import NetlistBuilder

        build = NetlistBuilder(lib, "dangling")
        a, b = build.inputs("a", "b")
        kept = build.and_(a, b, name="kept")
        build.or_(a, b, name="unused")  # drives nothing, no output
        build.output("out", kept)
        report = client.lint(write_blif(build.netlist))
        assert report["counts"]
        assert any(
            "unused" in diagnostic["message"]
            for diagnostic in report["diagnostics"]
        )

    def test_lint_rejects_bad_rule_ids(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.lint(make_blif(150), select=["NOPE999"])
        assert excinfo.value.status == 400


class TestMetricsEndpoint:
    def test_counters_and_cache_stats_are_live(self, client):
        blif = make_blif(160)
        first = client.submit(blif, options=FAST_OPTIONS)
        client.wait(first["job_id"])
        client.submit(blif, options=FAST_OPTIONS)  # cache hit
        metrics = client.metrics()
        assert metrics["workers"] == 2
        assert metrics["queue_depth"] == 0
        assert metrics["cache"]["hits"] >= 1
        assert metrics["counters"]["jobs_submitted"] >= 2
        assert metrics["jobs"]["tracked"] >= 2
        assert "phase.run" in metrics["timers"]
        assert "phase.queue_wait" in metrics["timers"]
        assert metrics["latency"]["count"] >= 1


class TestShutdownEndpoint:
    def test_drain_refuses_new_work_but_finishes_accepted(self):
        with ServerThread(ServerConfig(workers=1)) as handle:
            client = handle.client()
            accepted = client.submit(
                make_blif(170, min_gates=20, max_gates=28),
                options={"num_patterns": 512, "repeat": 5,
                         "max_rounds": 3},
                use_cache=False,
            )
            assert client.shutdown(drain=True) == {"status": "draining"}
            with pytest.raises(ServeClientError) as excinfo:
                client.submit(make_blif(171), options=FAST_OPTIONS)
            assert excinfo.value.status == 503
            assert excinfo.value.code == "shutting-down"
            handle.stop()
            job = handle.server.jobs[accepted["job_id"]]
            assert job.state == "done"

    def test_remote_shutdown_can_be_disabled(self):
        with ServerThread(ServerConfig(
            workers=1, allow_remote_shutdown=False,
        )) as handle:
            client = handle.client()
            with pytest.raises(ServeClientError) as excinfo:
                client.shutdown()
            assert excinfo.value.status == 405
            assert client.health()["status"] == "ok"


class TestPriority:
    def test_higher_priority_overtakes_queued_work(self):
        with ServerThread(ServerConfig(workers=1)) as handle:
            client = handle.client()
            # occupy the single worker, then queue two jobs
            blocker = client.submit(
                make_blif(180, min_gates=25, max_gates=35),
                options=SLOW_OPTIONS, use_cache=False,
            )
            low = client.submit(make_blif(181), options=FAST_OPTIONS,
                                priority=0, use_cache=False)
            high = client.submit(make_blif(182), options=FAST_OPTIONS,
                                 priority=10, use_cache=False)
            client.cancel(blocker["job_id"])
            high_view = client.wait(high["job_id"])
            low_view = client.wait(low["job_id"])
            assert high_view["status"] == low_view["status"] == "done"
            high_job = handle.server.jobs[high["job_id"]]
            low_job = handle.server.jobs[low["job_id"]]
            assert high_job.started_at < low_job.started_at
