"""Concurrency stress: many clients, one server, nothing lost.

The invariants under fire:

- every submission gets its own job ID; IDs are never duplicated or
  dropped, even when most submissions coalesce onto shared executions,
- after the storm the queue depth returns to zero and no execution is
  stuck running,
- a graceful (drain) shutdown issued mid-storm finishes every accepted
  job — server-side state is the authority, since clients lose their
  sockets once the listener closes.

The default run is sized for CI; ``POWDER_RUN_SLOW=1`` scales the storm
up and adds an open-loop overload pass.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.serve import (
    LoadGenConfig,
    ServerConfig,
    ServerThread,
    TERMINAL_STATES,
    run_load,
)
from tests.serve.conftest import make_blif

FAST = {"num_patterns": 64, "repeat": 4, "max_rounds": 2}


def test_concurrent_clients_lose_no_ids_and_settle_the_queue():
    clients = 8
    per_client = 6
    pool = [make_blif(seed) for seed in (200, 201, 202)]
    with ServerThread(ServerConfig(workers=2)) as handle:
        ids_by_thread: dict[int, list[str]] = {}
        errors: list[BaseException] = []

        def storm(index: int) -> None:
            client = handle.client()
            mine: list[str] = []
            try:
                for turn in range(per_client):
                    accepted = client.submit(
                        pool[(index + turn) % len(pool)], options=FAST
                    )
                    mine.append(accepted["job_id"])
                for job_id in mine:
                    view = client.wait(job_id, timeout=120)
                    assert view["status"] == "done"
            except BaseException as error:  # noqa: BLE001 — re-raised below
                errors.append(error)
            ids_by_thread[index] = mine

        threads = [
            threading.Thread(target=storm, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(300)
        assert not errors, errors

        all_ids = [
            job_id for ids in ids_by_thread.values() for job_id in ids
        ]
        assert len(all_ids) == clients * per_client
        assert len(set(all_ids)) == len(all_ids)  # no duplicated IDs

        client = handle.client()
        metrics = client.metrics()
        assert metrics["queue_depth"] == 0
        assert metrics["running"] == 0
        assert metrics["counters"]["jobs_submitted"] == len(all_ids)
        assert metrics["jobs"]["by_state"] == {"done": len(all_ids)}
        # the storm reused three circuits: dedup must have engaged
        assert (
            metrics["cache"]["hits"]
            + metrics["counters"].get("jobs_coalesced", 0)
        ) > 0


def test_drain_shutdown_under_load_loses_no_accepted_job():
    jobs = 10
    handle = ServerThread(ServerConfig(workers=2)).start()
    client = handle.client()
    accepted_ids = []
    for index in range(jobs):
        accepted = client.submit(
            make_blif(220 + index, min_gates=10, max_gates=16),
            options={"num_patterns": 256, "repeat": 4, "max_rounds": 2},
            use_cache=False,
        )
        accepted_ids.append(accepted["job_id"])
    # shut down while most of those jobs are still queued
    handle.stop(drain=True, join_timeout=300)
    states = {
        job_id: handle.server.jobs[job_id].state
        for job_id in accepted_ids
    }
    assert all(state == "done" for state in states.values()), states
    assert handle.server.queue.qsize() == 0


def test_nondrain_shutdown_settles_every_job_as_cancelled_or_done():
    handle = ServerThread(ServerConfig(workers=1)).start()
    client = handle.client()
    accepted_ids = []
    for index in range(6):
        accepted = client.submit(
            make_blif(240 + index, min_gates=20, max_gates=28),
            options={"num_patterns": 1024, "repeat": 5, "max_rounds": 6},
            use_cache=False,
        )
        accepted_ids.append(accepted["job_id"])
    time.sleep(0.2)  # let the worker pick one up
    handle.stop(drain=False, join_timeout=120)
    states = {
        job_id: handle.server.jobs[job_id].state
        for job_id in accepted_ids
    }
    # never lost: every accepted job is terminal, none stuck queued/running
    assert all(state in TERMINAL_STATES for state in states.values()), states
    assert "cancelled" in states.values()


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("POWDER_RUN_SLOW"),
    reason="heavy serve storm: set POWDER_RUN_SLOW=1",
)
def test_heavy_storm_with_overload_and_drain():
    with ServerThread(ServerConfig(workers=2, max_queue=64)) as handle:
        closed = run_load(LoadGenConfig(
            port=handle.port, mode="closed", clients=12, duration=20.0,
            seed=3, unique_circuits=4,
        ))
        assert closed.ok(require_cache_hits=True), closed.to_dict()
        open_loop = run_load(LoadGenConfig(
            port=handle.port, mode="open", rate=20.0, clients=12,
            duration=15.0, seed=4, unique_circuits=4,
        ))
        assert open_loop.server_5xx == 0, open_loop.to_dict()
        metrics = handle.client().metrics()
        assert metrics["queue_depth"] == 0
