"""Canonical JSON round-trips for everything the service puts on the wire.

The dedup cache is keyed by canonical option/spec text, so serialization
must be total (every field), canonical (a fixed point under re-encode),
and closed (unknown fields rejected, never silently dropped).  This is
the regression suite for that contract: a new ``OptimizeOptions`` or
``CandidateOptions`` field added without wire support fails here, by
name, before it can corrupt cache keys.
"""

from __future__ import annotations

import json
from dataclasses import fields

import pytest

from repro.telemetry import deterministic_json
from repro.transform.candidates import CandidateOptions
from repro.transform.optimizer import OptimizeOptions
from repro.power.temporal import TemporalSpec

#: One non-default value per OptimizeOptions field (``trace`` excluded:
#: it is process-local by design and must never serialize).
NON_DEFAULT_OPTIONS = {
    "objective": "area",
    "repeat": 9,
    "delay_limit": 12.5,
    "delay_slack_percent": 7.5,
    "candidates": {"enable_os3": False, "max_per_target": 3},
    "num_patterns": 4096,
    "seed": 1234,
    "input_probs": {"a": 0.25, "b": 0.75},
    "input_temporal_specs": {"a": {"p1": 0.5, "activity": 0.125}},
    "backtrack_limit": 77,
    "permissibility": "podem",
    "preselect": 5,
    "min_gain": 0.001,
    "gain_threshold_fraction": 0.2,
    "max_moves": 42,
    "max_rounds": 6,
    "incremental": False,
    "self_check": True,
    "sanitize": True,
    "verbose": True,
    "dedupe_first": True,
    "analysis_prune": True,
    "windowed": True,
    "window_size": 500,
    "window_radius": 5,
    "jobs": 4,
    "window_verify": True,
}

NON_DEFAULT_CANDIDATES = {
    "enable_os2": False,
    "enable_is2": False,
    "enable_os3": False,
    "enable_is3": False,
    "allow_inversion": False,
    "max_per_target": 7,
    "max_total": 99,
    "pair_source_limit": 11,
    "os3_cells": ("nand2", "nor2"),
    "min_quick_gain": 0.01,
    "constant_substitution": True,
}


def test_every_options_field_has_a_non_default_case():
    """Adding a field without extending this suite fails here, by name."""
    covered = set(NON_DEFAULT_OPTIONS) | {"trace"}
    declared = {f.name for f in fields(OptimizeOptions)}
    assert declared == covered, (
        "OptimizeOptions fields without wire-format coverage: "
        f"{sorted(declared - covered)}; stale cases: "
        f"{sorted(covered - declared)}"
    )


def test_every_candidates_field_has_a_non_default_case():
    covered = set(NON_DEFAULT_CANDIDATES)
    declared = {f.name for f in fields(CandidateOptions)}
    assert declared == covered, (
        "CandidateOptions fields without wire-format coverage: "
        f"{sorted(declared - covered)}; stale cases: "
        f"{sorted(covered - declared)}"
    )


@pytest.mark.parametrize("name", sorted(NON_DEFAULT_OPTIONS))
def test_options_field_roundtrips(name):
    """Each field survives to_dict → from_dict and changes the canonical
    text relative to the defaults (so it participates in cache keys)."""
    options = OptimizeOptions.from_dict({name: NON_DEFAULT_OPTIONS[name]})
    rebuilt = OptimizeOptions.from_dict(options.to_dict())
    assert rebuilt == options
    assert rebuilt.canonical_json() == options.canonical_json()
    assert options.canonical_json() != OptimizeOptions().canonical_json()


@pytest.mark.parametrize("name", sorted(NON_DEFAULT_CANDIDATES))
def test_candidates_field_roundtrips(name):
    candidates = CandidateOptions.from_dict(
        {name: NON_DEFAULT_CANDIDATES[name]}
    )
    rebuilt = CandidateOptions.from_dict(candidates.to_dict())
    assert rebuilt == candidates
    assert rebuilt.to_dict() != CandidateOptions().to_dict()


def test_all_fields_at_once_roundtrip():
    merged = dict(NON_DEFAULT_OPTIONS,
                  candidates=dict(NON_DEFAULT_CANDIDATES))
    # delay_limit/delay_slack_percent are mutually exclusive, and the
    # windowed mode forbids delay constraints and temporal specs
    merged.pop("delay_slack_percent")
    merged["windowed"] = False
    options = OptimizeOptions.from_dict(merged)
    rebuilt = OptimizeOptions.from_dict(options.to_dict())
    assert rebuilt == options
    assert rebuilt.candidates == options.candidates
    assert isinstance(
        rebuilt.input_temporal_specs["a"], TemporalSpec
    )


def test_canonical_json_is_a_fixed_point():
    merged = dict(NON_DEFAULT_OPTIONS)
    merged.pop("delay_slack_percent")
    merged["windowed"] = False
    options = OptimizeOptions.from_dict(merged)
    text = options.canonical_json()
    again = OptimizeOptions.from_dict(json.loads(text)).canonical_json()
    assert again == text


def test_canonical_json_is_deterministic_json():
    options = OptimizeOptions()
    assert options.canonical_json() == deterministic_json(options.to_dict())
    # byte-stability: key order in the input dict must not matter
    shuffled = dict(reversed(list(options.to_dict().items())))
    assert deterministic_json(shuffled) == options.canonical_json()


def test_unknown_fields_rejected_by_name():
    with pytest.raises(ValueError, match="bogus_knob"):
        OptimizeOptions.from_dict({"bogus_knob": 1})
    with pytest.raises(ValueError, match="nope"):
        CandidateOptions.from_dict({"nope": True})


def test_trace_never_serializes():
    options = OptimizeOptions()
    options.trace = object()
    with pytest.raises(ValueError, match="trace"):
        options.to_dict()
    with pytest.raises(ValueError, match="trace"):
        OptimizeOptions.from_dict({"trace": {"anything": 1}})


def test_pipeline_spec_canonical_form_is_a_fixed_point():
    from repro.pipeline.spec import format_pipeline_spec, parse_pipeline_spec

    noisy = " powder( max_rounds = 2 , repeat = 5 ) ; lint() "
    canonical = format_pipeline_spec(parse_pipeline_spec(noisy))
    assert canonical == format_pipeline_spec(
        parse_pipeline_spec(canonical)
    )
