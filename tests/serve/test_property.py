"""Property: serving a job is indistinguishable from running it yourself.

For any generated circuit and any service-representable option set, the
BLIF that comes back from ``powder serve`` must be byte-identical to an
in-process :func:`repro.transform.optimizer.power_optimize` with the same
options, and the optimized netlist must be proven equivalent to the
submitted one by the differential oracle.  One module-scoped server
serves every Hypothesis example.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
from repro.fuzz.oracle import check_equivalence_tiers
from repro.netlist.blif import parse_blif, write_blif
from repro.serve.jobspec import server_library
from repro.transform.optimizer import OptimizeOptions, power_optimize

option_dicts = st.fixed_dictionaries({
    "num_patterns": st.sampled_from([64, 128, 256]),
    "repeat": st.integers(min_value=3, max_value=8),
    "max_rounds": st.integers(min_value=1, max_value=4),
    "seed": st.integers(min_value=0, max_value=2**16),
    "objective": st.sampled_from(["power", "area"]),
    "dedupe_first": st.booleans(),
})

circuit_configs = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=2**20),
    "shape": st.sampled_from(["random", "reconvergent", "high_fanout"]),
    "min_gates": st.just(6),
    "max_gates": st.integers(min_value=8, max_value=14),
})


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(circuit=circuit_configs, options=option_dicts)
def test_served_result_matches_inprocess_and_passes_oracle(
    server, circuit, options
):
    blif = write_blif(random_mapped_netlist(GeneratorConfig(**circuit)))

    client = server.client()
    view = client.run(blif, options=options, timeout=180.0)
    served_blif = view["result"]["blif"]
    served_summary = view["result"]["summary"]

    reference = power_optimize(
        parse_blif(blif, server_library()),
        OptimizeOptions.from_dict(dict(options)),
    )
    assert served_blif == write_blif(reference.netlist)
    assert served_summary["final_power"] == reference.final_power
    assert served_summary["moves"] == len(reference.moves)

    original = parse_blif(blif, server_library())
    optimized = parse_blif(served_blif, server_library())
    report = check_equivalence_tiers(original, optimized,
                                     num_patterns=256)
    assert report.equal, report.disagreements or report.verdicts
    assert report.consistent, report.disagreements
