"""Units for the minimal HTTP layer (parser, responses, limits)."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.http import (
    HttpError,
    Request,
    error_body,
    read_request,
    response_bytes,
    stream_header_bytes,
)


def parse(raw: bytes, max_body: int = 1024):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body)

    return asyncio.run(go())


def test_parses_simple_get():
    request = parse(b"GET /jobs/j1?state=done HTTP/1.1\r\nHost: x\r\n\r\n")
    assert request.method == "GET"
    assert request.path == "/jobs/j1"
    assert request.query == {"state": "done"}
    assert request.headers["host"] == "x"
    assert request.body == b""


def test_parses_post_body_by_content_length():
    request = parse(
        b"POST /jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\n"
        b'{"a": 1}\n'
    )
    assert request.body == b'{"a": 1}\n'
    assert request.json() == {"a": 1}


def test_clean_eof_is_none():
    assert parse(b"") is None


@pytest.mark.parametrize("raw", [
    b"GARBAGE\r\n\r\n",
    b"GET /x SPDY/9\r\n\r\n",
    b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
    b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
    b"POST /x HTTP/1.1\r\nContent-Length: -4\r\n\r\n",
    b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
    b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
])
def test_malformed_requests_raise_400(raw):
    with pytest.raises(HttpError) as excinfo:
        parse(raw)
    assert excinfo.value.status == 400


def test_oversized_body_is_413_before_reading():
    with pytest.raises(HttpError) as excinfo:
        parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n",
            max_body=1024,
        )
    assert excinfo.value.status == 413
    assert excinfo.value.code == "too-large"


def test_too_many_headers_rejected():
    headers = b"".join(
        b"h%d: v\r\n" % index for index in range(100)
    )
    with pytest.raises(HttpError):
        parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")


@pytest.mark.parametrize("body, message", [
    (b"", "empty"),
    (b"not json", "malformed"),
    (b"[1, 2]", "non-object"),
])
def test_request_json_rejects(body, message):
    request = Request(method="POST", path="/jobs", body=body)
    with pytest.raises(HttpError) as excinfo:
        request.json()
    assert excinfo.value.status == 400
    assert excinfo.value.code == "bad-json"


def test_response_bytes_shape():
    raw = response_bytes(200, b'{"ok":true}')
    head, _, body = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200 OK")
    assert b"Content-Length: 11" in head
    assert b"Connection: close" in head
    assert body == b'{"ok":true}'


def test_stream_header_has_no_length():
    head = stream_header_bytes(200)
    assert head.startswith(b"HTTP/1.1 200 OK")
    assert b"Content-Length" not in head
    assert b"application/x-ndjson" in head


def test_error_body_is_structured():
    import json

    payload = json.loads(error_body("bad-blif", "nope"))
    assert payload == {"error": {"code": "bad-blif", "message": "nope"}}
