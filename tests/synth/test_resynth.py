"""Tests for un-mapping and resynthesis."""

import numpy as np
import pytest

from repro.equiv.checker import check_equivalent
from repro.library.genlib import parse_genlib
from repro.netlist.simulate import SimState, exhaustive_patterns
from repro.netlist.verify import check_netlist
from repro.synth.mapper import MapOptions
from repro.synth.resynth import resynthesize, unmap
from tests.conftest import make_random_netlist

NAND_ONLY = """
GATE inv 1.0 O=!a;       PIN * INV 1.0 999 1.0 0.5 1.0 0.5
GATE nand2 2.0 O=!(a*b); PIN * INV 1.0 999 1.0 0.5 1.0 0.5
"""


class TestUnmap:
    def test_function_preserved(self, figure2):
        graph = unmap(figure2)
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        values = graph.simulate(exhaustive_patterns(graph.pi_names))
        for po, node in graph.outputs.items():
            want = sim.value(figure2.outputs[po].name)
            assert np.array_equal(values[node], want), po

    def test_sharing_across_cells(self, builder):
        # Two gates computing identical sub-logic fold together in the
        # hashed subject graph.
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.and_(a, b, name="g2")
        builder.output("o1", g1)
        builder.output("o2", g2)
        graph = unmap(builder.build())
        assert graph.outputs["o1"] == graph.outputs["o2"]


class TestResynthesize:
    @pytest.mark.parametrize("seed", [501, 502])
    def test_round_trip_equivalent(self, lib, seed):
        nl = make_random_netlist(lib, 6, 16, 3, seed=seed)
        remapped = resynthesize(nl)
        check_netlist(remapped)
        assert check_equivalent(nl, remapped).equal

    def test_retarget_to_nand_library(self, figure2):
        nand_lib = parse_genlib(NAND_ONLY, "nand-only")
        remapped = resynthesize(figure2, nand_lib)
        check_netlist(remapped)
        used = {g.cell.name for g in remapped.logic_gates()}
        assert used <= {"inv", "nand2"}
        # Cross-library equivalence via exhaustive simulation.
        sim_a = SimState(figure2, exhaustive_patterns(figure2.input_names))
        sim_b = SimState(remapped, exhaustive_patterns(remapped.input_names))
        for po in figure2.outputs:
            assert np.array_equal(
                sim_a.value(figure2.outputs[po].name),
                sim_b.value(remapped.outputs[po].name),
            ), po

    def test_original_untouched(self, figure2):
        gates_before = set(figure2.gates)
        resynthesize(figure2, options=MapOptions(mode="area"))
        assert set(figure2.gates) == gates_before

    def test_remap_after_powder(self, lib):
        # The map -> POWDER -> remap loop must stay functionally stable.
        from repro.bench.suite import build_benchmark
        from repro.transform.optimizer import OptimizeOptions, power_optimize

        nl = build_benchmark("sqrt8", lib)
        ref = nl.copy("ref")
        power_optimize(nl, OptimizeOptions(num_patterns=512, max_rounds=2, max_moves=6))
        remapped = resynthesize(nl)
        check_netlist(remapped)
        assert check_equivalent(ref, remapped).equal
