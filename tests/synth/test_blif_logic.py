"""Tests for the logic-BLIF (.names) front end."""

import numpy as np
import pytest

from repro.errors import ParseError
from repro.netlist.simulate import SimState, exhaustive_patterns
from repro.netlist.verify import check_netlist
from repro.synth.blif_logic import (
    parse_logic_blif,
    network_to_subject_graph,
    synthesize_logic_blif,
)

FULL_ADDER = """
.model fa
.inputs a b cin
.outputs sum cout
.names a b t1
10 1
01 1
.names t1 cin sum
10 1
01 1
.names a b t2
11 1
.names t1 cin t3
11 1
.names t2 t3 cout
00 0
.end
"""


class TestParse:
    def test_full_adder_structure(self):
        network = parse_logic_blif(FULL_ADDER)
        assert network.name == "fa"
        assert network.inputs == ["a", "b", "cin"]
        assert set(network.nodes) == {"t1", "t2", "t3", "sum", "cout"}

    def test_off_set_rows_complemented(self):
        network = parse_logic_blif(FULL_ADDER)
        cover = network.nodes["cout"].cover  # OR via OFF-set row "00 0"
        assert cover.evaluate([0, 0]) == 0
        assert cover.evaluate([1, 0]) == 1
        assert cover.evaluate([0, 1]) == 1

    def test_constants(self):
        text = ".inputs a\n.outputs k1 k0\n.names k1\n1\n.names k0\n.end\n"
        network = parse_logic_blif(text)
        assert network.nodes["k1"].cover.evaluate([]) == 1
        assert network.nodes["k0"].cover.is_empty()

    def test_mixed_polarity_rejected(self):
        with pytest.raises(ParseError):
            parse_logic_blif(
                ".inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n"
            )

    def test_undefined_fanin(self):
        with pytest.raises(ParseError):
            parse_logic_blif(
                ".inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n"
            )

    def test_cycle_detected(self):
        text = (
            ".inputs a\n.outputs y\n"
            ".names a y t\n11 1\n.names t y\n1 1\n.end\n"
        )
        with pytest.raises(ParseError):
            parse_logic_blif(text)

    def test_gate_rejected(self):
        with pytest.raises(ParseError):
            parse_logic_blif(
                ".inputs a\n.outputs y\n.gate inv1 a=a O=y\n.end\n"
            )

    def test_missing_outputs(self):
        with pytest.raises(ParseError):
            parse_logic_blif(".inputs a\n.names a y\n1 1\n.end\n")


class TestSynthesis:
    def test_full_adder_maps_correctly(self, lib):
        netlist = synthesize_logic_blif(FULL_ADDER, lib)
        check_netlist(netlist)
        sim = SimState(netlist, exhaustive_patterns(netlist.input_names))
        s = sim.value(netlist.outputs["sum"].name)
        c = sim.value(netlist.outputs["cout"].name)
        for m in range(8):
            a, b, cin = m & 1, (m >> 1) & 1, (m >> 2) & 1
            total = a + b + cin
            assert ((int(s[0]) >> m) & 1) == total % 2, m
            assert ((int(c[0]) >> m) & 1) == total // 2, m

    def test_po_driven_by_pi(self, lib):
        text = ".inputs a b\n.outputs y a_out\n.names a b y\n11 1\n.names a a_out\n1 1\n.end\n"
        netlist = synthesize_logic_blif(text, lib)
        check_netlist(netlist)
        assert netlist.outputs["a_out"].name == "a"

    def test_internal_sharing(self, lib):
        # t feeds both outputs: the subject graph must share it.
        text = (
            ".inputs a b c\n.outputs y z\n"
            ".names a b t\n11 1\n"
            ".names t c y\n11 1\n"
            ".names t c z\n10 1\n.end\n"
        )
        network = parse_logic_blif(text)
        graph = network_to_subject_graph(network)
        netlist = synthesize_logic_blif(text, lib)
        check_netlist(netlist)
        sim = SimState(netlist, exhaustive_patterns(netlist.input_names))
        for m in range(8):
            a, b, c = m & 1, (m >> 1) & 1, (m >> 2) & 1
            t = a & b
            y = (int(sim.value(netlist.outputs["y"].name)[0]) >> m) & 1
            z = (int(sim.value(netlist.outputs["z"].name)[0]) >> m) & 1
            assert y == (t & c)
            assert z == (t & (1 - c))
