"""Tests for algebraic factoring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.sop import Cover, Cube
from repro.synth.factor import factor_cover, factored_literal_count

NAMES = ["a", "b", "c", "d", "e", "f"]


def covers(nvars=4, max_cubes=6):
    cube = st.builds(
        lambda care, values: Cube(nvars, care, values & care),
        st.integers(0, (1 << nvars) - 1),
        st.integers(0, (1 << nvars) - 1),
    )
    return st.lists(cube, max_size=max_cubes).map(lambda cs: Cover(nvars, cs))


class TestFactorCover:
    def test_empty_cover(self):
        e = factor_cover(Cover(3, []), NAMES[:3])
        assert e.evaluate({}) == 0

    def test_tautology(self):
        e = factor_cover(Cover(3, [Cube.universe(3)]), NAMES[:3])
        assert e.evaluate({}) == 1

    def test_single_cube(self):
        cover = Cover.from_strings(["10-"])
        e = factor_cover(cover, NAMES[:3])
        assert e.to_truthtable(NAMES[:3]) == cover.to_truthtable()

    def test_common_cube_extracted(self):
        # ab + ac = a(b + c): 3 literals instead of 4.
        cover = Cover.from_strings(["11-", "1-1"])
        e = factor_cover(cover, NAMES[:3])
        assert e.to_truthtable(NAMES[:3]) == cover.to_truthtable()
        assert factored_literal_count(e) == 3

    def test_kernel_factoring_shrinks(self):
        # ac + ad + bc + bd = (a+b)(c+d): 4 literals instead of 8.
        cover = Cover.from_strings(["1-1-", "1--1", "-11-", "-1-1"])
        e = factor_cover(cover, NAMES[:4])
        assert e.to_truthtable(NAMES[:4]) == cover.to_truthtable()
        assert factored_literal_count(e) <= 5

    def test_majority(self):
        cover = Cover(
            3,
            [Cube.from_minterm(3, m) for m in range(8) if bin(m).count("1") >= 2],
        )
        e = factor_cover(cover, NAMES[:3])
        assert e.to_truthtable(NAMES[:3]) == cover.to_truthtable()

    @given(covers())
    @settings(max_examples=60, deadline=None)
    def test_factoring_preserves_function(self, cover):
        e = factor_cover(cover, NAMES[:4])
        assert e.to_truthtable(NAMES[:4]) == cover.to_truthtable()

    @given(covers())
    @settings(max_examples=40, deadline=None)
    def test_factored_never_more_literals(self, cover):
        cover.remove_contained()
        e = factor_cover(cover, NAMES[:4])
        assert factored_literal_count(e) <= max(cover.num_literals(), 1)
