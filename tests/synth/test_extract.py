"""Tests for multi-function kernel extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.sop import Cover, Cube
from repro.logic.truthtable import TruthTable
from repro.synth.extract import extract_kernels, total_literals
from repro.synth.flow import SynthesisOptions, synthesize
from repro.netlist.simulate import SimState, exhaustive_patterns
from repro.netlist.verify import check_netlist

NAMES4 = ["a", "b", "c", "d"]


def expand_result(result):
    """Flatten the extracted network back to truth tables over the PIs."""
    # Number of primary inputs = names minus intermediates.
    num_pis = len(result.names) - len(result.intermediates)
    tables: dict[int, TruthTable] = {}
    for v in range(num_pis):
        tables[v] = TruthTable.variable(v, num_pis)

    def cover_table(cover) -> TruthTable:
        out = TruthTable.constant(False, num_pis)
        for cube in cover.cubes:
            term = TruthTable.constant(True, num_pis)
            for var, pol in cube.literals():
                t = table_of(var)
                term = term & (t if pol else ~t)
            out = out | term
        return out

    def table_of(var: int) -> TruthTable:
        if var not in tables:
            name = result.names[var]
            tables[var] = cover_table(result.intermediates[name])
        return tables[var]

    return {po: cover_table(cover) for po, cover in result.outputs.items()}


class TestExtraction:
    def test_shared_kernel_across_outputs(self):
        # f = ac + ad, g = bc + bd: kernel (c + d) shared.
        f = Cover.from_strings(["1-1-", "1--1"])
        g = Cover.from_strings(["-11-", "-1-1"])
        result = extract_kernels(NAMES4, {"f": f, "g": g})
        assert result.num_extracted >= 1
        # The extraction must actually save literals.
        before = f.num_literals() + g.num_literals()
        assert total_literals(result) < before

    def test_function_preserved(self):
        f = Cover.from_strings(["1-1-", "1--1"])
        g = Cover.from_strings(["-11-", "-1-1"])
        result = extract_kernels(NAMES4, {"f": f, "g": g})
        flat = expand_result(result)
        assert flat["f"] == f.to_truthtable()
        assert flat["g"] == g.to_truthtable()

    def test_no_kernel_no_extraction(self):
        f = Cover.from_strings(["11--"])
        result = extract_kernels(NAMES4, {"f": f})
        assert result.num_extracted == 0
        assert result.outputs["f"].to_truthtable() == f.to_truthtable().extend(4)

    @given(
        st.lists(
            st.builds(
                lambda care, values: Cube(4, care, values & care),
                st.integers(0, 15),
                st.integers(0, 15),
            ),
            min_size=1,
            max_size=6,
        ),
        st.lists(
            st.builds(
                lambda care, values: Cube(4, care, values & care),
                st.integers(0, 15),
                st.integers(0, 15),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_preservation(self, cubes_f, cubes_g):
        f = Cover(4, cubes_f)
        g = Cover(4, cubes_g)
        result = extract_kernels(NAMES4, {"f": f, "g": g})
        flat = expand_result(result)
        assert flat["f"] == f.to_truthtable()
        assert flat["g"] == g.to_truthtable()


class TestFlowIntegration:
    def test_synthesize_with_extraction(self, lib):
        f = Cover.from_strings(["1-1-", "1--1"])
        g = Cover.from_strings(["-11-", "-1-1"])
        options = SynthesisOptions(extract=True)
        netlist = synthesize(NAMES4, {"f": f, "g": g}, lib, options=options)
        check_netlist(netlist)
        sim = SimState(netlist, exhaustive_patterns(NAMES4))
        for po, cover in (("f", f), ("g", g)):
            word = sim.value(netlist.outputs[po].name)
            for m in range(16):
                got = (int(word[0]) >> m) & 1
                assert got == int(cover.contains_minterm(m)), (po, m)

    def test_extraction_not_bigger(self, lib):
        from repro.bench.pla import random_pla

        pla = random_pla("x", 8, 6, 30, seed=13)
        plain = synthesize(pla.input_names, pla.on, lib, name="plain")
        extracted = synthesize(
            pla.input_names,
            pla.on,
            lib,
            options=SynthesisOptions(extract=True),
            name="extracted",
        )
        check_netlist(extracted)
        # Extraction shares logic: the mapped result must not blow up.
        assert extracted.total_area() <= plain.total_area() * 1.15
