"""Tests for BDD-based low-power resynthesis."""

import pytest

from repro.bench.suite import build_benchmark
from repro.equiv.checker import check_equivalent
from repro.library.genlib import parse_genlib_file
from repro.library.standard import standard_library
from repro.logic.bdd import BddSizeError
from repro.pipeline import run_pipeline
from repro.synth.bdd_resynth import BddResynthOptions, bdd_resynthesize
from repro.synth.mapper import MapOptions
from tests.conftest import make_random_netlist

NANDNOR = "benchmarks/genlib/nandnor.genlib"


@pytest.fixture(scope="module")
def lib():
    return standard_library()


class TestBddResynthesize:
    @pytest.mark.parametrize("name", ["rd53", "sqrt8"])
    def test_equivalent_on_goldens(self, lib, name):
        original = build_benchmark(name, lib)
        rebuilt = bdd_resynthesize(original)
        assert rebuilt.name == original.name
        assert check_equivalent(original, rebuilt).equal

    def test_equivalent_without_sifting(self, lib):
        original = build_benchmark("rd53", lib)
        rebuilt = bdd_resynthesize(
            original, options=BddResynthOptions(sift=False)
        )
        assert check_equivalent(original, rebuilt).equal

    def test_random_netlists_roundtrip(self, lib):
        for seed in (1, 2, 3):
            original = make_random_netlist(lib, 5, 12, 3, seed=seed)
            rebuilt = bdd_resynthesize(original)
            assert check_equivalent(original, rebuilt).equal

    def test_cross_library_retarget(self, lib):
        original = build_benchmark("rd53", lib)
        target = parse_genlib_file(NANDNOR)
        rebuilt = bdd_resynthesize(original, library=target)
        assert rebuilt.library is target
        for gate in rebuilt.logic_gates():
            assert gate.cell.name in target
        assert check_equivalent(original, rebuilt).equal

    def test_input_probabilities_steer_the_order(self, lib):
        original = build_benchmark("sqrt8", lib)
        probs = {name: 0.02 for name in original.input_names}
        hot = next(iter(original.input_names))
        probs[hot] = 0.5
        biased = bdd_resynthesize(
            original, map_options=MapOptions(mode="power", input_probs=probs)
        )
        assert check_equivalent(original, biased).equal

    def test_node_limit_raises(self, lib):
        original = build_benchmark("misex1", lib)
        with pytest.raises(BddSizeError):
            bdd_resynthesize(
                original, options=BddResynthOptions(node_limit=8)
            )


class TestSubjectGraphDecomposition:
    def test_terminal_only_netlist(self, lib):
        # A netlist whose output is a wire of an input: BDD is a single
        # variable, the MUX tree collapses to the input itself.
        original = make_random_netlist(lib, 3, 4, 2, seed=9)
        rebuilt = bdd_resynthesize(original)
        assert set(rebuilt.input_names) <= set(original.input_names)


class TestBddResynthPass:
    def test_pipeline_spec_runs(self, lib):
        netlist = build_benchmark("rd53", lib)
        reference = netlist.copy("ref")
        outcome = run_pipeline(netlist, "bdd_resynth; powder")
        assert outcome.changed
        assert check_equivalent(reference, outcome.netlist).equal

    def test_node_limit_skips_gracefully(self, lib):
        netlist = build_benchmark("rd53", lib)
        reference = netlist.copy("ref")
        outcome = run_pipeline(netlist, "bdd_resynth(node_limit=8)")
        result = outcome.passes[0]
        assert not result.changed
        assert "skipped" in result.details
        # The netlist is untouched.
        assert check_equivalent(reference, outcome.netlist).equal
        assert outcome.netlist.num_gates() == reference.num_gates()

    def test_bad_mode_rejected(self):
        from repro.errors import PipelineError
        from repro.pipeline import BddResynthPass

        with pytest.raises(PipelineError):
            BddResynthPass(mode="frequency")

    def test_registered_in_catalog(self):
        from repro.pipeline.passes import PASS_REGISTRY

        assert "bdd_resynth" in PASS_REGISTRY
