"""Tests for espresso-style two-level minimization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.sop import Cover, Cube
from repro.logic.truthtable import TruthTable
from repro.synth.twolevel import (
    cover_cost,
    expand,
    irredundant,
    minimize_cover,
    reduce_cover,
)


def covers(nvars=4, max_cubes=6):
    cube = st.builds(
        lambda care, values: Cube(nvars, care, values & care),
        st.integers(0, (1 << nvars) - 1),
        st.integers(0, (1 << nvars) - 1),
    )
    return st.lists(cube, max_size=max_cubes).map(lambda cs: Cover(nvars, cs))


class TestSteps:
    def test_expand_grows_cubes(self):
        on = Cover.from_strings(["110", "100"])
        off = on.complement()
        grown = expand(on, off)
        assert grown.to_truthtable() == on.to_truthtable()
        assert grown.num_literals() <= on.num_literals()

    def test_irredundant_removes_covered(self):
        # Third cube is covered by the other two.
        cover = Cover.from_strings(["1-", "-1", "11"])
        result = irredundant(cover)
        assert len(result) == 2
        assert result.to_truthtable() == cover.to_truthtable()

    def test_reduce_preserves_function(self):
        cover = Cover.from_strings(["1-", "-1"])
        reduced = reduce_cover(cover)
        assert reduced.to_truthtable() == cover.to_truthtable()


class TestMinimize:
    def test_classic_example(self):
        # f = a'b + ab + ab' = a + b
        on = Cover.from_strings(["01", "11", "10"])
        result = minimize_cover(on)
        assert result.to_truthtable() == on.to_truthtable()
        assert len(result) == 2
        assert result.num_literals() == 2

    def test_majority(self):
        on = Cover(
            3,
            [
                Cube.from_minterm(3, m)
                for m in range(8)
                if bin(m).count("1") >= 2
            ],
        )
        result = minimize_cover(on)
        assert result.to_truthtable() == on.to_truthtable()
        assert len(result) == 3  # ab + ac + bc

    def test_tautology(self):
        on = Cover.from_strings(["1-", "0-"])
        result = minimize_cover(on)
        assert len(result) == 1
        assert result.cubes[0].care == 0

    def test_empty(self):
        result = minimize_cover(Cover(3, []))
        assert result.is_empty()

    def test_dont_cares_exploited(self):
        # on = {11}, dc = {10}: minimizer may expand to cube "1-".
        on = Cover.from_strings(["11"])
        dc = Cover.from_strings(["10"])
        result = minimize_cover(on, dc)
        # Result must cover the on-set and stay inside on+dc.
        on_tt = on.to_truthtable()
        dc_tt = dc.to_truthtable()
        result_tt = result.to_truthtable()
        assert on_tt.implies(result_tt)
        assert result_tt.implies(on_tt | dc_tt)
        assert result.num_literals() == 1  # got the expansion

    @given(covers())
    @settings(max_examples=40, deadline=None)
    def test_minimize_preserves_function(self, cover):
        result = minimize_cover(cover)
        assert result.to_truthtable() == cover.to_truthtable()

    @given(covers())
    @settings(max_examples=40, deadline=None)
    def test_minimize_never_worse(self, cover):
        cover.remove_contained()
        result = minimize_cover(cover)
        assert cover_cost(result) <= cover_cost(cover)

    @given(covers(nvars=3), covers(nvars=3))
    @settings(max_examples=30, deadline=None)
    def test_minimize_with_dc_bounds(self, on, dc):
        result = minimize_cover(on, dc)
        on_tt = on.to_truthtable()
        dc_tt = dc.to_truthtable()
        result_tt = result.to_truthtable()
        # Must cover the care on-set and stay inside on + dc; minterms in
        # both on and dc are free either way.
        assert (on_tt & ~dc_tt).implies(result_tt)
        assert result_tt.implies(on_tt | dc_tt)
