"""Tests for the AND2/INV subject graph."""

import numpy as np
import pytest

from repro.logic.expr import parse_expression
from repro.netlist.simulate import exhaustive_patterns
from repro.synth.subject import AND2, CONST0, INV, PI, SubjectGraph


class TestConstruction:
    def test_strash_shares(self):
        g = SubjectGraph()
        a, b = g.add_pi("a"), g.add_pi("b")
        n1 = g.mk_and(a, b)
        n2 = g.mk_and(b, a)  # commutative: same node
        assert n1 == n2

    def test_double_inverter_collapses(self):
        g = SubjectGraph()
        a = g.add_pi("a")
        assert g.mk_inv(g.mk_inv(a)) == a

    def test_idempotent_and(self):
        g = SubjectGraph()
        a = g.add_pi("a")
        assert g.mk_and(a, a) == a

    def test_contradiction_is_const0(self):
        g = SubjectGraph()
        a = g.add_pi("a")
        zero = g.const0()
        assert g.mk_and(a, g.mk_inv(a)) == zero

    def test_const_folding(self):
        g = SubjectGraph()
        a = g.add_pi("a")
        assert g.mk_and(a, g.const0()) == g.const0()
        assert g.mk_and(a, g.const1()) == a

    def test_or_via_demorgan(self):
        g = SubjectGraph()
        a, b = g.add_pi("a"), g.add_pi("b")
        node = g.mk_or(a, b)
        g.set_output("y", node)
        values = g.simulate(exhaustive_patterns(["a", "b"]))
        word = int(values[node][0])
        for m in range(4):
            assert (word >> m) & 1 == ((m & 1) | ((m >> 1) & 1))

    def test_xor(self):
        g = SubjectGraph()
        a, b = g.add_pi("a"), g.add_pi("b")
        node = g.mk_xor(a, b)
        values = g.simulate(exhaustive_patterns(["a", "b"]))
        word = int(values[node][0])
        for m in range(4):
            assert (word >> m) & 1 == ((m & 1) ^ ((m >> 1) & 1))

    def test_duplicate_pi_rejected(self):
        g = SubjectGraph()
        g.add_pi("a")
        with pytest.raises(Exception):
            g.add_pi("a")


class TestFromExpr:
    @pytest.mark.parametrize(
        "text",
        ["a*b+c", "!(a+b)*c", "a^b^c", "a*(b+!c)", "CONST1", "CONST0"],
    )
    def test_expr_roundtrip(self, text):
        expr = parse_expression(text)
        names = list(expr.variables()) or ["a"]
        g = SubjectGraph()
        for n in names:
            g.add_pi(n)
        node = g.add_expr(expr)
        g.set_output("y", node)
        values = g.simulate(exhaustive_patterns(names))
        table = expr.to_truthtable(names)
        word = values[node]
        for m in range(1 << len(names)):
            got = (int(word[(m // 64)]) >> (m % 64)) & 1
            assert got == table.value(m), (text, m)

    def test_sharing_across_outputs(self):
        g = SubjectGraph()
        e1 = parse_expression("a*b+c")
        e2 = parse_expression("c+b*a")
        n1 = g.add_expr(e1)
        n2 = g.add_expr(e2)
        assert n1 == n2


class TestQueries:
    def test_reachable_from_outputs(self):
        g = SubjectGraph()
        a, b = g.add_pi("a"), g.add_pi("b")
        used = g.mk_and(a, b)
        unused = g.mk_or(a, b)
        g.set_output("y", used)
        reachable = g.reachable_from_outputs()
        assert used in reachable
        assert unused not in reachable

    def test_depth(self):
        g = SubjectGraph()
        a, b, c = g.add_pi("a"), g.add_pi("b"), g.add_pi("c")
        g.set_output("y", g.mk_and(g.mk_and(a, b), c))
        assert g.depth() == 2

    def test_num_ands(self):
        g = SubjectGraph()
        a, b = g.add_pi("a"), g.add_pi("b")
        g.mk_and(a, b)
        g.mk_inv(a)
        assert g.num_ands() == 1
