"""Tests for kernel extraction and weak division."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.sop import Cover, Cube
from repro.synth.kernels import (
    common_cube,
    cube_free,
    divide_by_cube,
    kernels,
    weak_divide,
)


def algebraic_product(divisor: Cover, quotient: Cover) -> set:
    cubes = set()
    for d in divisor.cubes:
        for q in quotient.cubes:
            prod = d.intersect(q)
            if prod is not None:
                cubes.add(prod)
    return cubes


def covers(nvars=4, max_cubes=5):
    cube = st.builds(
        lambda care, values: Cube(nvars, care, values & care),
        st.integers(0, (1 << nvars) - 1),
        st.integers(0, (1 << nvars) - 1),
    )
    return st.lists(cube, min_size=1, max_size=max_cubes).map(
        lambda cs: Cover(nvars, cs)
    )


class TestCommonCube:
    def test_common_cube(self):
        cover = Cover.from_strings(["110", "11-"])
        assert str(common_cube(cover)) == "11-"

    def test_no_common(self):
        cover = Cover.from_strings(["1-", "-1"])
        assert common_cube(cover).care == 0

    def test_cube_free(self):
        cover = Cover.from_strings(["110", "101"])
        free = cube_free(cover)
        assert common_cube(free).care == 0


class TestDivision:
    def test_divide_by_cube(self):
        # F = abc + abd + cd; F / ab = c + d
        f = Cover.from_strings(["111-", "11-1", "--11"])
        lit = Cube.from_string("11--")
        q = divide_by_cube(f, lit)
        assert {str(c) for c in q.cubes} == {"--1-", "---1"}

    def test_weak_divide_identity(self):
        # F = (a + b)(c) + d = ac + bc + d
        f = Cover.from_strings(["1-1-", "-11-", "---1"])
        divisor = Cover.from_strings(["1---", "-1--"])  # a + b
        quotient, remainder = weak_divide(f, divisor)
        assert {str(c) for c in quotient.cubes} == {"--1-"}
        assert {str(c) for c in remainder.cubes} == {"---1"}

    def test_weak_divide_empty_quotient(self):
        f = Cover.from_strings(["1-", "-1"])
        divisor = Cover.from_strings(["11"])
        quotient, remainder = weak_divide(f, divisor)
        assert quotient.is_empty()
        assert len(remainder) == 2

    @given(covers(), covers(max_cubes=3))
    @settings(max_examples=50, deadline=None)
    def test_weak_divide_reconstructs(self, f, divisor):
        quotient, remainder = weak_divide(f, divisor)
        rebuilt = algebraic_product(divisor, quotient) | set(remainder.cubes)
        assert rebuilt == set(f.cubes) | (
            rebuilt - set(f.cubes)
        )  # product cubes must all be in F
        # Every cube of F is reproduced.
        assert set(f.cubes) <= rebuilt


class TestKernels:
    def test_textbook_example(self):
        # F = ace + bce + de + g  (classic example, kernels include a+b etc.)
        # vars: a b c d e g -> 6
        f = Cover.from_strings(
            ["1-1-1-", "-11-1-", "---11-", "-----1"]
        )
        found = kernels(f)
        kernel_sets = [
            {str(c) for c in kernel.cubes} for _co, kernel in found
        ]
        assert {"1-----", "-1----"} in kernel_sets  # a + b
        assert {"1-1---", "-11---", "---1--"} in kernel_sets  # ac+bc+d

    def test_kernels_are_cube_free(self):
        f = Cover.from_strings(["111-", "11-1"])
        for _co, kernel in kernels(f):
            assert common_cube(kernel).care == 0

    @given(covers())
    @settings(max_examples=40, deadline=None)
    def test_all_kernels_cube_free(self, f):
        for _co, kernel in kernels(f):
            if len(kernel.cubes) > 1:
                assert common_cube(kernel).care == 0

    def test_single_cube_has_no_multicube_kernels(self):
        f = Cover.from_strings(["11-"])
        assert all(len(k.cubes) <= 1 for _c, k in kernels(f))
