"""Tests for the end-to-end synthesis flow."""

import numpy as np
import pytest

from repro.errors import LogicError
from repro.logic.sop import Cover, Cube
from repro.netlist.simulate import SimState, exhaustive_patterns
from repro.netlist.verify import check_netlist
from repro.synth.flow import SynthesisOptions, build_subject_graph, synthesize
from repro.synth.mapper import MapOptions


def minterm_cover(nvars, predicate):
    return Cover(
        nvars,
        [
            Cube.from_minterm(nvars, m)
            for m in range(1 << nvars)
            if predicate(m)
        ],
    )


def assert_synthesis_correct(input_names, outputs, lib, dc=None, options=None):
    netlist = synthesize(input_names, outputs, lib, dont_cares=dc, options=options)
    check_netlist(netlist)
    sim = SimState(netlist, exhaustive_patterns(input_names))
    n = len(input_names)
    for po, cover in outputs.items():
        word = sim.value(netlist.outputs[po].name)
        dc_cover = (dc or {}).get(po)
        for m in range(1 << n):
            got = (int(word[m // 64]) >> (m % 64)) & 1
            if dc_cover is not None and dc_cover.contains_minterm(m):
                continue  # free choice
            assert got == int(cover.contains_minterm(m)), (po, m)
    return netlist


class TestSynthesize:
    def test_full_adder(self, lib):
        maj = minterm_cover(3, lambda m: bin(m).count("1") >= 2)
        xor3 = minterm_cover(3, lambda m: bin(m).count("1") % 2 == 1)
        nl = assert_synthesis_correct(
            ["a", "b", "c"], {"carry": maj, "sum": xor3}, lib
        )
        assert nl.num_gates() < 15

    def test_width_mismatch(self, lib):
        with pytest.raises(LogicError):
            synthesize(["a"], {"y": Cover(2, [Cube.universe(2)])}, lib)

    def test_with_dont_cares(self, lib):
        on = Cover.from_strings(["11"])
        dc = {"y": Cover.from_strings(["10"])}
        assert_synthesis_correct(["a", "b"], {"y": on}, lib, dc=dc)

    def test_constant_outputs(self, lib):
        nl = synthesize(
            ["a"],
            {"zero": Cover(1, []), "one": Cover.constant(1, True)},
            lib,
        )
        check_netlist(nl)

    def test_no_minimize_option(self, lib):
        on = minterm_cover(3, lambda m: bin(m).count("1") >= 2)
        options = SynthesisOptions(minimize=False)
        assert_synthesis_correct(["a", "b", "c"], {"y": on}, lib, options=options)

    def test_power_mapping_mode(self, lib):
        on = minterm_cover(4, lambda m: bin(m).count("1") in (1, 3))
        options = SynthesisOptions(map_options=MapOptions(mode="power"))
        assert_synthesis_correct(
            ["a", "b", "c", "d"], {"y": on}, lib, options=options
        )

    def test_deterministic(self, lib):
        on = minterm_cover(4, lambda m: (m * 7) % 3 == 1)
        nl1 = synthesize(["a", "b", "c", "d"], {"y": on}, lib)
        nl2 = synthesize(["a", "b", "c", "d"], {"y": on}, lib)
        from repro.netlist.blif import write_blif

        assert write_blif(nl1) == write_blif(nl2)


class TestBuildSubjectGraph:
    def test_sharing_across_outputs(self, lib):
        on = Cover.from_strings(["11-"])
        graph = build_subject_graph(
            ["a", "b", "c"], {"y1": on, "y2": on}
        )
        assert graph.outputs["y1"] == graph.outputs["y2"]
