"""Tests for the cut-based technology mapper."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.library.genlib import parse_genlib
from repro.logic.expr import parse_expression
from repro.netlist.simulate import SimState, exhaustive_patterns
from repro.netlist.verify import check_netlist
from repro.synth.mapper import MapOptions, technology_map
from repro.synth.subject import SubjectGraph

NAND_ONLY = """
GATE inv 1.0 O=!a;       PIN * INV 1.0 999 1.0 0.5 1.0 0.5
GATE nand2 2.0 O=!(a*b); PIN * INV 1.0 999 1.0 0.5 1.0 0.5
"""


def graph_from_exprs(named_exprs, input_names):
    g = SubjectGraph("t")
    for n in input_names:
        g.add_pi(n)
    for po, text in named_exprs.items():
        g.set_output(po, g.add_expr(parse_expression(text)))
    return g


def assert_maps_correctly(graph, library, options=None):
    netlist = technology_map(graph, library, options)
    check_netlist(netlist)
    sim = SimState(netlist, exhaustive_patterns(netlist.input_names))
    values = graph.simulate(exhaustive_patterns(graph.pi_names))
    for po, node in graph.outputs.items():
        got = sim.value(netlist.outputs[po].name)
        want = values[node]
        assert np.array_equal(got, want), po
    return netlist


class TestCorrectness:
    @pytest.mark.parametrize(
        "text",
        [
            "a*b",
            "a+b",
            "!(a*b)+c",
            "a^b",
            "a^b^c",
            "(a+b)*(c+d)",
            "!(a*b+c*d)",
            "a*b*c*d",
            "!a*!b*!c",
        ],
    )
    def test_single_output(self, lib, text):
        expr = parse_expression(text)
        graph = graph_from_exprs({"y": text}, list(expr.variables()))
        assert_maps_correctly(graph, lib)

    def test_multi_output_sharing(self, lib):
        graph = graph_from_exprs(
            {"y1": "a*b+c", "y2": "!(a*b)", "y3": "a*b"},
            ["a", "b", "c"],
        )
        netlist = assert_maps_correctly(graph, lib)
        # The shared a*b cone must not be triplicated.
        assert netlist.num_gates() <= 5

    def test_constant_outputs(self, lib):
        graph = graph_from_exprs({"z": "CONST0", "o": "CONST1"}, ["a"])
        graph.add_pi  # keep at least one PI for simulation plumbing
        netlist = technology_map(graph, lib)
        check_netlist(netlist)
        assert netlist.outputs["z"].cell.name == "zero"
        assert netlist.outputs["o"].cell.name == "one"

    def test_po_alias_of_pi(self, lib):
        graph = SubjectGraph("t")
        a = graph.add_pi("a")
        graph.set_output("y", a)
        netlist = technology_map(graph, lib)
        check_netlist(netlist)
        assert netlist.outputs["y"].name == "a"

    def test_inverted_po(self, lib):
        graph = graph_from_exprs({"y": "!a"}, ["a"])
        netlist = assert_maps_correctly(graph, lib)
        assert netlist.num_gates() == 1


class TestNandOnlyLibrary:
    def test_phase_bridging_covers(self):
        library = parse_genlib(NAND_ONLY, "nand-only")
        graph = graph_from_exprs(
            {"y": "a*b+c", "z": "a+b"}, ["a", "b", "c"]
        )
        netlist = assert_maps_correctly(graph, library)
        used = {g.cell.name for g in netlist.logic_gates()}
        assert used <= {"inv", "nand2"}


class TestCostModes:
    def test_area_mode_smaller_or_equal_area(self, lib):
        graph = graph_from_exprs(
            {"y": "a*b+c*d", "z": "(a+b)*(c+d)"}, ["a", "b", "c", "d"]
        )
        area_nl = technology_map(
            graph, lib, MapOptions(mode="area"), name="area"
        )
        power_nl = technology_map(
            graph, lib, MapOptions(mode="power"), name="power"
        )
        check_netlist(area_nl)
        check_netlist(power_nl)
        assert area_nl.total_area() <= power_nl.total_area() + 1e-9

    def test_power_mode_correct(self, lib):
        graph = graph_from_exprs(
            {"y": "a*b+c*d+!a*!d"}, ["a", "b", "c", "d"]
        )
        assert_maps_correctly(graph, lib, MapOptions(mode="power"))

    def test_bad_mode(self, lib):
        graph = graph_from_exprs({"y": "a*b"}, ["a", "b"])
        with pytest.raises(MappingError):
            technology_map(graph, lib, MapOptions(mode="energy"))

    def test_delay_mode_correct(self, lib):
        graph = graph_from_exprs(
            {"y": "a*b*c*d+!a*!c", "z": "a^b^c"}, ["a", "b", "c", "d"]
        )
        assert_maps_correctly(graph, lib, MapOptions(mode="delay"))

    def test_delay_mode_never_slower(self, lib):
        from repro.timing.analysis import TimingAnalysis

        graph = graph_from_exprs(
            {"y": "a*b*c*d*e+!a*!c", "z": "(a+b)*(c+d)*e"},
            ["a", "b", "c", "d", "e"],
        )
        fast = technology_map(graph, lib, MapOptions(mode="delay"), name="d")
        small = technology_map(graph, lib, MapOptions(mode="area"), name="a")
        # Delay-driven mapping should not lose to area-driven mapping by
        # more than load-estimation noise.
        assert (
            TimingAnalysis(fast).circuit_delay
            <= TimingAnalysis(small).circuit_delay * 1.15
        )


class TestComplexCells:
    def test_aoi_used_when_cheaper(self, lib):
        # !(a*b + c) is exactly aoi21.
        graph = graph_from_exprs({"y": "!(a*b+c)"}, ["a", "b", "c"])
        netlist = assert_maps_correctly(graph, lib)
        names = {g.cell.name for g in netlist.logic_gates()}
        assert "aoi21" in names
        assert netlist.num_gates() == 1

    def test_xor_cell_used(self, lib):
        graph = graph_from_exprs({"y": "a^b"}, ["a", "b"])
        netlist = assert_maps_correctly(graph, lib)
        assert {g.cell.name for g in netlist.logic_gates()} == {"xor2"}
