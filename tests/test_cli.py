"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.library.standard import STANDARD_GENLIB


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_args(self):
        args = build_parser().parse_args(
            ["table1", "--patterns", "512", "--circuits", "rd53"]
        )
        assert args.patterns == 512
        assert args.circuits == ["rd53"]

    def test_optimize_args(self):
        args = build_parser().parse_args(
            ["optimize", "x.blif", "--delay-slack", "0"]
        )
        assert args.netlist == "x.blif"
        assert args.delay_slack == 0.0


class TestCommands:
    def test_bench_list(self, capsys):
        assert main(["bench-list"]) == 0
        out = capsys.readouterr().out
        assert "comp" in out and "9sym" in out

    def test_synth_and_optimize_pipeline(self, tmp_path, capsys):
        pla = tmp_path / "maj.pla"
        pla.write_text(
            ".i 3\n.o 1\n.ilb a b c\n.ob f\n11- 1\n1-1 1\n-11 1\n.e\n"
        )
        mapped = tmp_path / "maj.blif"
        assert main(["synth", str(pla), "-o", str(mapped)]) == 0
        assert mapped.exists()
        optimized = tmp_path / "opt.blif"
        assert (
            main(
                [
                    "optimize",
                    str(mapped),
                    "-o",
                    str(optimized),
                    "--patterns",
                    "512",
                    "--max-rounds",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "POWDER result" in out
        assert optimized.exists()

    def test_synth_to_stdout(self, tmp_path, capsys):
        pla = tmp_path / "f.pla"
        pla.write_text(".i 2\n.o 1\n11 1\n.e\n")
        assert main(["synth", str(pla)]) == 0
        assert ".gate" in capsys.readouterr().out

    def test_optimize_with_custom_library(self, tmp_path, capsys):
        genlib = tmp_path / "lib.genlib"
        genlib.write_text(STANDARD_GENLIB)
        pla = tmp_path / "f.pla"
        pla.write_text(".i 2\n.o 1\n11 1\n.e\n")
        mapped = tmp_path / "f.blif"
        assert (
            main(["synth", str(pla), "--library", str(genlib), "-o", str(mapped)])
            == 0
        )
        assert (
            main(
                [
                    "optimize",
                    str(mapped),
                    "--library",
                    str(genlib),
                    "--patterns",
                    "512",
                    "--max-rounds",
                    "1",
                ]
            )
            == 0
        )

    def test_table1_tiny(self, capsys):
        assert (
            main(
                [
                    "table1",
                    "--circuits",
                    "sqrt8",
                    "--patterns",
                    "512",
                    "--repeat",
                    "4",
                    "--max-rounds",
                    "1",
                    "--max-moves",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sqrt8" in out and "reduction%" in out


class TestUtilityCommands:
    @pytest.fixture
    def mapped_blif(self, tmp_path):
        pla = tmp_path / "maj.pla"
        pla.write_text(
            ".i 3\n.o 1\n.ilb a b c\n.ob f\n11- 1\n1-1 1\n-11 1\n.e\n"
        )
        out = tmp_path / "maj.blif"
        assert main(["synth", str(pla), "-o", str(out)]) == 0
        return out

    def test_verify_equal(self, mapped_blif, capsys):
        assert main(["verify", str(mapped_blif), str(mapped_blif)]) == 0
        assert "equal" in capsys.readouterr().out

    def test_verify_not_equal(self, mapped_blif, tmp_path, capsys):
        pla = tmp_path / "and3.pla"
        pla.write_text(".i 3\n.o 1\n.ilb a b c\n.ob f\n111 1\n.e\n")
        other = tmp_path / "and3.blif"
        assert main(["synth", str(pla), "-o", str(other)]) == 0
        assert main(["verify", str(mapped_blif), str(other)]) == 1
        out = capsys.readouterr().out
        assert "not-equal" in out and "counterexample" in out

    def test_atpg_report(self, mapped_blif, capsys):
        assert main(["atpg", str(mapped_blif), "--patterns", "256"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out

    def test_glitch_report(self, mapped_blif, capsys):
        assert main(["glitch", str(mapped_blif), "--pairs", "64"]) == 0
        out = capsys.readouterr().out
        assert "glitch share" in out

    def test_synth_logic_blif_input(self, tmp_path, capsys):
        logic = tmp_path / "fa.blif"
        logic.write_text(
            ".inputs a b\n.outputs y\n.names a b t\n11 1\n"
            ".names t y\n0 1\n.end\n"
        )
        mapped = tmp_path / "fa_mapped.blif"
        assert main(["synth", str(logic), "-o", str(mapped)]) == 0
        assert mapped.exists()

    def test_synth_delay_mode(self, tmp_path):
        pla = tmp_path / "f.pla"
        pla.write_text(".i 2\n.o 1\n11 1\n.e\n")
        out = tmp_path / "f.blif"
        assert main(["synth", str(pla), "--mode", "delay", "-o", str(out)]) == 0

    def test_stats_report(self, mapped_blif, capsys):
        assert main(["stats", str(mapped_blif), "--patterns", "256"]) == 0
        out = capsys.readouterr().out
        assert "cell mix" in out and "power (sum CE)" in out

    def test_optimize_area_objective(self, mapped_blif, capsys):
        assert (
            main(
                [
                    "optimize", str(mapped_blif), "--objective", "area",
                    "--patterns", "256", "--max-rounds", "1",
                ]
            )
            == 0
        )
        assert "POWDER result" in capsys.readouterr().out

    def test_table2_tiny(self, capsys):
        assert (
            main(
                [
                    "table2", "--circuits", "sqrt8", "--patterns", "512",
                    "--repeat", "4", "--max-rounds", "1", "--max-moves", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "OS2" in out and "paper" in out

    def test_optimize_sanitize_flag(self, mapped_blif, capsys):
        assert (
            main(
                [
                    "optimize", str(mapped_blif), "--sanitize",
                    "--patterns", "256", "--max-rounds", "1",
                ]
            )
            == 0
        )
        assert "POWDER result" in capsys.readouterr().out

    def test_figure6_tiny(self, capsys):
        # Note: the CLI sweeps DEFAULT_SLACK_PERCENTS; restrict circuits to
        # the smallest and cap effort to keep this test quick.
        from repro.experiments.figure6 import run_figure6, format_figure6
        from repro.experiments.common import ExperimentConfig

        result = run_figure6(
            circuits=["sqrt8"],
            slack_percents=(0, 200),
            config=ExperimentConfig(
                num_patterns=512, repeat=4, max_rounds=1, max_moves=3
            ),
        )
        text = format_figure6(result)
        assert "trade-off" in text


class TestTraceCommands:
    @pytest.fixture
    def mapped_blif(self, tmp_path):
        pla = tmp_path / "maj.pla"
        pla.write_text(
            ".i 3\n.o 1\n.ilb a b c\n.ob f\n11- 1\n1-1 1\n-11 1\n.e\n"
        )
        out = tmp_path / "maj.blif"
        assert main(["synth", str(pla), "-o", str(out)]) == 0
        return out

    @pytest.fixture
    def trace_file(self, mapped_blif, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        assert (
            main(
                [
                    "optimize", str(mapped_blif), "--trace", str(out),
                    "--patterns", "256", "--max-rounds", "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        return out

    def test_optimize_writes_schema_valid_trace(self, trace_file):
        from repro.telemetry import read_trace

        trace = read_trace(trace_file)  # read_trace validates
        assert trace.summary["moves"] == len(trace.moves)

    def test_trace_show(self, trace_file, capsys):
        assert main(["trace", "show", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "schema v1" in out and "rounds" in out

    def test_trace_show_caps_moves(self, trace_file, capsys):
        assert main(["trace", "show", str(trace_file), "--moves", "0"]) == 0
        assert "#1" not in capsys.readouterr().out

    def test_trace_diff_identical(self, trace_file, capsys):
        assert (
            main(["trace", "diff", str(trace_file), str(trace_file)]) == 0
        )
        assert "identical" in capsys.readouterr().out

    def test_trace_diff_divergent_exits_nonzero(
        self, trace_file, tmp_path, capsys
    ):
        from repro.telemetry import read_trace, write_trace

        trace = read_trace(trace_file)
        trace.counters["atpg_calls"] = trace.counters.get("atpg_calls", 0) + 1
        other = tmp_path / "other.trace.json"
        write_trace(trace, other)
        assert main(["trace", "diff", str(trace_file), str(other)]) == 1
        assert "atpg_calls" in capsys.readouterr().out

    def test_trace_diff_tolerance_flag(self, trace_file, capsys):
        assert (
            main(
                [
                    "trace", "diff", str(trace_file), str(trace_file),
                    "--tolerance", "1e-9",
                ]
            )
            == 0
        )

    def test_unreadable_trace_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{oops")
        assert main(["trace", "show", str(bad)]) == 1
        assert "cannot read" in capsys.readouterr().out


class TestLintCommand:
    @pytest.fixture
    def mapped_blif(self, tmp_path):
        pla = tmp_path / "maj.pla"
        pla.write_text(
            ".i 3\n.o 1\n.ilb a b c\n.ob f\n11- 1\n1-1 1\n-11 1\n.e\n"
        )
        out = tmp_path / "maj.blif"
        assert main(["synth", str(pla), "-o", str(out)]) == 0
        return out

    @pytest.fixture
    def dangling_blif(self, tmp_path):
        """A parseable BLIF whose netlist carries a zero-fanout gate."""
        from repro.library.standard import standard_library
        from repro.netlist.blif import parse_blif_file, write_blif

        library = standard_library()
        pla = tmp_path / "maj.pla"
        pla.write_text(
            ".i 3\n.o 1\n.ilb a b c\n.ob f\n11- 1\n1-1 1\n-11 1\n.e\n"
        )
        mapped = tmp_path / "maj.blif"
        assert main(["synth", str(pla), "-o", str(mapped)]) == 0
        netlist = parse_blif_file(mapped, library)
        netlist.add_gate(
            library.inverter(), [netlist.gate("a")], name="dead_inv"
        )
        out = tmp_path / "dangling.blif"
        out.write_text(write_blif(netlist))
        return out

    def test_clean_netlist_exits_zero(self, mapped_blif, capsys):
        assert main(["lint", str(mapped_blif), "--patterns", "256"]) == 0
        out = capsys.readouterr().out
        assert "clean: no findings" in out

    def test_json_format(self, mapped_blif, capsys):
        import json

        assert (
            main(
                [
                    "lint", str(mapped_blif), "--format", "json",
                    "--patterns", "256",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "N001" in out and "Q001" in out and "P001" in out

    def test_missing_netlist_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "required" in capsys.readouterr().out

    def test_warning_finding_and_fail_on(self, dangling_blif, capsys):
        # Warnings alone do not fail the default (error) threshold...
        assert main(["lint", str(dangling_blif), "--patterns", "256"]) == 0
        out = capsys.readouterr().out
        assert "Q001" in out and "dead_inv" in out
        # ...but do fail --fail-on warning, with a nonzero exit code.
        assert (
            main(
                [
                    "lint", str(dangling_blif), "--fail-on", "warning",
                    "--patterns", "256",
                ]
            )
            == 1
        )

    def test_warning_finding_json(self, dangling_blif, capsys):
        import json

        assert (
            main(
                [
                    "lint", str(dangling_blif), "--format", "json",
                    "--fail-on", "warning", "--patterns", "256",
                ]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        (diag,) = [
            d for d in payload["diagnostics"] if d["rule"] == "Q001"
        ]
        assert diag["gate"] == "dead_inv"

    def test_select_and_ignore(self, dangling_blif, capsys):
        assert (
            main(
                [
                    "lint", str(dangling_blif), "--ignore", "Q001",
                    "--fail-on", "warning", "--patterns", "256",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "lint", str(dangling_blif), "--select", "N001,N005",
                    "--fail-on", "warning", "--no-probabilities",
                ]
            )
            == 0
        )


class TestPipelineCommand:
    @pytest.fixture
    def mapped_blif(self, tmp_path):
        pla = tmp_path / "maj.pla"
        pla.write_text(
            ".i 3\n.o 1\n.ilb a b c\n.ob f\n11- 1\n1-1 1\n-11 1\n.e\n"
        )
        out = tmp_path / "maj.blif"
        assert main(["synth", str(pla), "-o", str(out)]) == 0
        return out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["pipeline", "run", "x.blif"])
        assert args.netlist == "x.blif"
        assert args.spec == "powder"
        assert not args.list_passes

    def test_list_passes_catalog(self, capsys):
        assert main(["pipeline", "run", "--list-passes"]) == 0
        out = capsys.readouterr().out
        for name in ("dedupe", "powder", "sweep", "lint", "sanitize", "resynth"):
            assert name in out
        assert "parameters:" in out

    def test_missing_netlist_is_usage_error(self, capsys):
        assert main(["pipeline", "run"]) == 2
        assert "required" in capsys.readouterr().out

    def test_invalid_spec_reports_position(self, mapped_blif, capsys):
        assert (
            main(
                [
                    "pipeline", "run", str(mapped_blif),
                    "--spec", "dedupe powder",
                ]
            )
            == 2
        )
        out = capsys.readouterr().out
        assert "invalid pipeline spec" in out and "column 7" in out

    def test_unknown_pass_is_usage_error(self, mapped_blif, capsys):
        assert (
            main(["pipeline", "run", str(mapped_blif), "--spec", "polish"])
            == 2
        )
        assert "unknown pass" in capsys.readouterr().out

    def test_run_spec_writes_outputs(self, mapped_blif, tmp_path, capsys):
        out_blif = tmp_path / "opt.blif"
        trace = tmp_path / "run.trace.json"
        assert (
            main(
                [
                    "pipeline", "run", str(mapped_blif),
                    "--spec", "dedupe; powder(repeat=3, max_rounds=1); sweep",
                    "--patterns", "512",
                    "-o", str(out_blif),
                    "--trace", str(trace),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "pipeline: dedupe; powder(repeat=3, max_rounds=1); sweep" in out
        for stage in ("dedupe", "powder", "sweep", "total"):
            assert stage in out
        assert out_blif.exists() and trace.exists()


class TestLintAnalysisFlags:
    @pytest.fixture
    def mapped_blif(self, tmp_path):
        pla = tmp_path / "maj.pla"
        pla.write_text(
            ".i 3\n.o 1\n.ilb a b c\n.ob f\n11- 1\n1-1 1\n-11 1\n.e\n"
        )
        out = tmp_path / "maj.blif"
        assert main(["synth", str(pla), "-o", str(out)]) == 0
        return out

    def test_unknown_rule_id_exits_two(self, mapped_blif, capsys):
        assert (
            main(["lint", str(mapped_blif), "--select", "S003,BOGUS"]) == 2
        )
        out = capsys.readouterr().out
        assert "unknown rule ID 'BOGUS'" in out

    def test_explain_prints_docstring_and_severity(self, capsys):
        assert main(["lint", "--explain", "S003"]) == 0
        out = capsys.readouterr().out
        assert "S003" in out
        assert "severity:" in out
        # The rule docstring, not a one-liner: the exemptions paragraph.
        assert "phase" in out.lower()

    def test_explain_covers_builtin_rules_too(self, capsys):
        assert main(["lint", "--explain", "N005"]) == 0
        assert "N005" in capsys.readouterr().out

    def test_explain_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--explain", "S999"]) == 2
        assert "unknown rule ID" in capsys.readouterr().out

    def test_facts_flag_enables_s_rules(self, mapped_blif, capsys):
        assert (
            main(
                [
                    "lint", str(mapped_blif), "--facts",
                    "--select", "S001,S002,S003,S004",
                    "--patterns", "256",
                ]
            )
            == 0
        )
        capsys.readouterr()


class TestAnalyzeCommand:
    @pytest.fixture
    def mapped_blif(self, tmp_path):
        pla = tmp_path / "maj.pla"
        pla.write_text(
            ".i 3\n.o 1\n.ilb a b c\n.ob f\n11- 1\n1-1 1\n-11 1\n.e\n"
        )
        out = tmp_path / "maj.blif"
        assert main(["synth", str(pla), "-o", str(out)]) == 0
        return out

    def test_text_report(self, mapped_blif, capsys):
        assert main(["analyze", str(mapped_blif)]) == 0
        out = capsys.readouterr().out
        assert "facts" in out

    def test_json_report(self, mapped_blif, capsys):
        import json

        assert main(["analyze", str(mapped_blif), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["netlist"] == "maj"
        assert "soundness" not in payload

    def test_check_soundness_exit_zero_when_sound(self, mapped_blif, capsys):
        assert main(["analyze", str(mapped_blif), "--check-soundness"]) == 0
        out = capsys.readouterr().out
        assert "0 unsound" in out

    def test_check_soundness_json_payload(self, mapped_blif, capsys):
        import json

        assert (
            main(
                [
                    "analyze", str(mapped_blif),
                    "--check-soundness", "--format", "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["soundness"]["ok"] is True
        assert payload["soundness"]["unsound"] == []

    def test_missing_netlist_raises_like_other_commands(self, tmp_path):
        missing = tmp_path / "nope.blif"
        with pytest.raises(FileNotFoundError):
            main(["analyze", str(missing)])


class TestRetargetCommand:
    NANDNOR = "benchmarks/genlib/nandnor.genlib"

    @pytest.fixture
    def mapped_blif(self, tmp_path):
        pla = tmp_path / "maj.pla"
        pla.write_text(
            ".i 3\n.o 1\n.ilb a b c\n.ob f\n11- 1\n1-1 1\n-11 1\n.e\n"
        )
        out = tmp_path / "maj.blif"
        assert main(["synth", str(pla), "-o", str(out)]) == 0
        return out

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["retarget", "x.blif", "--to", "alt.genlib"]
        )
        assert args.to == "alt.genlib"
        assert args.mode == "power"
        assert not args.bdd
        assert not args.no_verify

    def test_structural_retarget(self, mapped_blif, tmp_path, capsys):
        out = tmp_path / "re.blif"
        assert (
            main(
                [
                    "retarget", str(mapped_blif), "--to", self.NANDNOR,
                    "--patterns", "256", "-o", str(out),
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "retarget" in text and "equal" in text
        assert out.exists()
        # The output must be parseable against the target library and
        # reference only its cells.
        from repro.library.genlib import parse_genlib_file
        from repro.netlist.blif import parse_blif

        target = parse_genlib_file(self.NANDNOR)
        netlist = parse_blif(out.read_text(), target)
        for gate in netlist.logic_gates():
            assert gate.cell.name.startswith("g_")

    def test_bdd_retarget(self, mapped_blif, capsys):
        assert (
            main(
                [
                    "retarget", str(mapped_blif), "--to", self.NANDNOR,
                    "--bdd", "--patterns", "256",
                ]
            )
            == 0
        )
        assert "equal" in capsys.readouterr().out

    def test_no_verify_skips_oracle(self, mapped_blif, capsys):
        assert (
            main(
                [
                    "retarget", str(mapped_blif), "--to", self.NANDNOR,
                    "--patterns", "256", "--no-verify",
                ]
            )
            == 0
        )
        assert "oracle" not in capsys.readouterr().out

    def test_retarget_to_same_library_is_identity_friendly(
        self, mapped_blif, tmp_path, capsys
    ):
        assert (
            main(
                [
                    "retarget", str(mapped_blif), "--to",
                    str(_write_standard_genlib(tmp_path)),
                    "--patterns", "256",
                ]
            )
            == 0
        )
        assert "equal" in capsys.readouterr().out


def _write_standard_genlib(tmp_path):
    path = tmp_path / "std.genlib"
    path.write_text(STANDARD_GENLIB)
    return path
