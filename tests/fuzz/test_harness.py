"""Campaign driver, corpus replay (the CI regression gate), and the CLI."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.fuzz import FuzzOptions, replay_corpus, run_fuzz

CORPUS = Path(__file__).parent / "corpus"

QUICK = dict(num_patterns=256, check_rerun=False, check_engine_identity=False)


def test_small_campaign_passes():
    report = run_fuzz(FuzzOptions(seed=0, count=4, num_patterns=256))
    assert len(report.cases) == 4
    assert report.ok, report.summary()
    assert {c.shape for c in report.cases} == {
        "random", "reconvergent", "high_fanout", "inverter_chain"
    }
    assert "0 failed" in report.summary()


def test_campaign_is_deterministic():
    options = FuzzOptions(seed=3, count=2, **QUICK)
    first = run_fuzz(options)
    second = run_fuzz(options)
    assert [(c.name, c.gates, c.moves) for c in first.cases] == [
        (c.name, c.gates, c.moves) for c in second.cases
    ]


def test_options_validation():
    with pytest.raises(ReproError):
        FuzzOptions(num_patterns=100)  # not a multiple of 64
    with pytest.raises(ReproError):
        FuzzOptions(num_patterns=0)
    with pytest.raises(ReproError):
        FuzzOptions(shapes=("random", "spiral"))


def test_regression_corpus_replays_clean():
    """Every shrunk reproducer ever committed must keep passing — this is
    the 'replayed in CI forever' gate."""
    report = replay_corpus(CORPUS, FuzzOptions(**QUICK))
    assert report.cases, "the seed corpus must not be empty"
    assert report.ok, report.summary()


def test_cli_fuzz_smoke(capsys):
    code = main([
        "fuzz", "--seed", "0", "--count", "2", "--quick",
        "--patterns", "128", "--max-gates", "14",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 failed" in out


def test_cli_fuzz_self_test(capsys):
    code = main([
        "fuzz", "--seed", "0", "--count", "2", "--quick",
        "--patterns", "128", "--self-test",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "caught in every case" in out


def test_cli_fuzz_replay_corpus(capsys):
    code = main(["fuzz", "--replay", str(CORPUS), "--quick"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 failed" in out


def test_cli_fuzz_bench(capsys):
    code = main(["fuzz", "--bench", "rd53", "--quick"])
    out = capsys.readouterr().out
    assert code == 0
    assert "rd53" in out


def test_cli_fuzz_alternate_library(capsys):
    code = main([
        "fuzz", "--seed", "3", "--count", "2", "--quick",
        "--patterns", "128", "--max-gates", "12",
        "--library", "benchmarks/genlib/nandnor.genlib",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 failed" in out
