"""The differential oracle: tier agreement, counterexamples, metric checks."""

from __future__ import annotations

from dataclasses import replace

from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
from repro.fuzz.harness import FuzzOptions, optimizer_options
from repro.fuzz.oracle import (
    check_equivalence_tiers,
    cross_check_metrics,
    verify_counterexample,
)
from repro.netlist.build import NetlistBuilder
from repro.transform.optimizer import power_optimize


def test_identical_netlists_agree_equal(lib):
    netlist = random_mapped_netlist(GeneratorConfig(seed=5), lib)
    report = check_equivalence_tiers(
        netlist, netlist.copy("twin"), num_patterns=256
    )
    assert report.equal and report.consistent, (
        report.verdicts, report.disagreements
    )
    assert report.verdicts["exhaustive"] == "equal"
    assert report.verdicts["sat"] == "equal"
    assert report.verdicts["production"] == "equal"


def test_pi_declaration_order_is_irrelevant(lib):
    def build(order):
        b = NetlistBuilder(lib, "ordered")
        pis = {name: b.input(name) for name in order}
        g = b.and_(pis["a"], pis["b"], name="g1")
        b.output("z0", b.or_(g, pis["c"], name="g2"))
        return b.build()

    report = check_equivalence_tiers(
        build(["a", "b", "c"]), build(["c", "b", "a"]), num_patterns=256
    )
    assert report.equal and report.consistent


def test_inequivalent_pair_caught_with_valid_counterexample(lib):
    def build(op_name):
        b = NetlistBuilder(lib, op_name)
        a, c = b.inputs("a", "c")
        b.output("z0", getattr(b, op_name)(a, c, name="g1"))
        return b.build()

    left, right = build("and_"), build("or_")
    report = check_equivalence_tiers(left, right, num_patterns=256)
    assert not report.equal
    assert report.verdicts["exhaustive"] == "not-equal"
    assert report.verdicts["sat"] == "not-equal"
    assert report.counterexample is not None
    assert verify_counterexample(left, right, report.counterexample)
    # All tiers saw the same truth: no cross-engine disagreement.
    assert report.consistent, report.disagreements


def test_interface_mismatch_is_a_finding_not_a_crash(lib):
    b = NetlistBuilder(lib, "small")
    a, c = b.inputs("a", "c")
    b.output("z0", b.and_(a, c, name="g1"))
    left = b.build()

    b2 = NetlistBuilder(lib, "extra_pi")
    a2, c2, _unused = b2.inputs("a", "c", "u")
    b2.output("z0", b2.and_(a2, c2, name="g1"))
    right = b2.build()

    report = check_equivalence_tiers(left, right, num_patterns=256)
    assert report.verdicts["sat"] == "error"
    assert report.verdicts["production"] == "error"
    assert not report.consistent

    b3 = NetlistBuilder(lib, "other_po")
    a3, c3 = b3.inputs("a", "c")
    b3.output("weird", b3.and_(a3, c3, name="g1"))
    report = check_equivalence_tiers(left, b3.build(), num_patterns=256)
    assert not report.equal
    assert not report.consistent


def _optimized(lib, seed=6):
    netlist = random_mapped_netlist(GeneratorConfig(seed=seed), lib)
    options = optimizer_options(FuzzOptions(num_patterns=256))
    return power_optimize(netlist, options), options


def test_metrics_cross_check_passes_on_real_run(lib):
    result, options = _optimized(lib)
    assert cross_check_metrics(result, options) == []


def test_metrics_cross_check_flags_tampered_figures(lib):
    result, options = _optimized(lib)
    doctored = replace(result, final_power=result.final_power + 1.0)
    problems = cross_check_metrics(doctored, options)
    assert any("power" in p for p in problems)

    doctored = replace(result, final_area=result.final_area + 464.0)
    assert any("area" in p for p in cross_check_metrics(doctored, options))

    doctored = replace(result, final_delay=result.final_delay + 1.0)
    assert any("delay" in p for p in cross_check_metrics(doctored, options))
