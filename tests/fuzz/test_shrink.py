"""Delta-debugging shrink: structural reduction and the broken-transform
acceptance case (inject a bug, catch it, shrink to a tiny reproducer)."""

from __future__ import annotations

from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
from repro.fuzz.harness import (
    FuzzOptions,
    cell_swap_mutator,
    replay_corpus,
    run_case,
)
from repro.fuzz.shrink import shrink_netlist


def test_shrink_reduces_while_preserving_predicate(lib):
    netlist = random_mapped_netlist(
        GeneratorConfig(seed=8, min_gates=20, max_gates=24), lib
    )

    def has_multi_input_gate(candidate):
        return any(g.num_inputs >= 2 for g in candidate.logic_gates())

    assert has_multi_input_gate(netlist)
    shrunk = shrink_netlist(netlist, has_multi_input_gate)
    assert has_multi_input_gate(shrunk)
    assert shrunk.num_gates() < netlist.num_gates()
    assert shrunk.outputs


def test_shrink_never_mutates_the_input(lib):
    netlist = random_mapped_netlist(GeneratorConfig(seed=8), lib)
    before = netlist.num_gates()
    shrink_netlist(netlist, lambda n: n.num_gates() >= 1)
    assert netlist.num_gates() == before


def test_shrink_respects_trial_budget(lib):
    netlist = random_mapped_netlist(
        GeneratorConfig(seed=8, min_gates=20, max_gates=24), lib
    )
    calls = []

    def predicate(candidate):
        calls.append(1)
        return True

    shrink_netlist(netlist, predicate, max_trials=3)
    assert len(calls) <= 3


def test_broken_transform_caught_and_shrunk(lib, tmp_path):
    """The acceptance case: a deliberately broken transform (cell-swap
    corruption after optimization) must be caught by the oracle and shrunk
    to a reproducer of at most 10 gates."""
    options = FuzzOptions(
        num_patterns=256,
        mutator=cell_swap_mutator,
        shrink=True,
        corpus_dir=tmp_path,
        check_rerun=False,
        check_engine_identity=False,
    )
    case = run_case(GeneratorConfig(seed=2, shape="high_fanout"), options)
    assert not case.ok
    assert any("[equivalence]" in f or "[metrics]" in f for f in case.failures)
    assert case.reproducer is not None
    assert case.reproducer.num_gates() <= 10
    assert case.reproducer_path is not None and case.reproducer_path.exists()
    header = case.reproducer_path.read_text().splitlines()
    assert header[0].startswith("# powder fuzz reproducer")
    assert any("replay:" in line for line in header[:4])

    # The written reproducer replays mechanically (and passes: the bug
    # lived in the injected mutator, not in the netlist).
    replay = replay_corpus(
        tmp_path,
        FuzzOptions(num_patterns=256, check_rerun=False,
                    check_engine_identity=False),
    )
    assert len(replay.cases) == 1
