"""The random mapped-netlist generator: determinism, validity, shapes."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.fuzz.generator import (
    SHAPES,
    GeneratorConfig,
    batch_configs,
    random_mapped_netlist,
)
from repro.lint import lint_netlist
from repro.netlist.blif import parse_blif, write_blif


def test_same_config_same_netlist(lib):
    config = GeneratorConfig(seed=11, shape="random")
    first = write_blif(random_mapped_netlist(config, lib))
    second = write_blif(random_mapped_netlist(config, lib))
    assert first == second


def test_different_seeds_differ(lib):
    a = write_blif(random_mapped_netlist(GeneratorConfig(seed=1), lib))
    b = write_blif(random_mapped_netlist(GeneratorConfig(seed=2), lib))
    assert a != b


@pytest.mark.parametrize("shape", SHAPES)
def test_every_shape_is_error_free_and_sized(lib, shape):
    for seed in range(5):
        config = GeneratorConfig(seed=seed, shape=shape)
        netlist = random_mapped_netlist(config, lib)
        logic = list(netlist.logic_gates())
        assert config.min_gates <= len(logic) <= config.max_gates
        assert config.min_inputs <= len(netlist.input_names) <= config.max_inputs
        assert netlist.outputs, "generated netlist must drive an output"
        report = lint_netlist(netlist)
        assert not report.errors, report.format_text()
        # No dangling logic: every gate has fanout or feeds an output.
        for gate in logic:
            assert gate.fanout_count() or gate.po_names


def test_blif_round_trip(lib):
    netlist = random_mapped_netlist(GeneratorConfig(seed=4), lib)
    text = write_blif(netlist)
    parsed = parse_blif(text, lib, name=netlist.name)
    assert parsed.num_gates() == netlist.num_gates()
    assert set(parsed.input_names) == set(netlist.input_names)
    assert set(parsed.outputs) == set(netlist.outputs)


def test_high_fanout_shape_builds_hubs(lib):
    config = GeneratorConfig(
        seed=1, shape="high_fanout", min_gates=30, max_gates=30, hub_bias=0.9
    )
    netlist = random_mapped_netlist(config, lib)
    assert max(g.fanout_count() for g in netlist.gates.values()) >= 5


def test_inverter_chain_shape_chains_inverters(lib):
    netlist = random_mapped_netlist(
        GeneratorConfig(seed=2, shape="inverter_chain", min_gates=20,
                        max_gates=24),
        lib,
    )
    inverters = [g for g in netlist.logic_gates() if g.cell.is_inverter()]
    assert inverters, "shape must insert inverters"
    # At least one inverter directly drives another: a real chain.
    assert any(
        any(not f.is_input and f.cell.is_inverter() for f in g.fanins)
        for g in inverters
    )


def test_reconvergent_shape_has_multi_fanout_stems(lib):
    netlist = random_mapped_netlist(
        GeneratorConfig(seed=3, shape="reconvergent"), lib
    )
    assert any(g.fanout_count() >= 2 for g in netlist.gates.values())


def test_batch_configs_rotate_shapes_and_advance_seeds():
    base = GeneratorConfig(seed=100, shape="random")
    configs = batch_configs(base, 6)
    assert [c.seed for c in configs] == [100, 101, 102, 103, 104, 105]
    assert [c.shape for c in configs] == [
        "random", "reconvergent", "high_fanout", "inverter_chain",
        "random", "reconvergent",
    ]


def test_invalid_configs_rejected():
    with pytest.raises(ReproError):
        GeneratorConfig(shape="moebius")
    with pytest.raises(ReproError):
        GeneratorConfig(min_gates=10, max_gates=5)
    with pytest.raises(ReproError):
        GeneratorConfig(min_inputs=0)
    with pytest.raises(ReproError):
        GeneratorConfig(max_arity=7)
