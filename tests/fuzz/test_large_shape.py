"""The ``large`` generator shape: scale-accurate, lint-clean netlists
for exercising the windowed optimizer, plus the 50k-gate windowed smoke
(marked slow; set ``POWDER_RUN_SLOW=1`` to run it).
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ReproError
from repro.fuzz.generator import (
    ALL_SHAPES,
    SHAPES,
    GeneratorConfig,
    large_config,
    random_mapped_netlist,
)
from repro.lint import lint_netlist
from repro.netlist.blif import parse_blif, write_blif


class TestLargeShape:
    @pytest.mark.parametrize("num_gates", [500, 5_000])
    def test_exact_gate_count(self, lib, num_gates):
        netlist = random_mapped_netlist(large_config(3, num_gates), lib)
        assert netlist.num_gates() == num_gates
        assert len(netlist.input_names) == 64

    def test_lint_clean_at_error_severity(self, lib):
        netlist = random_mapped_netlist(large_config(4, 20_000), lib)
        assert lint_netlist(netlist).errors == []

    def test_deterministic_and_blif_round_trips(self, lib):
        first = write_blif(random_mapped_netlist(large_config(5, 2_000), lib))
        again = write_blif(random_mapped_netlist(large_config(5, 2_000), lib))
        assert first == again
        assert write_blif(parse_blif(first, lib)) == first

    def test_not_in_ci_rotation_but_selectable(self):
        # Adding "large" to the rotation tuple would reshuffle every
        # fixed-seed CI fuzz batch; it must stay opt-in.
        assert "large" not in SHAPES
        assert "large" in ALL_SHAPES
        assert GeneratorConfig(shape="large").shape == "large"
        with pytest.raises(ReproError, match="unknown generator shape"):
            GeneratorConfig(shape="huge")


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("POWDER_RUN_SLOW"),
    reason="50k-gate windowed smoke: set POWDER_RUN_SLOW=1 (~40 min on 1 cpu)",
)
def test_windowed_50k_smoke_under_oracle(lib):
    from repro.fuzz.oracle import check_equivalence_tiers
    from repro.transform.optimizer import OptimizeOptions
    from repro.transform.windowed import windowed_optimize

    netlist = random_mapped_netlist(large_config(7, 50_000), lib)
    reference = netlist.copy("ref")
    options = OptimizeOptions(
        windowed=True,
        num_patterns=64,
        window_size=40,
        max_rounds=1,
        jobs=1,
    )
    result = windowed_optimize(netlist, options)
    assert result.rounds > 100, "50k gates must partition into many windows"
    # At 64 inputs no tier can certify equality (exhaustive is skipped and
    # SAT/ATPG hit their budgets on a 100k-gate miter), so the smoke's
    # contract is: no oracle tier finds an inequality witness.
    report = check_equivalence_tiers(
        reference,
        netlist,
        num_patterns=2048,
        sat_conflict_limit=20_000,
        atpg_backtrack_limit=5_000,
    )
    assert "not-equal" not in report.verdicts.values(), report.disagreements
    assert report.counterexample is None
