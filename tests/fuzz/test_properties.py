"""Metamorphic properties: clean on real runs, violations detected."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
from repro.fuzz.harness import FuzzOptions, optimizer_options
from repro.fuzz.properties import (
    delay_constraint,
    engine_identity,
    idempotent_rerun,
    pipeline_identity,
    power_monotone,
    run_properties,
)
from repro.lint import lint_netlist
from repro.transform.optimizer import power_optimize


@pytest.fixture(scope="module")
def run(lib):
    original = random_mapped_netlist(
        GeneratorConfig(seed=12, shape="high_fanout"), lib
    )
    options = optimizer_options(FuzzOptions(num_patterns=256))
    result = power_optimize(original.copy(original.name + "_opt"), options)
    return original, result, options


def test_all_properties_hold_on_real_run(run):
    original, result, options = run
    assert run_properties(original, result, options) == []


def test_power_monotone_flags_regression(run):
    _original, result, _options = run
    doctored = replace(result, final_power=result.initial_power + 1.0)
    assert any("[power-monotone]" in f for f in power_monotone(doctored))


def test_delay_constraint_flags_violation(run):
    _original, result, _options = run
    assert delay_constraint(result) == []  # unconstrained run: no limit
    doctored = replace(result, delay_limit=result.final_delay * 0.5)
    assert any("[delay-constraint]" in f for f in delay_constraint(doctored))


def test_rerun_and_engine_identity_hold(run):
    original, result, options = run
    assert idempotent_rerun(result, options) == []
    assert engine_identity(original, result, options) == []


def test_pipeline_identity_holds_and_flags_divergence(run):
    original, result, options = run
    assert pipeline_identity(original, result, options) == []
    # A doctored move log (one move dropped) must trip the property.
    doctored = replace(result, moves=result.moves[:-1])
    failures = pipeline_identity(original, doctored, options)
    assert any("[pipeline-identity]" in f for f in failures)


def test_constrained_run_respects_delay_limit(lib):
    netlist = random_mapped_netlist(
        GeneratorConfig(seed=9, shape="reconvergent"), lib
    )
    options = optimizer_options(
        FuzzOptions(num_patterns=256, delay_slack_percent=0.0)
    )
    result = power_optimize(netlist, options)
    assert result.delay_limit is not None
    assert delay_constraint(result) == []


# ----------------------------------------------------------------------
# Satellite: every OS3/IS3-inserted gate is a legal library citizen.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed,shape", [(0, "reconvergent"), (12, "high_fanout")])
def test_os3_is3_insertions_are_library_legal(lib, seed, shape):
    netlist = random_mapped_netlist(GeneratorConfig(seed=seed, shape=shape), lib)
    options = optimizer_options(FuzzOptions(num_patterns=256))
    result = power_optimize(netlist, options)

    inserting = [
        m for m in result.moves if m.substitution.kind in ("OS3", "IS3")
    ]
    assert inserting, "chosen seeds must exercise the pair substitutions"
    for move in inserting:
        cell_name = move.substitution.new_cell
        assert cell_name in lib, f"inserted cell {cell_name!r} not in library"
        assert lib[cell_name].num_inputs == 2

    # The lint rules are the ground truth for "legally wired": L001 (every
    # cell resolves in the library) and L002 (drive limits respected) must
    # stay silent on the optimized netlist.
    report = lint_netlist(result.netlist, select=["L001", "L002"])
    findings = report.errors + report.warnings
    assert not findings, report.format_text()
