"""TransformSanitizer: clean runs stay clean and bit-identical; corrupted
incremental state is pinpointed with the right check ID."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LintError
from repro.library.standard import standard_library
from repro.lint import lint_netlist
from repro.lint.sanitizer import (
    X_LINT,
    X_OBSERVABILITY,
    X_PAIR_TABLE,
    X_PROBABILITY,
    X_TIMING,
)
from repro.transform.optimizer import (
    OptimizeOptions,
    PowerOptimizer,
    power_optimize,
)
from repro.transform.substitution import AppliedSubstitution, Substitution
from tests.conftest import make_random_netlist

LIB = standard_library()


def _options(**overrides):
    base = dict(
        num_patterns=512, repeat=8, max_rounds=3, backtrack_limit=5000
    )
    base.update(overrides)
    return OptimizeOptions(**base)


def _moves(result):
    return [str(m.substitution) for m in result.moves]


class TestCleanRuns:
    def test_identical_move_sequence(self):
        base = make_random_netlist(LIB, 6, 26, 3, 11)
        plain = power_optimize(base.copy("plain"), _options())
        sanitized = power_optimize(
            base.copy("san"), _options(sanitize=True)
        )
        assert _moves(sanitized) == _moves(plain)
        assert sanitized.final_power == plain.final_power

    def test_legacy_engine_sanitized(self):
        base = make_random_netlist(LIB, 6, 22, 3, 5)
        plain = power_optimize(base.copy("plain"), _options(incremental=False))
        sanitized = power_optimize(
            base.copy("san"), _options(incremental=False, sanitize=True)
        )
        assert _moves(sanitized) == _moves(plain)

    def test_reports_are_recorded_and_clean(self):
        base = make_random_netlist(LIB, 6, 26, 3, 11)
        optimizer = PowerOptimizer(base, _options(sanitize=True))
        result = optimizer.run()
        assert len(optimizer.sanitizer.reports) == len(result.moves)
        assert all(not r.diagnostics for r in optimizer.sanitizer.reports)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_netlists_lint_clean_after_sanitized_runs(self, seed):
        netlist = make_random_netlist(LIB, 6, 24, 3, seed)
        power_optimize(
            netlist, _options(sanitize=True, num_patterns=256, repeat=5)
        )
        report = lint_netlist(netlist, ignore=["Q003"])
        # Q003 (double inverters) is legal residue of inverted
        # substitutions; everything else must be clean.
        assert report.diagnostics == []


class _Harness:
    """An optimizer paused right after its caches warmed up."""

    def __init__(self, seed=3):
        self.netlist = make_random_netlist(LIB, 6, 26, 3, seed)
        self.optimizer = PowerOptimizer(
            self.netlist, _options(sanitize=True)
        )
        self.pool = self.optimizer.get_candidate_substitutions()
        gate = next(self.netlist.logic_gates())
        fake = Substitution("OS2", gate.name, self.netlist.input_names[0])
        self.applied = AppliedSubstitution(
            substitution=fake,
            added=[],
            removed=[],
            resim_roots=[],
            area_delta=0.0,
        )

    def expect(self, rule_id):
        with pytest.raises(LintError) as excinfo:
            self.optimizer.sanitizer.after_move(self.applied, 1)
        assert excinfo.value.rule_id == rule_id
        assert rule_id in str(excinfo.value)
        assert "OS2" in str(excinfo.value)  # names the offending move
        report = excinfo.value.report
        assert report is not None and report.errors
        return excinfo.value


class TestCorruptionDetection:
    def test_clean_harness_passes(self):
        h = _Harness()
        h.optimizer.sanitizer.after_move(h.applied, 1)  # no raise

    def test_x001_structural_corruption(self):
        h = _Harness()
        gate = next(g for g in h.netlist.logic_gates() if g.fanouts)
        gate.fanouts.append((gate.fanouts[0][0], 99))  # stale branch
        error = h.expect(X_LINT)
        assert "N005" in str(error)

    def test_x002_probability_drift(self):
        h = _Harness()
        engine = h.optimizer.estimator.engine
        name = next(g.name for g in h.netlist.logic_gates())
        engine._probs[name] = 0.123456789
        h.expect(X_PROBABILITY)

    def test_x002_corrupted_simulation_word(self):
        h = _Harness()
        name = next(g.name for g in h.netlist.logic_gates())
        h.optimizer.estimator.engine.sim.values[name] = (
            ~h.optimizer.estimator.engine.sim.values[name]
        )
        h.expect(X_PROBABILITY)

    def test_x003_stale_arrival_time(self):
        h = _Harness()
        name = next(g.name for g in h.netlist.logic_gates())
        h.optimizer.timing.arrival[name] += 1.0
        h.expect(X_TIMING)

    def test_x004_corrupted_observability_mask(self):
        h = _Harness()
        workspace = h.optimizer._workspace
        name = next(g.name for g in h.netlist.logic_gates())
        workspace.maps.stem[name] = ~workspace.maps.stem[name]
        h.expect(X_OBSERVABILITY)

    def test_x005_corrupted_pair_table(self):
        h = _Harness()
        workspace = h.optimizer._workspace
        assert workspace._pair_cache, "expected cached OS3/IS3 tables"
        key, entry = next(iter(workspace._pair_cache.items()))
        names, cells, va, obs, rows, rows_next, table, act = entry
        if not table.any():
            table = table.copy()
            table.flat[0] = True
        else:
            table = ~table
        workspace._pair_cache[key] = (
            names, cells, va, obs, rows, rows_next, table, act,
        )
        h.expect(X_PAIR_TABLE)

    def test_x002_value_for_dead_gate(self):
        h = _Harness()
        sim = h.optimizer.estimator.engine.sim
        sim.values["ghost_gate"] = np.zeros(sim.nwords, dtype=np.uint64)
        h.expect(X_PROBABILITY)
