"""The bundled benchmark BLIFs lint clean, and injected corruption is
reported with rule ID, location, and a failing exit code."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.library.standard import standard_library
from repro.lint import Severity, lint_netlist
from repro.netlist.blif import parse_blif_file

BLIF_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "blif"
BUNDLED = sorted(BLIF_DIR.glob("*.blif"))


def test_blifs_are_bundled():
    assert len(BUNDLED) >= 3


@pytest.mark.parametrize("path", BUNDLED, ids=lambda p: p.stem)
def test_bundled_blif_lints_clean(path, capsys):
    assert main(["lint", str(path), "--patterns", "512"]) == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_bundled_blif_zero_error_diagnostics():
    library = standard_library()
    for path in BUNDLED:
        netlist = parse_blif_file(path, library)
        report = lint_netlist(netlist)
        assert report.errors == [], f"{path.name}: {report.format_text()}"


def test_injected_corruption_is_pinpointed():
    library = standard_library()
    netlist = parse_blif_file(BUNDLED[0], library)
    gate = next(g for g in netlist.logic_gates() if g.fanouts)
    sink, _pin = gate.fanouts[0]
    gate.fanouts.append((sink, 99))  # stale fanout entry

    report = lint_netlist(netlist)
    assert report.at_least(Severity.ERROR), "corruption must fail the lint"

    text = report.format_text()
    assert "N005" in text and gate.name in text and "error" in text

    payload = json.loads(report.format_json())
    (diag,) = [d for d in payload["diagnostics"] if d["rule"] == "N005"]
    assert diag["gate"] == gate.name
    assert diag["pin"] == 99
    assert diag["severity"] == "error"
