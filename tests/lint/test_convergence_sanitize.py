"""Acceptance: the ttt2 convergence configuration runs sanitized to
completion with zero findings and a bit-identical move sequence."""

from repro.bench.suite import build_benchmark
from repro.library.standard import standard_library
from repro.transform.optimizer import OptimizeOptions, PowerOptimizer

#: The bench_convergence configuration (benchmarks/bench_convergence.py).
CONFIG = dict(
    num_patterns=1024, repeat=15, max_rounds=6, backtrack_limit=10000
)


def test_ttt2_convergence_sanitized():
    library = standard_library()
    base = build_benchmark("ttt2", library, map_mode="power")

    plain = PowerOptimizer(
        base.copy("plain"), OptimizeOptions(**CONFIG)
    ).run()
    sanitized_optimizer = PowerOptimizer(
        base.copy("sanitized"), OptimizeOptions(sanitize=True, **CONFIG)
    )
    sanitized = sanitized_optimizer.run()

    assert [str(m.substitution) for m in sanitized.moves] == [
        str(m.substitution) for m in plain.moves
    ]
    assert sanitized.final_power == plain.final_power
    assert sanitized.rounds == plain.rounds
    reports = sanitized_optimizer.sanitizer.reports
    assert len(reports) == len(sanitized.moves)
    assert all(not r.diagnostics for r in reports)
