"""Each built-in lint rule fires on a deliberately corrupted netlist."""

import json

import pytest

from repro.errors import LintError, NetlistError
from repro.library.cell import Cell, Library, Pin
from repro.lint import (
    Severity,
    all_rules,
    get_rule,
    lint_netlist,
    resolve_rules,
    rule_catalog,
)
from repro.netlist.build import NetlistBuilder
from repro.netlist.netlist import Netlist
from repro.netlist.verify import check_netlist


def rule_ids(report):
    return {d.rule_id for d in report.diagnostics}


class TestStructuralRules:
    def test_clean_netlist_has_no_findings(self, figure2):
        assert lint_netlist(figure2).diagnostics == []

    def test_n001_wrong_registration(self, figure2):
        gate = figure2.gate("d")
        del figure2.gates["d"]
        figure2.gates["dd"] = gate
        assert "N001" in rule_ids(lint_netlist(figure2))

    def test_n002_input_with_fanin(self, figure2):
        a = figure2.gate("a")
        a.fanins.append(figure2.gate("b"))
        report = lint_netlist(figure2, select=["N002"])
        assert [d.rule_id for d in report.errors] == ["N002"]
        assert report.errors[0].gate == "a"

    def test_n002_bogus_input_list_entry(self, figure2):
        figure2.input_names.append("ghost")
        assert "N002" in rule_ids(lint_netlist(figure2))

    def test_n003_arity_mismatch(self, figure2):
        d = figure2.gate("d")
        dropped = d.fanins.pop()
        dropped.fanouts.remove((d, 1))
        report = lint_netlist(figure2, select=["N003"])
        assert len(report.errors) == 1
        assert report.errors[0].gate == "d"

    def test_n004_foreign_fanin(self, figure2, lib):
        other = NetlistBuilder(lib, "other")
        foreign = other.input("zz")
        d = figure2.gate("d")
        d.fanins[0] = foreign
        report = lint_netlist(figure2)
        assert "N004" in rule_ids(report)

    def test_n005_stale_fanout_entry(self, figure2):
        d = figure2.gate("d")
        e = figure2.gate("e")
        d.fanouts.append((e, 0))  # e pin 0 is not driven by d
        report = lint_netlist(figure2, select=["N005"])
        (diag,) = report.errors
        assert diag.gate == "d"
        assert diag.pin == 0
        assert "stale" in diag.message

    def test_n005_missing_fanout_branch(self, figure2):
        d = figure2.gate("d")
        f = figure2.gate("f")
        d.fanouts.remove((f, 0))
        assert "N005" in rule_ids(lint_netlist(figure2))

    def test_n006_po_owned_by_other_driver(self, figure2):
        figure2.outputs["f_out"] = figure2.gate("e")
        assert "N006" in rule_ids(lint_netlist(figure2))

    def test_n006_missing_po_load(self, figure2):
        del figure2.output_loads["f_out"]
        assert "N006" in rule_ids(lint_netlist(figure2))

    def test_n007_duplicated_po_driver(self, figure2):
        # Both e and f now claim the f_out port.
        figure2.gate("e").po_names.append("f_out")
        report = lint_netlist(figure2)
        assert "N007" in rule_ids(report)
        (diag,) = [d for d in report.errors if d.rule_id == "N007"]
        assert "f_out" in diag.message

    def test_n008_cycle(self, figure2):
        d = figure2.gate("d")
        f = figure2.gate("f")
        a = d.fanins[0]
        a.fanouts.remove((d, 0))
        d.fanins[0] = f
        f.fanouts.append((d, 0))
        figure2._invalidate()
        report = lint_netlist(figure2, select=["N008"])
        assert len(report.errors) == 1
        assert "cycle" in report.errors[0].message


class TestQualityRules:
    def test_q001_dangling_gate(self, figure2, lib):
        b = figure2.gate("b")
        figure2.add_gate(lib.inverter(), [b], name="dead")
        report = lint_netlist(figure2)
        assert [d.rule_id for d in report.diagnostics] == ["Q001"]
        diag = report.diagnostics[0]
        assert diag.severity == Severity.WARNING
        assert diag.gate == "dead"
        assert "sweep_dead" in diag.suggestion

    def test_q002_tie_fed_gate(self, figure2, lib):
        tie = figure2.add_gate(lib["one"], [], name="tie1")
        inv = figure2.add_gate(lib.inverter(), [tie], name="redundant")
        figure2.set_output("extra", inv)
        report = lint_netlist(figure2, select=["Q002"])
        assert [d.gate for d in report.diagnostics] == ["redundant"]

    def test_q003_double_inverter(self, figure2, lib):
        inv1 = figure2.add_gate(
            lib.inverter(), [figure2.gate("d")], name="inv1"
        )
        inv2 = figure2.add_gate(lib.inverter(), [inv1], name="inv2")
        figure2.set_output("slow", inv2)
        report = lint_netlist(figure2, select=["Q003"])
        (diag,) = report.diagnostics
        assert diag.gate == "inv2"
        assert "'d'" in diag.suggestion


class TestLibraryRules:
    def test_l001_unbound_cell(self, figure2):
        figure2.library = Library("empty")
        report = lint_netlist(figure2, select=["L001"])
        assert report.errors  # every logic gate's cell is now unknown
        assert all(d.rule_id == "L001" for d in report.errors)

    def test_l001_skipped_without_library(self, figure2):
        figure2.library = None
        assert lint_netlist(figure2, select=["L001"]).diagnostics == []

    def test_l002_drive_limit(self):
        weak_inv = Cell(
            "weak_inv", 1.0, "O", "!A",
            [Pin("A", load=1.0, max_load=0.5)],
        )
        nl = Netlist("weak")
        a = nl.add_input("a")
        inv = nl.add_gate(weak_inv, [a], name="inv")
        nl.set_output("o", inv, load=2.0)  # 2.0 > max_load 0.5
        report = lint_netlist(nl, select=["L002"])
        (diag,) = report.diagnostics
        assert diag.severity == Severity.WARNING
        assert diag.gate == "inv"


class TestPowerRules:
    def test_p001_out_of_range(self, figure2):
        probs = {name: 0.5 for name in figure2.gates}
        probs["d"] = 1.5
        report = lint_netlist(
            figure2, select=["P001"], probabilities=probs
        )
        (diag,) = report.errors
        assert diag.gate == "d"

    def test_p001_nan(self, figure2):
        probs = {"d": float("nan")}
        report = lint_netlist(figure2, probabilities=probs)
        assert "P001" in rule_ids(report)

    def test_p001_skipped_without_probabilities(self, figure2):
        assert lint_netlist(figure2, select=["P001"]).diagnostics == []


class TestRegistryAndSelection:
    def test_catalog_is_sorted_and_unique(self):
        ids = [row[0] for row in rule_catalog()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert {"N001", "N005", "N008", "Q001", "L001", "P001"} <= set(ids)

    def test_unknown_rule_id_raises(self):
        with pytest.raises(LintError):
            get_rule("Z999")
        with pytest.raises(LintError):
            resolve_rules(select=["N001", "Z999"])

    def test_ignore_suppresses(self, figure2, lib):
        b = figure2.gate("b")
        figure2.add_gate(lib.inverter(), [b], name="dead")
        assert rule_ids(lint_netlist(figure2)) == {"Q001"}
        assert lint_netlist(figure2, ignore=["Q001"]).diagnostics == []

    def test_severity_parsing(self):
        assert Severity.from_name("ERROR") is Severity.ERROR
        assert Severity.from_name("warning") is Severity.WARNING
        with pytest.raises(LintError):
            Severity.from_name("fatal")

    def test_every_rule_has_metadata(self):
        for rule in all_rules():
            assert rule.id and rule.title
            assert isinstance(rule.severity, Severity)


class TestReportFormats:
    def test_text_format_names_rule_and_location(self, figure2):
        d = figure2.gate("d")
        e = figure2.gate("e")
        d.fanouts.append((e, 0))
        text = lint_netlist(figure2).format_text()
        assert "N005" in text
        assert "d.0" in text

    def test_json_format_round_trips(self, figure2):
        d = figure2.gate("d")
        e = figure2.gate("e")
        d.fanouts.append((e, 0))
        payload = json.loads(lint_netlist(figure2).format_json())
        assert payload["netlist"] == "fig2"
        assert payload["counts"]["error"] >= 1
        (diag,) = [
            d for d in payload["diagnostics"] if d["rule"] == "N005"
        ]
        assert diag["gate"] == "d"
        assert diag["pin"] == 0
        assert diag["severity"] == "error"


class TestCheckNetlistWrapper:
    def test_raises_with_rule_id(self, figure2):
        d = figure2.gate("d")
        f = figure2.gate("f")
        d.fanouts.remove((f, 0))
        with pytest.raises(NetlistError, match=r"\[N005\]"):
            check_netlist(figure2)

    def test_warnings_do_not_raise(self, figure2, lib):
        figure2.add_gate(lib.inverter(), [figure2.gate("b")], name="dead")
        check_netlist(figure2)  # Q001 is warning severity; wrapper ignores
