"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AtpgAbort,
    AtpgError,
    LibraryError,
    LogicError,
    MappingError,
    NetlistError,
    ParseError,
    ReproError,
    TimingError,
    TransformError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            LogicError,
            ParseError,
            LibraryError,
            NetlistError,
            MappingError,
            AtpgError,
            TransformError,
            TimingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_abort_is_atpg_error(self):
        assert issubclass(AtpgAbort, AtpgError)

    def test_parse_error_line_prefix(self):
        err = ParseError("bad token", line=42)
        assert "line 42" in str(err)
        assert err.line == 42

    def test_parse_error_no_line(self):
        err = ParseError("bad token")
        assert str(err) == "bad token"
        assert err.line is None

    def test_catchable_at_api_boundary(self, lib):
        from repro.netlist.netlist import Netlist

        nl = Netlist("t", lib)
        with pytest.raises(ReproError):
            nl.gate("missing")
