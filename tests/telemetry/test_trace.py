"""Unit tests of the telemetry subsystem: metrics registry, trace
schema/writer/reader, the diff tool, and the tracer's read-only wiring
into the optimizer."""

from __future__ import annotations

import copy
import json

import pytest

from repro.errors import TelemetryError
from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
from repro.telemetry import (
    TRACE_SCHEMA_VERSION,
    Metrics,
    MoveTrace,
    RoundTrace,
    RunTrace,
    Tracer,
    compare_traces,
    format_trace,
    read_trace,
    validate_trace,
    write_trace,
)
from repro.transform.optimizer import OptimizeOptions, power_optimize


class FakeClock:
    """Deterministic clock for timer tests."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TestMetrics:
    def test_counters_accumulate_and_sort(self):
        metrics = Metrics()
        metrics.increment("b")
        metrics.increment("a", 4)
        metrics.counter("b").increment(2)
        assert metrics.counters() == {"a": 4, "b": 3}

    def test_timer_uses_injected_clock(self):
        clock = FakeClock()
        metrics = Metrics(clock=clock)
        with metrics.timer("phase"):
            clock.advance(1.5)
        with metrics.timer("phase"):
            clock.advance(0.25)
        assert metrics.timers() == {"phase": 1.75}

    def test_timer_add_folds_external_measurements(self):
        metrics = Metrics(clock=FakeClock())
        metrics.timer("x").add(2.0)
        metrics.timer("x").add(0.5)
        assert metrics.timers()["x"] == 2.5

    def test_timer_stop_without_start_is_harmless(self):
        timer = Metrics(clock=FakeClock()).timer("t")
        timer.stop()
        assert timer.seconds == 0.0


def _tiny_trace() -> RunTrace:
    return RunTrace(
        netlist="tiny",
        options={"num_patterns": 64},
        rounds=[
            RoundTrace(
                index=1,
                pool_size=2,
                candidates_by_class={"OS2": 1, "IS2": 1, "OS3": 0, "IS3": 0},
                shortlist_evaluations=2,
                moves_applied=1,
                rejections={"delay": 0, "not_permissible": 1, "aborted": 0, "stale": 0},
            )
        ],
        moves=[
            MoveTrace(
                index=1,
                round=1,
                candidate_id="OS2|a|b||||||",
                kind="OS2",
                pg_a=1.0,
                pg_b=-0.25,
                pg_c=0.5,
                predicted_total=1.25,
                measured_power_gain=1.25,
                measured_area_delta=-8.0,
                circuit_delay_after=3.5,
                atpg_status="permissible",
                atpg_stage="atpg",
                atpg_backtracks=7,
            )
        ],
        counters={"atpg_calls": 2},
        timers={"total": 0.01},
        summary={"initial_power": 4.0, "final_power": 2.75},
    )


class TestSchemaAndRoundtrip:
    def test_roundtrip_through_json_file(self, tmp_path):
        trace = _tiny_trace()
        path = tmp_path / "t.json"
        write_trace(trace, path)
        back = read_trace(path)
        assert back == trace

    def test_validate_accepts_own_output(self):
        validate_trace(_tiny_trace().to_dict())

    def test_unreadable_file_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(TelemetryError, match="cannot read"):
            read_trace(path)

    @pytest.mark.parametrize(
        "corrupt, match",
        [
            (lambda d: d.pop("moves"), "missing field 'moves'"),
            (lambda d: d.update(schema_version=99), "unsupported version"),
            (
                lambda d: d["moves"][0].update(pg_a="high"),
                r"moves\[0\].pg_a",
            ),
            (
                lambda d: d["moves"][0].update(kind="XYZ"),
                "unknown class",
            ),
            (
                lambda d: d["moves"][0].update(index=3),
                "move indices",
            ),
            (
                lambda d: d["rounds"][0]["candidates_by_class"].pop("OS3"),
                "exactly the classes",
            ),
            (
                lambda d: d["counters"].update(atpg_calls=True),
                "expected an integer",
            ),
        ],
    )
    def test_validate_rejects_corruption(self, corrupt, match):
        data = _tiny_trace().to_dict()
        corrupt(data)
        with pytest.raises(TelemetryError, match=match):
            validate_trace(data)

    def test_deterministic_json_excludes_timers(self):
        text = _tiny_trace().deterministic_json()
        assert "timers" not in json.loads(text)
        assert "schema_version" in json.loads(text)

    def test_format_trace_renders_moves_and_counters(self):
        text = format_trace(_tiny_trace())
        assert "'tiny'" in text
        assert "atpg_calls=2" in text
        assert "permissible/atpg" in text

    def test_schema_version_constant_matches_model(self):
        assert _tiny_trace().schema_version == TRACE_SCHEMA_VERSION


class TestCompareTraces:
    def test_identical_traces_compare_clean(self):
        diff = compare_traces(_tiny_trace(), _tiny_trace())
        assert diff.ok
        assert "identical" in diff.format()

    def test_wall_times_are_ignored(self):
        left, right = _tiny_trace(), _tiny_trace()
        right.timers = {"total": 123.0, "phase.atpg": 9.0}
        assert compare_traces(left, right).ok

    def test_move_sequence_fork_is_reported_once(self):
        left, right = _tiny_trace(), _tiny_trace()
        right.moves[0].candidate_id = "OS2|a|c||||||"
        right.moves[0].pg_a = 9.0  # noise after the fork must not pile on
        diff = compare_traces(left, right)
        assert [d.path for d in diff.divergences] == ["$.moves[0].candidate_id"]

    def test_gain_decomposition_divergence_flagged(self):
        left, right = _tiny_trace(), _tiny_trace()
        right.moves[0].pg_c += 0.125
        right.moves[0].predicted_total += 0.125
        diff = compare_traces(left, right)
        paths = {d.path for d in diff.divergences}
        assert "$.moves[0].pg_c" in paths
        assert "$.moves[0].predicted_total" in paths

    def test_counter_divergence_flagged(self):
        left, right = _tiny_trace(), _tiny_trace()
        right.counters["atpg_calls"] = 3
        diff = compare_traces(left, right)
        assert [d.path for d in diff.divergences] == ["$.counters.atpg_calls"]

    def test_missing_counter_flagged_both_ways(self):
        left, right = _tiny_trace(), _tiny_trace()
        right.counters["extra"] = 1
        assert not compare_traces(left, right).ok
        assert not compare_traces(right, left).ok

    def test_move_count_mismatch_flagged(self):
        left, right = _tiny_trace(), _tiny_trace()
        right.moves = []
        diff = compare_traces(left, right)
        assert any("moves.length" in d.path for d in diff.divergences)

    def test_float_tolerance_applies_to_floats_only(self):
        left, right = _tiny_trace(), _tiny_trace()
        right.moves[0].pg_b += 1e-12
        right.counters["atpg_calls"] = 3
        diff = compare_traces(left, right, tolerance=1e-9)
        assert [d.path for d in diff.divergences] == ["$.counters.atpg_calls"]

    def test_format_caps_output(self):
        left, right = _tiny_trace(), _tiny_trace()
        right.counters = {f"c{i}": i for i in range(60)}
        text = compare_traces(left, right).format(max_lines=5)
        assert "more" in text


def _optimize(lib, tracer=None, seed=5):
    netlist = random_mapped_netlist(
        GeneratorConfig(seed=seed, shape="high_fanout"), lib
    )
    options = OptimizeOptions(num_patterns=256, max_rounds=4, trace=tracer)
    return power_optimize(netlist, options)


class TestTracedRuns:
    def test_traced_and_untraced_runs_apply_identical_moves(self, lib):
        traced = _optimize(lib, tracer=Tracer())
        plain = _optimize(lib)
        assert [str(m.substitution) for m in traced.moves] == [
            str(m.substitution) for m in plain.moves
        ]
        assert traced.moves, "seed must yield at least one move"
        assert plain.trace is None

    def test_trace_totals_mirror_the_result(self, lib):
        tracer = Tracer()
        result = _optimize(lib, tracer=tracer)
        trace = result.trace
        assert trace is tracer.trace
        assert len(trace.moves) == len(result.moves)
        assert trace.summary["final_power"] == result.final_power
        assert trace.summary["rounds"] == result.rounds
        assert trace.counters["moves_applied"] == len(result.moves)
        assert sum(r.moves_applied for r in trace.rounds) == len(result.moves)
        rejected = (
            result.rejected_delay
            + result.rejected_not_permissible
            + result.rejected_aborted
            + result.rejected_stale
        )
        by_round = sum(
            count for r in trace.rounds for count in r.rejections.values()
        )
        assert by_round == rejected

    def test_moves_carry_candidate_ids_and_atpg_verdicts(self, lib):
        result = _optimize(lib, tracer=Tracer())
        replayed = {m.substitution.candidate_id() for m in result.moves}
        for move in result.trace.moves:
            assert move.candidate_id in replayed
            assert move.atpg_status == "permissible"
            assert move.atpg_stage in ("simulation", "atpg", "bdd", "sim", "sat")
            assert move.atpg_backtracks >= 0

    def test_candidate_class_counts_cover_the_pool(self, lib):
        result = _optimize(lib, tracer=Tracer())
        for round_trace in result.trace.rounds:
            assert (
                sum(round_trace.candidates_by_class.values())
                == round_trace.pool_size
            )

    def test_trace_validates_and_roundtrips(self, lib, tmp_path):
        result = _optimize(lib, tracer=Tracer())
        path = tmp_path / "run.json"
        write_trace(result.trace, path)
        back = read_trace(path)
        assert compare_traces(result.trace, back).ok
        assert copy.deepcopy(result.trace) == back
