"""Golden-trace regression suite.

Each bundled benchmark BLIF (``benchmarks/blif/``) has a committed
baseline run trace under ``tests/telemetry/golden/``.  Every test here
replays the optimizer with :data:`GOLDEN_OPTIONS` on the same input and
compares the fresh trace against the baseline with
:func:`repro.telemetry.compare_traces` — so any behavioural drift in
candidate ranking, gain arithmetic (PG_A/PG_B/PG_C), ATPG outcomes, or
counter totals fails with a precise move-level diff instead of a vague
end-to-end power delta.  Wall-times are ignored by construction.

Regenerating the baselines
--------------------------
After an *intentional* behaviour change (new ranking rule, gain-model
fix, ...), refresh the committed traces and review the diff like any
other source change::

    PYTHONPATH=src python -m pytest tests/telemetry/test_golden_traces.py \
        --update-golden

With ``--update-golden`` the tests write the freshly recorded traces to
``tests/telemetry/golden/<name>.trace.json`` and pass; without it they
compare and fail on any deterministic-field divergence.  Never update a
baseline to silence a diff you cannot explain.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.library.standard import standard_library
from repro.netlist.blif import parse_blif_file
from repro.telemetry import Tracer, compare_traces, read_trace, write_trace
from repro.transform.optimizer import OptimizeOptions, power_optimize

REPO_ROOT = Path(__file__).resolve().parents[2]
BLIF_DIR = REPO_ROOT / "benchmarks" / "blif"
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

GOLDEN_BENCHMARKS = ("rd53", "misex1", "sqrt8", "ttt2")

#: Absolute float tolerance for the comparison: zero would also hold on
#: the machine that generated the baseline, but identical logic can land
#: on slightly different doubles across NumPy builds; 1e-9 keeps the
#: baselines portable while still failing on any real drift in the gain
#: arithmetic (real regressions move gains by far more than 1e-9).
TOLERANCE = 1e-9


def golden_options(tracer: Tracer) -> OptimizeOptions:
    """The pinned configuration every baseline was recorded with."""
    return OptimizeOptions(num_patterns=512, trace=tracer)


def record_trace(name: str):
    netlist = parse_blif_file(BLIF_DIR / f"{name}.blif", standard_library())
    tracer = Tracer()
    result = power_optimize(netlist, golden_options(tracer))
    return result.trace


@pytest.mark.parametrize("name", GOLDEN_BENCHMARKS)
def test_golden_trace(name, request):
    golden_path = GOLDEN_DIR / f"{name}.trace.json"
    fresh = record_trace(name)
    assert fresh.moves, f"{name} must apply at least one move"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        write_trace(fresh, golden_path)
        return
    assert golden_path.exists(), (
        f"missing baseline {golden_path}; regenerate with "
        "pytest tests/telemetry/test_golden_traces.py --update-golden"
    )
    golden = read_trace(golden_path)
    diff = compare_traces(golden, fresh, tolerance=TOLERANCE)
    if not diff.ok:
        pytest.fail(
            f"optimizer behaviour drifted from the committed {name} "
            f"baseline:\n{diff.format()}\n"
            "If the change is intentional, regenerate with "
            "--update-golden and review the new trace.",
            pytrace=False,
        )


def test_golden_baselines_are_schema_valid():
    """Committed baselines must parse and validate standalone."""
    for name in GOLDEN_BENCHMARKS:
        trace = read_trace(GOLDEN_DIR / f"{name}.trace.json")
        assert trace.netlist == name
        assert trace.moves and trace.rounds
