"""Eqs. 3–5 consistency, checked move-by-move against the trace.

For every applied move in a traced run, the recorded decomposition must
satisfy ``PG_A + PG_B + PG_C == ΔP`` where ``ΔP`` is the total power
re-measured *from scratch* before/after the move: the move sequence is
replayed on a fresh copy of the input netlist, and around each step a
brand-new :class:`SimulationProbability` engine (same patterns, same
seed) rebuilds the estimator state with no incremental shortcuts.  Any
error in the gain arithmetic, the dying-region prediction, or the
incremental probability updates the optimizer ran on breaks the
equality.
"""

from __future__ import annotations

import pytest

from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.telemetry import Tracer
from repro.transform.optimizer import OptimizeOptions, power_optimize
from repro.transform.substitution import apply_substitution

NUM_PATTERNS = 256
SEED = 2024


def _fresh_total(netlist) -> float:
    """Total power from a from-scratch estimator (no incremental state)."""
    engine = SimulationProbability(
        netlist, num_patterns=NUM_PATTERNS, seed=SEED
    )
    return PowerEstimator(netlist, engine).total()


CASES = [
    ("random", 3),
    ("random", 11),
    ("reconvergent", 4),
    ("high_fanout", 5),
    ("high_fanout", 12),
    ("inverter_chain", 7),
]


@pytest.mark.parametrize("shape, seed", CASES)
def test_pg_decomposition_equals_from_scratch_power_delta(lib, shape, seed):
    config = GeneratorConfig(seed=seed, shape=shape)
    netlist = random_mapped_netlist(config, lib)
    replica = netlist.copy(netlist.name + "_replay")

    tracer = Tracer()
    result = power_optimize(
        netlist,
        OptimizeOptions(
            num_patterns=NUM_PATTERNS, seed=SEED, max_rounds=4, trace=tracer
        ),
    )
    trace = result.trace
    assert len(trace.moves) == len(result.moves)

    for record, move in zip(result.moves, trace.moves):
        assert move.candidate_id == record.substitution.candidate_id()
        before = _fresh_total(replica)
        apply_substitution(replica, record.substitution)
        after = _fresh_total(replica)
        measured_from_scratch = before - after
        pg_sum = move.pg_a + move.pg_b + move.pg_c
        assert pg_sum == pytest.approx(move.predicted_total, abs=1e-12)
        assert pg_sum == pytest.approx(measured_from_scratch, abs=1e-9), (
            f"{move.candidate_id}: trace records "
            f"PG_A+PG_B+PG_C = {pg_sum}, from-scratch delta = "
            f"{measured_from_scratch}"
        )
        # The trace's own measured field must agree with the replay too,
        # pinning the optimizer's incremental estimator update.
        assert move.measured_power_gain == pytest.approx(
            measured_from_scratch, abs=1e-9
        )


def test_ttt2_trace_pg_sums_to_re_estimated_delta(lib, tmp_path):
    """The acceptance run: a traced ttt2 optimization writes a
    schema-valid trace whose every PG decomposition sums to the
    independently re-estimated power delta."""
    from repro.bench.suite import build_benchmark
    from repro.telemetry import read_trace, write_trace

    netlist = build_benchmark("ttt2", lib)
    replica = netlist.copy("ttt2_replay")
    tracer = Tracer()
    result = power_optimize(
        netlist,
        OptimizeOptions(num_patterns=NUM_PATTERNS, seed=SEED, trace=tracer),
    )
    path = tmp_path / "ttt2.trace.json"
    write_trace(result.trace, path)
    trace = read_trace(path)  # validates the schema on the way in
    assert trace.moves, "ttt2 must apply moves"

    for record, move in zip(result.moves, trace.moves):
        before = _fresh_total(replica)
        apply_substitution(replica, record.substitution)
        after = _fresh_total(replica)
        assert move.pg_a + move.pg_b + move.pg_c == pytest.approx(
            before - after, abs=1e-9
        ), move.candidate_id


def test_at_least_one_case_applies_moves(lib):
    """Guard: the property must actually quantify over moves."""
    total = 0
    for shape, seed in CASES:
        netlist = random_mapped_netlist(
            GeneratorConfig(seed=seed, shape=shape), lib
        )
        tracer = Tracer()
        power_optimize(
            netlist,
            OptimizeOptions(
                num_patterns=NUM_PATTERNS, seed=SEED, max_rounds=4,
                trace=tracer,
            ),
        )
        total += len(tracer.trace.moves)
    assert total >= 10
