"""Tests for the composite-cell mining tool (tools/propose_cells.py)."""

import importlib.util
from pathlib import Path

import pytest

from repro.library.genlib import parse_genlib
from repro.library.npn import negate_inputs
from repro.library.standard import standard_library

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def tool():
    spec = importlib.util.spec_from_file_location(
        "propose_cells", REPO / "tools" / "propose_cells.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_trace(tmp_path, name, candidate_ids):
    from repro.telemetry import MoveTrace, RunTrace, write_trace

    trace = RunTrace(
        netlist=name,
        moves=[
            MoveTrace(
                index=i + 1,
                round=1,
                candidate_id=cid,
                kind=cid.split("|")[0],
                pg_a=0.1,
                pg_b=0.0,
                pg_c=0.0,
                predicted_total=0.1,
                measured_power_gain=0.1,
                measured_area_delta=0.0,
                circuit_delay_after=1.0,
                atpg_status="permissible",
                atpg_stage="sat",
                atpg_backtracks=0,
            )
            for i, cid in enumerate(candidate_ids)
        ],
    )
    path = tmp_path / f"{name}.trace.json"
    write_trace(trace, path)
    return path


class TestParseCandidateId:
    def test_roundtrip_fields(self, tool):
        decoded = tool.parse_candidate_id("OS3|t|s1|~|b.1|s2||and2|")
        assert decoded["kind"] == "OS3"
        assert decoded["invert1"] and not decoded["invert2"]
        assert decoded["new_cell"] == "and2"
        assert decoded["constant"] is None

    def test_malformed_rejected(self, tool):
        with pytest.raises(ValueError):
            tool.parse_candidate_id("OS2|only|four|fields")


class TestMining:
    def test_counts_inserted_cells_and_inversions(self, tool, tmp_path):
        trace = _write_trace(
            tmp_path,
            "synthetic",
            [
                "OS3|t|a|~|x.0|b||and2|",
                "OS3|u|c|~|y.1|d||and2|",
                "IS3|v|e||z.0|f|~|or2|",
            ],
        )
        inserted, composites = tool.mine_traces(
            [trace], None, standard_library()
        )
        assert inserted[("OS3", "and2", True, False)] == 2
        assert inserted[("IS3", "or2", False, True)] == 1
        assert composites[("and2", 0b01)] == 2
        assert composites[("or2", 0b10)] == 1

    def test_is2_sink_resolution_needs_blif(self, tool, tmp_path):
        # Without a matching BLIF the IS2 structure cannot be resolved.
        trace = _write_trace(
            tmp_path, "nowhere", ["IS2|t|s|~|sink.0||||"]
        )
        _, composites = tool.mine_traces([trace], None, standard_library())
        assert not composites

    def test_golden_traces_resolve_against_benchmarks(self, tool):
        inserted, composites = tool.mine_traces(
            tool.GOLDEN_TRACES, tool.DEFAULT_BLIF_DIR, standard_library()
        )
        assert sum(inserted.values()) > 0
        # The committed traces carry IS2 inverter insertions that resolve
        # to concrete sink pins of the benchmark netlists.
        assert sum(composites.values()) > 0


class TestProposeStanza:
    def test_emits_parseable_stanza(self, tool):
        lib = standard_library()
        stanza = tool.propose_stanza(lib, "nor2", 0b01, count=3)
        assert stanza is not None
        parsed = parse_genlib(stanza)
        (name,) = parsed.cells
        assert name == "nor2_na"
        cell = parsed[name]
        # !(!a + b) == a * !b
        assert cell.function == negate_inputs(lib["nor2"].function, 0b01)
        assert cell.area > lib["nor2"].area
        assert cell.area < lib["nor2"].area + lib.inverter().area

    def test_existing_function_not_proposed(self, tool):
        lib = standard_library()
        # NAND with both inputs inverted is OR — already in the library.
        assert tool.propose_stanza(lib, "nand2", 0b11, count=5) is None

    def test_unknown_cell_skipped(self, tool):
        assert (
            tool.propose_stanza(standard_library(), "nope", 0b01, count=9)
            is None
        )


class TestMain:
    def test_golden_default_run_writes_output(self, tool, tmp_path, capsys):
        out = tmp_path / "proposed.genlib"
        assert tool.main(["-o", str(out)]) == 0
        text = capsys.readouterr().out
        assert "mined" in text
        assert out.exists()
        proposed = parse_genlib(out.read_text())
        assert len(proposed) > 0

    def test_min_count_filter(self, tool, tmp_path, capsys):
        trace = _write_trace(
            tmp_path, "solo", ["OS3|t|a|~|x.0|b||nor2|"]
        )
        assert tool.main([str(trace), "--min-count", "2"]) == 0
        assert "no composite-cell candidates" in capsys.readouterr().out
