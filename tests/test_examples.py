"""Smoke tests: the fast example scripts must run end to end.

(The slower sweep examples — delay_tradeoff, synthesis_flow,
glitch_analysis — are exercised implicitly through the APIs they use; their
full runs live outside the unit-test budget.)
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=None):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "functional equivalence after optimization: equal" in out

    def test_paper_figure2(self, capsys):
        run_example("paper_figure2.py")
        out = capsys.readouterr().out
        assert "IS2(a@d.0 <- e)" in out
        assert "permissible" in out
        assert "UNSAT" in out

    def test_atpg_playground(self, capsys):
        run_example("atpg_playground.py")
        out = capsys.readouterr().out
        assert "REDUNDANT" in out
