"""Parity of the packed flat-array kernels against per-gate evaluation.

Every kernel in :mod:`repro.kernels.packed` must be bit-identical to the
reference dict-walk (one :func:`evaluate_cell` per gate in topological
order) — that is the contract that lets the hot paths swap in the packed
view without perturbing a single move of the optimizer.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.packed import PackedCircuit, packed_view
from repro.library.standard import standard_library
from repro.netlist.simulate import evaluate_cell, random_patterns
from repro.netlist.traverse import topological_order
from tests.conftest import make_random_netlist

LIB = standard_library()
NWORDS = 4


def reference_values(netlist, patterns, nwords):
    """The per-gate dict-walk simulation the kernels must reproduce."""
    values = {}
    for gate in topological_order(netlist):
        if gate.is_input:
            values[gate.name] = np.asarray(patterns[gate.name], dtype=np.uint64)
        else:
            values[gate.name] = evaluate_cell(
                gate.cell, [values[f.name] for f in gate.fanins], nwords
            )
    return values


def build(seed, num_gates=20):
    netlist = make_random_netlist(LIB, 5, num_gates, 3, seed=seed)
    patterns = random_patterns(
        netlist.input_names, NWORDS * 64, seed=seed + 1
    )
    return netlist, patterns


class TestSimulateParity:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_dict_walk(self, seed):
        netlist, patterns = build(seed)
        packed = PackedCircuit(netlist)
        matrix = packed.simulate(patterns, NWORDS)
        expected = reference_values(netlist, patterns, NWORDS)
        for i, name in enumerate(packed.names):
            assert np.array_equal(matrix[i], expected[name]), name

    def test_inputs_copied_into_rows(self):
        netlist, patterns = build(3)
        packed = PackedCircuit(netlist)
        matrix = packed.simulate(patterns, NWORDS)
        for i in packed.input_idx:
            assert np.array_equal(matrix[i], patterns[packed.names[i]])


class TestOverlayParity:
    """propagate_overlay == full resimulation with the stem pinned."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), pick=st.integers(0, 10**6))
    def test_forced_complement(self, seed, pick):
        netlist, patterns = build(seed)
        packed = PackedCircuit(netlist)
        matrix = packed.simulate(patterns, NWORDS)
        logic = [
            i for i, g in enumerate(packed.order) if not g.is_input
        ]
        root = logic[pick % len(logic)]
        forced_word = ~matrix[root]
        overlay = packed.propagate_overlay(matrix, {root: forced_word})

        # Reference: dict walk with the root's value pinned.
        pinned = {}
        for gate in topological_order(netlist):
            i = packed.index[gate.name]
            if i == root:
                pinned[gate.name] = forced_word
            elif gate.is_input:
                pinned[gate.name] = np.asarray(
                    patterns[gate.name], dtype=np.uint64
                )
            else:
                pinned[gate.name] = evaluate_cell(
                    gate.cell,
                    [pinned[f.name] for f in gate.fanins],
                    NWORDS,
                )
        for i, name in enumerate(packed.names):
            composed = overlay.get(i, matrix[i])
            assert np.array_equal(composed, pinned[name]), name

    def test_empty_forced_is_empty(self):
        netlist, patterns = build(11)
        packed = PackedCircuit(netlist)
        matrix = packed.simulate(patterns, NWORDS)
        assert packed.propagate_overlay(matrix, {}) == {}

    def test_overlay_never_mutates_matrix(self):
        netlist, patterns = build(5)
        packed = PackedCircuit(netlist)
        matrix = packed.simulate(patterns, NWORDS)
        before = matrix.copy()
        logic = [i for i, g in enumerate(packed.order) if not g.is_input]
        packed.propagate_overlay(matrix, {logic[0]: ~matrix[logic[0]]})
        assert np.array_equal(matrix, before)


class TestFlipMaskParity:
    """flip_mask == OR over PO drivers of the pinned-resim XOR committed."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), pick=st.integers(0, 10**6))
    def test_matches_brute_force(self, seed, pick):
        netlist, patterns = build(seed)
        packed = PackedCircuit(netlist)
        matrix = packed.simulate(patterns, NWORDS)
        logic = [i for i, g in enumerate(packed.order) if not g.is_input]
        root = logic[pick % len(logic)]
        mask = packed.flip_mask(matrix, root, NWORDS)

        pinned = {}
        for gate in topological_order(netlist):
            i = packed.index[gate.name]
            if i == root:
                pinned[gate.name] = ~matrix[root]
            elif gate.is_input:
                pinned[gate.name] = np.asarray(
                    patterns[gate.name], dtype=np.uint64
                )
            else:
                pinned[gate.name] = evaluate_cell(
                    gate.cell,
                    [pinned[f.name] for f in gate.fanins],
                    NWORDS,
                )
        expected = np.zeros(NWORDS, dtype=np.uint64)
        for driver in {g.name for g in netlist.outputs.values()}:
            expected |= pinned[driver] ^ matrix[packed.index[driver]]
        assert np.array_equal(mask, expected)


class TestPackedViewCoherence:
    def test_view_is_shared(self):
        netlist, _ = build(7)
        assert packed_view(netlist) is packed_view(netlist)

    def test_rebuilt_after_structural_edit(self):
        netlist, _ = build(9)
        view = packed_view(netlist)
        # Every structural edit drops the cached topological order, which
        # keys the packed view's validity.
        netlist._invalidate()
        fresh = packed_view(netlist)
        assert fresh is not view
        assert fresh.names == view.names
