"""Word-width validation and popcount backend agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.kernels.words import (
    ALL_ONES,
    WORD_BITS,
    WORD_DTYPE,
    _popcount_bigint,
    _popcount_lut,
    popcount,
    popcount_lastaxis,
    validate_num_patterns,
)

words = st.lists(
    st.integers(0, 2**WORD_BITS - 1), min_size=0, max_size=12
).map(lambda xs: np.asarray(xs, dtype=WORD_DTYPE))


class TestValidateNumPatterns:
    def test_word_counts(self):
        assert validate_num_patterns(WORD_BITS) == 1
        assert validate_num_patterns(8 * WORD_BITS) == 8

    @pytest.mark.parametrize("bad", [0, -WORD_BITS, 1, WORD_BITS - 1, WORD_BITS + 1])
    def test_rejects_non_multiples(self, bad):
        with pytest.raises(NetlistError, match=str(WORD_BITS)):
            validate_num_patterns(bad)

    def test_context_in_message(self):
        with pytest.raises(NetlistError, match="num_patterns"):
            validate_num_patterns(7, context="num_patterns")

    def test_constants_consistent(self):
        assert np.dtype(WORD_DTYPE).itemsize * 8 == WORD_BITS
        assert int(ALL_ONES) == 2**WORD_BITS - 1


class TestPopcountBackends:
    """Every backend totals the same bits, always."""

    @settings(max_examples=60, deadline=None)
    @given(arr=words)
    def test_backends_agree(self, arr):
        expected = sum(int(w).bit_count() for w in arr)
        assert popcount(arr) == expected
        assert _popcount_lut(arr) == expected
        assert _popcount_bigint(arr) == expected

    def test_extremes(self):
        zeros = np.zeros(5, dtype=WORD_DTYPE)
        ones = np.full(5, ALL_ONES, dtype=WORD_DTYPE)
        assert popcount(zeros) == 0
        assert popcount(ones) == 5 * WORD_BITS

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_lastaxis_matches_scalar(self, data):
        a = data.draw(st.integers(1, 4))
        b = data.draw(st.integers(1, 4))
        w = data.draw(st.integers(1, 3))
        flat = data.draw(
            st.lists(
                st.integers(0, 2**WORD_BITS - 1),
                min_size=a * b * w,
                max_size=a * b * w,
            )
        )
        arr = np.asarray(flat, dtype=WORD_DTYPE).reshape(a, b, w)
        per_entry = popcount_lastaxis(arr)
        assert per_entry.shape == (a, b)
        for i in range(a):
            for j in range(b):
                assert per_entry[i, j] == popcount(arr[i, j])
