"""The four builtin analyses on hand-built circuits with known answers."""

import numpy as np

from repro.analysis import AnalysisSuite
from repro.analysis.constants import ConstantAnalysis
from repro.analysis.engine import DataflowEngine
from repro.analysis.lattice import TOP
from repro.analysis.observability import pin_blocked, po_reachable
from repro.analysis.phase import PhaseAnalysis
from repro.netlist.build import NetlistBuilder


class TestConstantAnalysis:
    def test_tie_cells_and_propagation(self, lib):
        b = NetlistBuilder(lib, "const")
        x = b.input("x")
        zero = b.cell_gate("zero", name="k0")
        g = b.and_(x, zero, name="g")     # AND(x, 0) == 0
        h = b.xor_(g, zero, name="h")     # XOR(0, 0) == 0
        b.output("z", h)
        values = DataflowEngine(b.build()).run(ConstantAnalysis())
        assert values["k0"] == 0
        assert values["g"] == 0
        assert values["h"] == 0
        assert values["x"] is TOP

    def test_reconvergent_constant_needs_the_sat_tier(self, lib):
        # OR(x, INV(x)) == 1, invisible to the dataflow pass (both
        # fanins are TOP) — the suite's SAT tier must close the gap.
        b = NetlistBuilder(lib, "reconv")
        x = b.input("x")
        inv = b.not_(x, name="nx")
        g = b.or_(x, inv, name="g")
        b.output("z", g)
        netlist = b.build()
        dataflow = DataflowEngine(netlist).run(ConstantAnalysis())
        assert dataflow["g"] is TOP
        facts = AnalysisSuite(netlist).facts
        assert facts.constant_values() == {"g": 1}
        [fact] = facts.constants
        assert fact.proof == "sat"

    def test_no_sat_means_no_second_tier(self, lib):
        b = NetlistBuilder(lib, "reconv")
        x = b.input("x")
        g = b.or_(x, b.not_(x, name="nx"), name="g")
        b.output("z", g)
        facts = AnalysisSuite(b.build(), use_sat=False).facts
        # The signature nominates g, but without the oracle no proof
        # exists and no fact may be emitted.
        assert facts.constant_values() == {}


class TestPhaseAnalysis:
    def test_chain_roots_parity_and_depth(self, lib):
        b = NetlistBuilder(lib, "phase")
        x = b.input("x")
        g = b.and_(x, x, name="g")
        n1 = b.not_(g, name="n1")
        n2 = b.not_(n1, name="n2")
        n3 = b.cell_gate("buf1", n2, name="n3")
        b.output("z", n3)
        values = DataflowEngine(b.build()).run(PhaseAnalysis())
        assert values["g"] == ("g", 0, 0)      # non-chain gate: own root
        assert values["n1"] == ("g", 1, 1)
        assert values["n2"] == ("g", 0, 2)     # double inversion cancels
        assert values["n3"] == ("g", 0, 3)     # buffer keeps parity

    def test_suite_emits_only_chain_facts(self, lib):
        b = NetlistBuilder(lib, "phase")
        x = b.input("x")
        n1 = b.not_(x, name="n1")
        b.output("z", b.and_(n1, x, name="g"))
        facts = AnalysisSuite(b.build()).facts
        assert facts.phase_roots() == {"n1": ("x", 1)}


class TestObservability:
    def test_pin_blocked_by_controlling_constant(self, lib):
        and2 = lib["and2"]
        # Pin 1 held at 0 makes the output 0 regardless of pin 0.
        assert pin_blocked(and2, 0, {1: 0})
        # Held at 1 the AND is transparent in pin 0.
        assert not pin_blocked(and2, 0, {1: 1})
        # No constants: every pin is live.
        assert not pin_blocked(and2, 0, {})

    def test_dead_cone_is_structural(self, lib):
        b = NetlistBuilder(lib, "dead")
        x = b.input("x")
        b.not_(x, name="dead1")
        b.output("z", b.and_(x, x, name="live"))
        netlist = b.build()
        assert po_reachable(netlist) == {"x", "live"}
        facts = AnalysisSuite(netlist).facts
        [fact] = facts.unobservables
        assert (fact.name, fact.reason, fact.proof) == (
            "dead1", "dead", "structural"
        )

    def test_blocked_cone_is_sat_confirmed(self, lib):
        # g is ANDed against a proven 0, so g never reaches the PO.
        b = NetlistBuilder(lib, "blocked")
        x, y = b.inputs("x", "y")
        zero = b.cell_gate("zero", name="k0")
        g = b.xor_(x, y, name="g")
        masked = b.and_(g, zero, name="masked")
        b.output("z", b.or_(masked, x, name="out"))
        facts = AnalysisSuite(b.build()).facts
        blocked = {
            fact.name: (fact.reason, fact.proof)
            for fact in facts.unobservables
        }
        assert blocked["g"] == ("blocked", "sat")

    def test_reconvergence_counterexample_is_not_promoted(self, lib):
        # The ALGORITHMS.md §18 counterexample: s = OR(g, INV(g)) is
        # constant 1, but flipping g rewrites s itself, so g must NOT
        # be called unobservable just because its sink is constant.
        b = NetlistBuilder(lib, "trap")
        x, y = b.inputs("x", "y")
        g = b.and_(x, y, name="g")
        s = b.or_(g, b.not_(g, name="ng"), name="s")
        # s is constant 1, and g also feeds the PO through s only.
        b.output("z", s)
        out = b.and_(g, x, name="keep")
        b.output("z2", out)
        facts = AnalysisSuite(b.build()).facts
        assert "g" not in facts.unobservable_names()


class TestEquivalence:
    def test_duplicate_and_complement_classes(self, lib):
        b = NetlistBuilder(lib, "equiv")
        x, y = b.inputs("x", "y")
        g1 = b.and_(x, y, name="g1")
        g2 = b.and_(x, y, name="g2")           # structural duplicate
        g3 = b.nand_(x, y, name="g3")          # complement cone
        b.output("z1", b.or_(g1, g2, name="o1"))
        b.output("z2", g3)
        facts = AnalysisSuite(b.build()).facts
        tokens = facts.equiv_tokens()
        assert tokens["g1"] == tokens["g2"] == ("g1", 0)
        assert tokens["g3"] == ("g1", 1)
        cls = facts.class_of("g2")
        assert cls.representative == "g1"
        assert cls.proofs["g2"] == "structural"
        assert cls.proofs["g3"] == "sat"

    def test_without_oracle_only_structural_merges(self, lib):
        b = NetlistBuilder(lib, "equiv")
        x, y = b.inputs("x", "y")
        g1 = b.and_(x, y, name="g1")
        g2 = b.and_(x, y, name="g2")
        g3 = b.nand_(x, y, name="g3")
        b.output("z1", b.or_(g1, g2, name="o1"))
        b.output("z2", g3)
        facts = AnalysisSuite(b.build(), use_sat=False).facts
        tokens = facts.equiv_tokens()
        assert tokens["g1"] == tokens["g2"]
        assert "g3" not in tokens  # signature alone is never trusted

    def test_tokens_are_pointwise_identical_signals(self, lib, figure2):
        suite = AnalysisSuite(figure2)
        facts = suite.facts
        sim_values = suite._sim.values
        ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        for name, (root, parity) in facts.equiv_tokens().items():
            expected = sim_values[root] ^ (ones if parity else np.uint64(0))
            assert (sim_values[name] == expected).all()
