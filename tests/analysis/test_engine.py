"""The fixed-point worklist solver: convergence, incrementality, guards."""

import pytest

from repro.analysis.constants import ConstantAnalysis
from repro.analysis.engine import DataflowAnalysis, DataflowEngine
from repro.analysis.lattice import BOTTOM, TOP, FlatLattice
from repro.analysis.observability import ObservabilityAnalysis
from repro.netlist.build import NetlistBuilder


class CountingConstants(ConstantAnalysis):
    """Constant propagation that tallies transfer evaluations."""

    def __init__(self):
        self.calls = 0

    def transfer(self, gate, values):
        self.calls += 1
        return super().transfer(gate, values)


def chain_netlist(lib, length=5):
    b = NetlistBuilder(lib, "chain")
    signal = b.input("x")
    for index in range(length):
        signal = b.not_(signal, name=f"n{index}")
    b.output("z", signal)
    return b.build()


class TestFullRun:
    def test_every_gate_gets_a_value(self, lib, figure2):
        values = DataflowEngine(figure2).run(ConstantAnalysis())
        assert set(values) == set(figure2.gates)
        assert all(v is not BOTTOM for v in values.values())

    def test_dag_converges_in_one_ordered_sweep(self, lib):
        # The level-prioritised heap visits each node exactly once on a
        # DAG: one transfer call per gate, no chaotic re-iteration.
        netlist = chain_netlist(lib, length=8)
        analysis = CountingConstants()
        DataflowEngine(netlist).run(analysis)
        assert analysis.calls == len(netlist.gates)

    def test_constants_flow_through_tie_cells(self, lib):
        b = NetlistBuilder(lib, "tied")
        x = b.input("x")
        one = b.cell_gate("one", name="k1")
        g = b.and_(x, one, name="g")       # AND(x, 1) = x: not constant
        h = b.or_(x, one, name="h")        # OR(x, 1) = 1: constant
        b.output("zg", g)
        b.output("zh", h)
        values = DataflowEngine(b.build()).run(ConstantAnalysis())
        assert values["k1"] == 1
        assert values["h"] == 1
        assert values["g"] is TOP

    def test_backward_analysis_runs(self, lib, figure2):
        values = DataflowEngine(figure2).run(ObservabilityAnalysis({}))
        # Everything in figure2 reaches a PO, so nothing is blocked.
        assert all(values[name] is True for name in figure2.gates)

    def test_unknown_direction_rejected(self, lib, figure2):
        class Sideways(DataflowAnalysis):
            direction = "sideways"
            lattice = FlatLattice()

        with pytest.raises(ValueError, match="direction"):
            DataflowEngine(figure2).run(Sideways())

    def test_widen_after_validated(self, figure2):
        with pytest.raises(ValueError, match="widen_after"):
            DataflowEngine(figure2, widen_after=0)


class TestIncremental:
    def swap_cell(self, netlist, name, cell_name):
        gate = netlist.gates[name]
        gate.cell = netlist.library[cell_name]
        netlist._invalidate()

    def test_incremental_equals_fresh_after_cell_swap(self, lib):
        netlist = chain_netlist(lib, length=6)
        engine = DataflowEngine(netlist)
        analysis = ConstantAnalysis()
        values = engine.run(analysis)
        # Turn the middle inverter into a buffer: downstream parity of
        # every value flips, upstream is untouched.
        self.swap_cell(netlist, "n3", "buf1")
        engine.update_after_edit(analysis, values, ["n3"])
        fresh = DataflowEngine(netlist).run(ConstantAnalysis())
        assert values == fresh

    def test_incremental_repairs_only_the_fanout_region(self, lib):
        netlist = chain_netlist(lib, length=6)
        engine = DataflowEngine(netlist)
        analysis = CountingConstants()
        values = engine.run(analysis)
        analysis.calls = 0
        self.swap_cell(netlist, "n3", "buf1")
        engine.update_after_edit(analysis, values, ["n3"])
        # n3 plus its transitive fanout (n4, n5) — never x/n0/n1/n2.
        assert analysis.calls <= 3

    def test_removed_gates_are_dropped_from_values(self, lib):
        b = NetlistBuilder(lib, "dead")
        x = b.input("x")
        b.not_(x, name="dead1")  # no fanout, no PO: legally removable
        b.output("z", b.and_(x, x, name="live"))
        netlist = b.build()
        engine = DataflowEngine(netlist)
        analysis = ConstantAnalysis()
        values = engine.run(analysis)
        netlist.remove_gate(netlist.gates["dead1"])
        engine.update_after_edit(analysis, values, ["dead1"])
        assert "dead1" not in values
        assert set(values) == set(netlist.gates)

    def test_changed_set_reported(self, lib):
        netlist = chain_netlist(lib, length=4)
        engine = DataflowEngine(netlist)

        class PinZero(DataflowAnalysis):
            """Everything is 0 — until the edit flips the verdict."""

            direction = "forward"
            lattice = FlatLattice()

            def __init__(self):
                self.flipped = set()

            def transfer(self, gate, values):
                return 1 if gate.name in self.flipped else 0

        analysis = PinZero()
        values = engine.run(analysis)
        analysis.flipped = {"n2"}
        changed = engine.update_after_edit(analysis, values, ["n2"])
        assert "n2" in changed
        assert values["n2"] == 1

    def test_levels_cache_follows_structural_state(self, lib):
        netlist = chain_netlist(lib, length=3)
        engine = DataflowEngine(netlist)
        first = engine.levels()
        assert engine.levels() is first  # cached per structural state
        b_gate = netlist.gates["n2"]
        b_gate.cell = netlist.library["buf1"]
        netlist._invalidate()
        assert engine.levels() is not first
