"""Lattice laws the dataflow engine's convergence argument rests on."""

import itertools

import pytest

from repro.analysis.lattice import (
    BOTTOM,
    TOP,
    FlatLattice,
    Lattice,
    TernaryLattice,
)

#: The whole flat-lattice carrier over {0, 1} — small enough to check
#: every law exhaustively instead of sampling.
CARRIER = (BOTTOM, 0, 1, TOP)


class TestFlatLattice:
    lattice = FlatLattice()

    def test_bottom_is_identity_of_join(self):
        for value in CARRIER:
            assert self.lattice.join(BOTTOM, value) == value
            assert self.lattice.join(value, BOTTOM) == value

    def test_top_absorbs(self):
        for value in CARRIER:
            assert self.lattice.join(TOP, value) is TOP
            assert self.lattice.join(value, TOP) is TOP

    def test_join_idempotent_and_commutative(self):
        for a, b in itertools.product(CARRIER, repeat=2):
            assert self.lattice.join(a, a) == a
            assert self.lattice.join(a, b) == self.lattice.join(b, a)

    def test_join_associative(self):
        for a, b, c in itertools.product(CARRIER, repeat=3):
            left = self.lattice.join(self.lattice.join(a, b), c)
            right = self.lattice.join(a, self.lattice.join(b, c))
            assert left == right

    def test_distinct_constants_join_to_top(self):
        assert self.lattice.join(0, 1) is TOP

    def test_join_is_least_upper_bound(self):
        # a <= a|b, b <= a|b, and a|b <= any other upper bound.
        for a, b in itertools.product(CARRIER, repeat=2):
            joined = self.lattice.join(a, b)
            assert self.lattice.leq(a, joined)
            assert self.lattice.leq(b, joined)
            for upper in CARRIER:
                if self.lattice.leq(a, upper) and self.lattice.leq(b, upper):
                    assert self.lattice.leq(joined, upper)

    def test_leq_partial_order(self):
        for a, b in itertools.product(CARRIER, repeat=2):
            if self.lattice.leq(a, b) and self.lattice.leq(b, a):
                assert a == b
        for a in CARRIER:
            assert self.lattice.leq(a, a)

    def test_widen_stable_value_is_kept(self):
        assert self.lattice.widen(1, 1) == 1

    def test_widen_oscillation_jumps_to_top(self):
        # The engine's termination backstop: any disagreement widens
        # straight to "no information" rather than iterating.
        assert self.lattice.widen(0, 1) is TOP
        assert self.lattice.widen(1, 0) is TOP
        assert self.lattice.widen(BOTTOM, 0) is TOP

    def test_join_all(self):
        assert self.lattice.join_all([]) is BOTTOM
        assert self.lattice.join_all([0, 0]) == 0
        assert self.lattice.join_all([0, 1]) is TOP


class TestTernaryLattice:
    def test_from_bool(self):
        lattice = TernaryLattice()
        assert lattice.from_bool(True) == 1
        assert lattice.from_bool(False) == 0

    def test_is_flat(self):
        assert isinstance(TernaryLattice(), FlatLattice)


class TestBaseLattice:
    def test_base_operations_abstract(self):
        base = Lattice()
        assert base.bottom() is BOTTOM
        assert base.top() is TOP
        assert base.is_bottom(BOTTOM)
        assert not base.is_bottom(0)
        with pytest.raises(NotImplementedError):
            base.join(0, 1)

    def test_sentinels_have_readable_repr(self):
        assert repr(BOTTOM) == "BOTTOM"
        assert repr(TOP) == "TOP"
