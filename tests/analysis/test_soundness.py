"""Every emitted fact survives independent re-derivation.

Two layers: the bundled golden circuits (the acceptance gate ``powder
analyze --check-soundness`` also runs in CI), and a Hypothesis sweep
over :mod:`repro.fuzz` generated netlists — all small enough that the
oracle is exhaustive simulation, so a pass here is a complete proof for
that circuit, not a sampled one.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AnalysisSuite
from repro.analysis.soundness import EXHAUSTIVE_LIMIT, check_soundness
from repro.fuzz.generator import SHAPES, GeneratorConfig, random_mapped_netlist
from repro.library.standard import standard_library
from repro.netlist.blif import parse_blif_file

BLIF_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "blif"
GOLDEN = ("rd53", "misex1", "sqrt8", "ttt2")


@pytest.mark.parametrize("name", GOLDEN)
def test_golden_circuits_have_zero_unsound_facts(name, lib):
    netlist = parse_blif_file(BLIF_DIR / f"{name}.blif", lib)
    facts = AnalysisSuite(netlist).facts
    report = check_soundness(netlist, facts)
    assert report.unsound == []
    assert report.unverified == 0
    assert report.confirmed == report.checked
    assert report.checked >= facts.total() - len(facts.equivalences)


def test_ttt2_exercises_the_sat_oracle_path(lib):
    # 24 inputs: past the exhaustive bound, so the report must come
    # from the fresh-SAT method (the code path CI relies on).
    netlist = parse_blif_file(BLIF_DIR / "ttt2.blif", lib)
    assert len(netlist.input_names) > EXHAUSTIVE_LIMIT
    facts = AnalysisSuite(netlist).facts
    report = check_soundness(netlist, facts)
    assert report.method == "sat"
    assert report.ok


def test_small_circuits_use_the_exhaustive_method(lib, figure2):
    report = check_soundness(figure2, AnalysisSuite(figure2).facts)
    assert report.method == "exhaustive"
    assert report.ok


def test_report_detects_an_injected_lie(lib, figure2):
    facts = AnalysisSuite(figure2).facts
    from repro.analysis.facts import ConstantFact

    facts.constants.append(ConstantFact("e", 1, "forged"))
    report = check_soundness(figure2, facts)
    assert not report.ok
    assert any("e" in text for text in report.unsound)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    shape=st.sampled_from(SHAPES),
)
def test_generated_netlists_have_zero_unsound_facts(seed, shape):
    config = GeneratorConfig(
        seed=seed, shape=shape, min_inputs=3, max_inputs=7,
        min_gates=6, max_gates=20,
    )
    netlist = random_mapped_netlist(config, standard_library())
    facts = AnalysisSuite(netlist, num_patterns=128).facts
    report = check_soundness(netlist, facts)
    assert report.method == "exhaustive"  # <= 7 inputs: complete check
    assert report.unsound == []
    assert report.unverified == 0


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_generated_netlists_survive_an_incremental_edit(seed):
    # Facts refreshed through the dirty protocol carry the same
    # soundness contract as a from-scratch run.
    config = GeneratorConfig(
        seed=seed, shape="inverter_chain", min_inputs=3, max_inputs=6,
        min_gates=8, max_gates=18,
    )
    netlist = random_mapped_netlist(config, standard_library())
    suite = AnalysisSuite(netlist, num_patterns=128)
    suite.facts
    # Deterministic edit: turn the first inverter into a buffer.
    target = next(
        (g for g in netlist.logic_gates() if g.cell.is_inverter()), None
    )
    if target is None:
        return
    target.cell = netlist.library["buf1"]
    netlist._invalidate()
    suite.update_after_edit([target.name])
    report = check_soundness(netlist, suite.facts)
    assert report.unsound == []
