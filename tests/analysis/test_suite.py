"""The AnalysisSuite facade: caching, the dirty protocol, incrementality."""

from repro.analysis import AnalysisSuite
from repro.netlist.build import NetlistBuilder


def chain(lib, length=6):
    b = NetlistBuilder(lib, "chain")
    signal = b.input("x")
    for index in range(length):
        signal = b.not_(signal, name=f"n{index}")
    b.output("z", signal)
    return b.build()


class TestCaching:
    def test_facts_cached_per_structural_state(self, lib, figure2):
        suite = AnalysisSuite(figure2)
        first = suite.facts
        assert suite.facts is first
        assert suite.counters == {"full": 1, "incremental": 0}

    def test_structural_edit_without_dirty_report_forces_full(
        self, lib, figure2
    ):
        suite = AnalysisSuite(figure2)
        suite.facts
        figure2._invalidate()  # structure changed, nothing reported dirty
        suite.facts
        assert suite.counters["full"] == 2

    def test_force_refresh(self, lib, figure2):
        suite = AnalysisSuite(figure2)
        first = suite.facts
        second = suite.refresh(force=True)
        assert second is not first
        assert suite.counters["full"] == 2


class TestIncrementalProtocol:
    def edit(self, netlist, name, cell_name):
        gate = netlist.gates[name]
        gate.cell = netlist.library[cell_name]
        netlist._invalidate()
        return [name]

    def test_dirty_report_takes_the_incremental_path(self, lib):
        netlist = chain(lib)
        suite = AnalysisSuite(netlist)
        suite.facts
        suite.update_after_edit(self.edit(netlist, "n3", "buf1"))
        suite.facts
        assert suite.counters == {"full": 1, "incremental": 1}

    def test_incremental_facts_equal_fresh_facts(self, lib):
        netlist = chain(lib)
        suite = AnalysisSuite(netlist)
        suite.facts
        suite.update_after_edit(self.edit(netlist, "n3", "buf1"))
        incremental = suite.facts.to_dict()
        fresh = AnalysisSuite(netlist).facts.to_dict()
        assert incremental == fresh

    def test_incremental_equals_fresh_with_constants_appearing(self, lib):
        # The edit introduces a proven constant (AND -> ZERO-feeding
        # shape), which must also re-transfer observability at sinks.
        b = NetlistBuilder(lib, "mix")
        x, y = b.inputs("x", "y")
        g = b.and_(x, y, name="g")
        h = b.or_(g, x, name="h")
        k = b.and_(h, y, name="k")
        b.output("z", k)
        netlist = b.build()
        suite = AnalysisSuite(netlist)
        before = suite.facts
        assert before.constant_values() == {}
        # nor2(x, x) == INV(x)... use xor_(x, x) == 0 instead: swap g's
        # cell to xnor2 so g = XNOR(x, y); then make it xor2 with equal
        # pins by rewiring pin 1 to x.
        gate = netlist.gates["g"]
        gate.cell = netlist.library["xor2"]
        old = gate.fanins[1]
        old.fanouts.remove((gate, 1))
        gate.fanins[1] = netlist.gates["x"]
        netlist.gates["x"].fanouts.append((gate, 1))
        netlist._invalidate()
        suite.update_after_edit(["g", "y", "x"])
        incremental = suite.facts.to_dict()
        fresh = AnalysisSuite(netlist).facts.to_dict()
        assert incremental == fresh
        assert suite.facts.constant_values()["g"] == 0

    def test_dead_dirty_names_are_tolerated(self, lib):
        netlist = chain(lib)
        suite = AnalysisSuite(netlist)
        suite.facts
        suite.update_after_edit(["n3", "long-gone"])
        self.edit(netlist, "n3", "buf1")
        suite.update_after_edit(["n3"])
        assert suite.facts.to_dict() == AnalysisSuite(netlist).facts.to_dict()


class TestFactsSurface:
    def test_counts_and_total(self, lib, figure2):
        facts = AnalysisSuite(figure2).facts
        counts = facts.counts()
        assert set(counts) == {
            "constants", "unobservables", "phases", "equivalences"
        }
        assert facts.total() == sum(counts.values())

    def test_to_dict_round_trips_through_format_text(self, lib, figure2):
        facts = AnalysisSuite(figure2).facts
        payload = facts.to_dict()
        assert payload["netlist"] == "fig2"
        assert isinstance(facts.format_text(), str)
