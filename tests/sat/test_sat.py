"""Tests for the CNF encoder and DPLL solver, including cross-validation
of the SAT oracle against the PODEM/BDD equivalence oracle."""

import pytest

from repro.equiv.checker import check_equivalent
from repro.sat.cnf import CnfFormula, miter_cnf, tseitin_encode
from repro.sat.dpll import SAT, UNKNOWN, UNSAT, DpllSolver, solve
from repro.sat.oracle import sat_check_equivalent
from tests.conftest import make_figure2, make_random_netlist


class TestDpllBasics:
    def test_empty_formula_sat(self):
        assert solve(CnfFormula()).status == SAT

    def test_single_unit(self):
        f = CnfFormula()
        v = f.new_var("x")
        f.assume(v)
        result = solve(f)
        assert result.status == SAT
        assert result.model[v] is True

    def test_contradictory_units(self):
        f = CnfFormula()
        v = f.new_var()
        f.assume(v)
        f.assume(-v)
        assert solve(f).status == UNSAT

    def test_empty_clause_unsat(self):
        f = CnfFormula()
        f.new_var()
        f.add_clause()
        assert solve(f).status == UNSAT

    def test_tautological_clause_ignored(self):
        f = CnfFormula()
        v = f.new_var()
        f.add_clause(v, -v)
        assert solve(f).status == SAT

    def test_simple_implication_chain(self):
        f = CnfFormula()
        a, b, c = f.new_var(), f.new_var(), f.new_var()
        f.assume(a)
        f.add_clause(-a, b)
        f.add_clause(-b, c)
        result = solve(f)
        assert result.status == SAT
        assert result.model[c] is True

    def test_pigeonhole_2_into_1(self):
        # p1 and p2 each in hole 1, not both: UNSAT.
        f = CnfFormula()
        p1, p2 = f.new_var(), f.new_var()
        f.assume(p1)
        f.assume(p2)
        f.add_clause(-p1, -p2)
        assert solve(f).status == UNSAT

    def test_model_satisfies_formula(self):
        f = CnfFormula()
        vs = [f.new_var() for _ in range(6)]
        f.add_clause(vs[0], vs[1])
        f.add_clause(-vs[0], vs[2])
        f.add_clause(-vs[2], -vs[3], vs[4])
        f.add_clause(vs[3], vs[5])
        f.add_clause(-vs[4], -vs[5])
        result = solve(f)
        assert result.status == SAT
        assert f.evaluate({v: result.model.get(v, False) for v in range(1, 7)})

    def test_unsat_xor_chain(self):
        # x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 is unsatisfiable.
        f = CnfFormula()
        x = [None] + [f.new_var() for _ in range(3)]

        def xor_one(a, b):
            f.add_clause(x[a], x[b])
            f.add_clause(-x[a], -x[b])

        xor_one(1, 2)
        xor_one(2, 3)
        xor_one(1, 3)
        assert solve(f).status == UNSAT

    def test_conflict_limit_gives_unknown(self):
        # A hard-ish random instance with a tiny budget.
        import random

        rng = random.Random(5)
        f = CnfFormula()
        vs = [f.new_var() for _ in range(30)]
        for _ in range(120):
            clause = rng.sample(vs, 3)
            f.add_clause(*[v if rng.random() < 0.5 else -v for v in clause])
        result = DpllSolver(f, conflict_limit=1).solve()
        assert result.status in (SAT, UNSAT, UNKNOWN)


class TestTseitin:
    def test_consistency_only_models(self, figure2):
        formula = tseitin_encode(figure2)
        # Any model must respect the circuit: check via brute force for all
        # 8 input vectors by assuming the inputs and solving.
        for m in range(8):
            f = tseitin_encode(figure2)
            values = {}
            for i, name in enumerate(figure2.input_names):
                bit = (m >> i) & 1
                values[name] = bit
                f.assume(f.var_of[name] if bit else -f.var_of[name])
            result = solve(f)
            assert result.status == SAT
            # Compare against direct evaluation.
            from repro.netlist.traverse import topological_order

            ref = dict(values)
            for gate in topological_order(figure2):
                if gate.is_input:
                    continue
                ref[gate.name] = gate.cell.evaluate(
                    [ref[x.name] for x in gate.fanins]
                )
            for name, want in ref.items():
                got = result.model[f.var_of[name]]
                assert got == bool(want), (m, name)

    def test_tie_cells_encoded(self, builder, lib):
        tie = builder.netlist.add_gate(lib.constant(True), [], name="one")
        a = builder.input("a")
        g = builder.and_(a, tie, name="g")
        builder.output("o", g)
        nl = builder.build()
        f = tseitin_encode(nl)
        f.assume(f.var_of["a"])
        result = solve(f)
        assert result.status == SAT
        assert result.model[f.var_of["g"]] is True


class TestSatOracle:
    def test_equal_copies(self, lib, figure2):
        result = sat_check_equivalent(figure2, make_figure2(lib))
        assert result.equal

    def test_detects_difference(self, lib, figure2, builder):
        a, bb, c = builder.inputs("a", "b", "c")
        e = builder.and_(a, bb, name="e")
        f = builder.or_(a, c, name="f")
        builder.output("f_out", f)
        builder.output("e_out", e)
        other = builder.build()
        result = sat_check_equivalent(figure2, other)
        assert result.status == "not-equal"
        assert result.counterexample is not None

    @pytest.mark.parametrize("seed", [301, 302, 303, 304, 305])
    def test_cross_validation_equal(self, lib, seed):
        nl = make_random_netlist(lib, 6, 16, 3, seed=seed)
        copy = nl.copy("c")
        podem_verdict = check_equivalent(nl, copy)
        sat_verdict = sat_check_equivalent(nl, copy)
        assert podem_verdict.equal and sat_verdict.equal

    @pytest.mark.parametrize("seed", [311, 312, 313])
    def test_cross_validation_mutated(self, lib, seed):
        nl = make_random_netlist(lib, 6, 16, 3, seed=seed)
        mutated = nl.copy("m")
        po, driver = next(iter(mutated.outputs.items()))
        inv = mutated.add_gate(mutated.library.inverter(), [driver], name="mut")
        mutated.set_output(po, inv)
        podem_verdict = check_equivalent(nl, mutated)
        sat_verdict = sat_check_equivalent(nl, mutated)
        assert podem_verdict.status == "not-equal"
        assert sat_verdict.status == "not-equal"
        # Each oracle's counterexample satisfies the CNF-level difference.
        cex = sat_verdict.counterexample
        from tests.equiv.test_checker import evaluate_outputs

        assert evaluate_outputs(nl, cex) != evaluate_outputs(mutated, cex)

    def test_cross_validation_after_powder(self, lib):
        from repro.bench.suite import build_benchmark
        from repro.transform.optimizer import OptimizeOptions, power_optimize

        nl = build_benchmark("sqrt8", lib)
        ref = nl.copy("ref")
        power_optimize(
            nl, OptimizeOptions(num_patterns=1024, max_rounds=2, max_moves=8)
        )
        assert sat_check_equivalent(ref, nl).equal

    def test_mismatched_interfaces(self, figure2, builder):
        builder.input("z")
        g = builder.not_(builder.netlist.gate("z"))
        builder.output("f_out", g)
        builder.output("e_out", g)
        import pytest as _pytest
        from repro.errors import NetlistError

        with _pytest.raises(NetlistError):
            sat_check_equivalent(figure2, builder.build())


class TestTripleOracleAgreement:
    """PODEM, BDD and SAT must agree on candidate permissibility."""

    @pytest.mark.parametrize("seed", [321, 322])
    def test_candidates_triple_checked(self, lib, seed):
        from repro.power.estimate import PowerEstimator
        from repro.power.probability import SimulationProbability
        from repro.transform.candidates import (
            CandidateOptions,
            generate_candidates,
        )
        from repro.transform.substitution import apply_to_copy
        from repro.equiv.checker import _bdd_verdict

        nl = make_random_netlist(lib, 6, 14, 3, seed=seed)
        est = PowerEstimator(nl, SimulationProbability(nl, exhaustive=True))
        candidates = generate_candidates(
            est, CandidateOptions(max_per_target=2, max_total=12)
        )
        for candidate in candidates[:8]:
            trial, _ = apply_to_copy(nl, candidate.substitution)
            podem = check_equivalent(nl, trial).equal
            sat = sat_check_equivalent(nl, trial).equal
            bdd = _bdd_verdict(nl, trial, 200_000).equal
            assert podem == sat == bdd, str(candidate.substitution)


class TestDpllBruteForce:
    """Property: DPLL verdicts match brute-force enumeration."""

    @staticmethod
    def brute_force(formula):
        n = formula.num_vars
        for m in range(1 << n):
            assignment = {v: bool((m >> (v - 1)) & 1) for v in range(1, n + 1)}
            if formula.evaluate(assignment):
                return True
        return False

    def test_random_formulas(self):
        import random

        from hypothesis import given, settings
        from hypothesis import strategies as st

        @st.composite
        def formulas(draw):
            num_vars = draw(st.integers(1, 8))
            f = CnfFormula()
            vs = [f.new_var() for _ in range(num_vars)]
            num_clauses = draw(st.integers(0, 20))
            for _ in range(num_clauses):
                size = draw(st.integers(1, 3))
                lits = []
                for _ in range(size):
                    v = draw(st.sampled_from(vs))
                    lits.append(v if draw(st.booleans()) else -v)
                f.add_clause(*lits)
            return f

        @settings(max_examples=80, deadline=None)
        @given(formulas())
        def check(formula):
            result = solve(formula)
            expected = self.brute_force(formula)
            assert (result.status == SAT) == expected
            if result.status == SAT:
                full = {
                    v: result.model.get(v, False)
                    for v in range(1, formula.num_vars + 1)
                }
                assert formula.evaluate(full)

        check()
