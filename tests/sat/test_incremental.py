"""Unit and differential tests for the incremental CDCL solver."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CnfFormula
from repro.sat.dpll import SAT, UNKNOWN, UNSAT
from repro.sat.dpll import solve as dpll_solve
from repro.sat.incremental import IncrementalSolver


def formula_of(num_vars, clauses):
    f = CnfFormula()
    for _ in range(num_vars):
        f.new_var()
    for clause in clauses:
        f.add_clause(*clause)
    return f


class TestBasics:
    def test_empty_database_is_sat(self):
        assert IncrementalSolver().solve().status == SAT

    def test_unit_propagation(self):
        solver = IncrementalSolver(formula_of(2, [(1,), (-1, 2)]))
        result = solver.solve()
        assert result.status == SAT
        assert result.model[1] is True
        assert result.model[2] is True

    def test_direct_contradiction(self):
        solver = IncrementalSolver(formula_of(1, [(1,), (-1,)]))
        assert solver.solve().status == UNSAT

    def test_unsat_stays_unsat(self):
        solver = IncrementalSolver(formula_of(1, [(1,), (-1,)]))
        assert solver.solve().status == UNSAT
        assert solver.solve().status == UNSAT

    def test_tautology_ignored(self):
        solver = IncrementalSolver()
        solver.ensure_vars(2)
        solver.add_clause(1, -1)
        solver.add_clause(2)
        result = solver.solve()
        assert result.status == SAT
        assert result.model[2] is True

    def test_duplicate_literals_deduped(self):
        solver = IncrementalSolver()
        solver.ensure_vars(2)
        solver.add_clause(1, 1, 1)
        result = solver.solve()
        assert result.status == SAT
        assert result.model[1] is True

    def test_model_satisfies_every_clause(self):
        clauses = [(1, 2), (-1, 3), (-2, -3), (2, 3)]
        solver = IncrementalSolver(formula_of(3, clauses))
        result = solver.solve()
        assert result.status == SAT
        for clause in clauses:
            assert any(
                result.model[abs(l)] is (l > 0) for l in clause
            ), clause


class TestIncremental:
    def test_clauses_added_between_solves(self):
        solver = IncrementalSolver(formula_of(2, [(1, 2)]))
        assert solver.solve().status == SAT
        solver.add_clause(-1)
        assert solver.solve().status == SAT
        solver.add_clause(-2)
        assert solver.solve().status == UNSAT

    def test_assumptions_do_not_persist(self):
        solver = IncrementalSolver(formula_of(2, [(1, 2)]))
        result = solver.solve([-1])
        assert result.status == SAT
        assert result.model[2] is True
        # UNSAT under assumptions leaves the database usable.
        assert solver.solve([-1, -2]).status == UNSAT
        assert solver.solve().status == SAT

    def test_activation_literal_pattern(self):
        # The triage usage: one goal clause per query, gated by an
        # assumption literal so retired goals never constrain later ones.
        solver = IncrementalSolver(formula_of(4, [(1, 2), (-1, 3)]))
        act1 = 5
        solver.ensure_vars(5)
        solver.add_clause(-act1, -2)
        solver.add_clause(-act1, -3)
        assert solver.solve([act1]).status == UNSAT
        act2 = 6
        solver.ensure_vars(6)
        solver.add_clause(-act2, 4)
        result = solver.solve([act2])
        assert result.status == SAT
        assert result.model[4] is True

    def test_conflict_limit_returns_unknown(self):
        # Pigeonhole PHP(6, 5): small enough to build, hard enough that a
        # one-conflict budget cannot finish it.
        pigeons, holes = 6, 5
        var = lambda p, h: p * holes + h + 1
        clauses = []
        for p in range(pigeons):
            clauses.append(tuple(var(p, h) for h in range(holes)))
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append((-var(p1, h), -var(p2, h)))
        solver = IncrementalSolver(formula_of(pigeons * holes, clauses))
        assert solver.solve(conflict_limit=1).status == UNKNOWN
        # The same database still finishes under a real budget.
        assert solver.solve(conflict_limit=100_000).status == UNSAT

    def test_conflict_counts_are_deterministic(self):
        def run():
            solver = IncrementalSolver(
                formula_of(4, [(1, 2), (-1, 3), (-2, -3), (-3, 4), (-4, -1)])
            )
            result = solver.solve()
            return result.status, result.conflicts, result.decisions

        assert run() == run()


class TestDifferentialVsDpll:
    """Status agreement with the single-shot reference solver."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_random_3sat(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 10)
        num_clauses = rng.randint(1, int(num_vars * 4.5))
        clauses = []
        for _ in range(num_clauses):
            size = rng.randint(1, 3)
            vs = rng.sample(range(1, num_vars + 1), min(size, num_vars))
            clauses.append(tuple(v if rng.random() < 0.5 else -v for v in vs))
        formula = formula_of(num_vars, clauses)
        expected = dpll_solve(formula).status
        result = IncrementalSolver(formula).solve()
        assert result.status == expected
        if result.status == SAT:
            assert formula.evaluate(
                {v: result.model.get(v, False) for v in range(1, num_vars + 1)}
            )
