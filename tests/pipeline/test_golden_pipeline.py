"""Pipeline-identity regression: explicit pipelines replay the golden traces.

The committed baselines under ``tests/telemetry/golden/`` were recorded
through :func:`repro.transform.optimizer.power_optimize`.  Since the
pass-pipeline refactor that function is a thin wrapper over the default
pipeline, so an *explicitly* spelled pipeline (spec string, fresh
context, :class:`~repro.pipeline.PassManager`) must reproduce every
baseline bit-for-bit — same moves, same PG_A/PG_B/PG_C gains, same
counters.  This is the CI ``pipeline-identity`` gate.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.library.standard import standard_library
from repro.netlist.blif import parse_blif_file
from repro.pipeline import run_pipeline
from repro.telemetry import Tracer, compare_traces, read_trace
from repro.transform.optimizer import OptimizeOptions

REPO_ROOT = Path(__file__).resolve().parents[2]
BLIF_DIR = REPO_ROOT / "benchmarks" / "blif"
GOLDEN_DIR = REPO_ROOT / "tests" / "telemetry" / "golden"

#: Must match tests/telemetry/test_golden_traces.py.
GOLDEN_BENCHMARKS = ("rd53", "misex1", "sqrt8", "ttt2")
TOLERANCE = 1e-9


@pytest.mark.parametrize("name", GOLDEN_BENCHMARKS)
def test_explicit_pipeline_replays_golden_trace(name):
    netlist = parse_blif_file(BLIF_DIR / f"{name}.blif", standard_library())
    tracer = Tracer()
    outcome = run_pipeline(
        netlist, "powder", OptimizeOptions(num_patterns=512, trace=tracer)
    )
    result = outcome.optimize_result
    assert result is not None and result.trace is not None
    golden = read_trace(GOLDEN_DIR / f"{name}.trace.json")
    diff = compare_traces(golden, result.trace, tolerance=TOLERANCE)
    assert diff.ok, (
        f"explicit pipeline drifted from the {name} baseline:\n"
        f"{diff.format()}"
    )


def test_spec_with_sweep_matches_moves():
    """A richer spec around the powder stage must not perturb the engine.

    misex1 has no structurally duplicate gates, so the leading ``dedupe``
    is a no-op and the powder stage must replay the baseline moves.
    """
    name = "misex1"
    netlist = parse_blif_file(BLIF_DIR / f"{name}.blif", standard_library())
    tracer = Tracer()
    outcome = run_pipeline(
        netlist,
        "dedupe; powder; sweep",
        OptimizeOptions(num_patterns=512, trace=tracer),
    )
    golden = read_trace(GOLDEN_DIR / f"{name}.trace.json")
    fresh = outcome.optimize_result.trace
    golden_moves = [(m.candidate_id, m.kind) for m in golden.moves]
    fresh_moves = [(m.candidate_id, m.kind) for m in fresh.moves]
    assert fresh_moves == golden_moves
