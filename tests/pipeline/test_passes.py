"""Behaviour of the builtin passes over a shared context."""

from __future__ import annotations

import pytest

from repro.equiv.checker import check_equivalent
from repro.errors import LintError, PipelineError
from repro.pipeline import (
    ALL_ANALYSES,
    OptimizationContext,
    PassManager,
)
from repro.pipeline.passes import (
    DedupePass,
    LintPass,
    PowderPass,
    ResynthPass,
    SanitizePass,
    SweepPass,
    available_passes,
    make_pass,
)
from repro.transform.optimizer import OptimizeOptions, PowerOptimizer
from tests.conftest import make_random_netlist


def duplicate_netlist(builder):
    """g2 duplicates g1 exactly (same cell, same fanin order)."""
    a, b = builder.inputs("a", "b")
    g1 = builder.and_(a, b, name="g1")
    g2 = builder.and_(a, b, name="g2")
    builder.output("o1", builder.not_(g1, name="n1"))
    builder.output("o2", builder.not_(g2, name="n2"))
    return builder.build()


class TestDedupePass:
    def test_merges_and_records_pairs(self, builder):
        netlist = duplicate_netlist(builder)
        ctx = OptimizationContext(netlist, OptimizeOptions(num_patterns=256))
        result = DedupePass().run(ctx)
        assert result.changed
        assert result.details["merged"] >= 1
        assert ctx.dedupe_pairs and len(ctx.dedupe_pairs) == result.details["merged"]

    def test_engine_skips_redundant_dedupe(self, builder):
        netlist = duplicate_netlist(builder)
        ctx = OptimizationContext(
            netlist, OptimizeOptions(num_patterns=256, dedupe_first=True)
        )
        PassManager().run(ctx, [DedupePass()])
        pairs = list(ctx.dedupe_pairs)
        gates_after_pass = ctx.netlist.num_gates()
        engine = PowerOptimizer(context=ctx)
        # dedupe_first is satisfied by the pass's sweep: the engine adopts
        # its pairs instead of re-running the merge.
        assert engine.deduped == pairs
        assert ctx.netlist.num_gates() == gates_after_pass


class TestSweepPass:
    def test_removes_dead_gates(self, builder):
        a, b = builder.inputs("a", "b")
        live = builder.and_(a, b, name="live")
        builder.or_(a, b, name="dead")  # feeds nothing
        builder.output("o", live)
        netlist = builder.build()
        ctx = OptimizationContext(netlist)
        result = SweepPass().run(ctx)
        assert result.changed and result.details["removed"] >= 1
        assert "dead" not in {g.name for g in netlist.logic_gates()}


class TestPowderPass:
    def test_unknown_option_rejected_at_construction(self):
        with pytest.raises(PipelineError, match="unknown powder option"):
            PowderPass(turbo=True)

    def test_analysis_affecting_override_rebuilds(self, lib):
        netlist = make_random_netlist(lib, 5, 14, 2, seed=75)
        ctx = OptimizationContext(netlist, OptimizeOptions(num_patterns=256))
        ctx.get("estimator")
        PowderPass(num_patterns=128).configure(ctx)
        assert ctx.options.num_patterns == 128
        assert not ctx.is_built("probability")
        assert not ctx.is_built("estimator")

    def test_behavioural_override_keeps_analyses(self, lib):
        netlist = make_random_netlist(lib, 5, 14, 2, seed=75)
        ctx = OptimizationContext(netlist, OptimizeOptions(num_patterns=256))
        ctx.get("estimator")
        PowderPass(repeat=3).configure(ctx)
        assert ctx.options.repeat == 3
        assert ctx.is_built("estimator")  # repeat doesn't change construction

    def test_runs_engine_over_context(self, lib):
        netlist = make_random_netlist(lib, 5, 16, 2, seed=76)
        ctx = OptimizationContext(
            netlist, OptimizeOptions(num_patterns=256, max_rounds=2)
        )
        stage = PowderPass()
        outcome = PassManager().run(ctx, [stage])
        result = outcome.passes[0]
        assert result.optimize_result is not None
        assert result.details["moves"] == len(result.optimize_result.moves)


class TestLintPass:
    def test_clean_netlist_passes(self, lib):
        netlist = make_random_netlist(lib, 5, 14, 2, seed=77)
        ctx = OptimizationContext(netlist)
        result = LintPass().run(ctx)
        assert not result.changed

    def test_structural_corruption_fails_gate(self, lib):
        netlist = make_random_netlist(lib, 5, 14, 2, seed=77)
        gate = next(g for g in netlist.logic_gates() if g.fanouts)
        gate.fanouts.append((gate.fanouts[0][0], 99))  # stale branch
        ctx = OptimizationContext(netlist)
        with pytest.raises(LintError, match="lint gate failed"):
            LintPass().run(ctx)

    def test_probabilities_parameter_adds_requirement(self):
        assert LintPass().requires == ()
        assert LintPass(probabilities=True).requires == ("probability",)


class TestSanitizePass:
    def test_checks_scale_with_built_analyses(self, lib):
        netlist = make_random_netlist(lib, 5, 14, 2, seed=78)
        ctx = OptimizationContext(netlist, OptimizeOptions(num_patterns=256))
        assert SanitizePass().run(ctx).details["checked"] == "lint"
        ctx.get("estimator")
        assert (
            SanitizePass().run(ctx).details["checked"] == "lint,probability"
        )
        ctx.get("timing")
        ctx.get("workspace")
        assert (
            SanitizePass().run(ctx).details["checked"]
            == "lint,probability,timing,workspace"
        )

    def test_corrupted_probability_detected(self, lib):
        netlist = make_random_netlist(lib, 5, 14, 2, seed=78)
        ctx = OptimizationContext(netlist, OptimizeOptions(num_patterns=256))
        engine = ctx.estimator.engine
        name = next(g.name for g in netlist.logic_gates())
        engine._probs[name] = 0.123456789
        with pytest.raises(LintError, match="sanitize pass"):
            SanitizePass().run(ctx)

    def test_corrupted_timing_detected(self, lib):
        netlist = make_random_netlist(lib, 5, 14, 2, seed=78)
        ctx = OptimizationContext(netlist, OptimizeOptions(num_patterns=256))
        name = next(g.name for g in netlist.logic_gates())
        ctx.timing.arrival[name] += 1.0
        with pytest.raises(LintError, match="sanitize pass"):
            SanitizePass().run(ctx)


class TestResynthPass:
    def test_mode_validated(self):
        with pytest.raises(PipelineError, match="unknown resynth mode"):
            ResynthPass(mode="fast")

    def test_remap_preserves_function_and_invalidates(self, lib):
        netlist = make_random_netlist(lib, 5, 16, 2, seed=79)
        reference = netlist.copy("ref")
        ctx = OptimizationContext(netlist, OptimizeOptions(num_patterns=256))
        ctx.get("workspace")
        ctx.get("timing")
        PassManager().run(ctx, [ResynthPass(mode="area")])
        assert ctx.netlist is not netlist
        assert check_equivalent(reference, ctx.netlist).equal
        assert not any(ctx.is_built(name) for name in ALL_ANALYSES)
        assert ctx.dedupe_pairs is None


class TestRegistry:
    def test_catalog_covers_every_builtin(self):
        names = {entry.name for entry in available_passes()}
        assert names == {
            "dedupe",
            "powder",
            "window",
            "sweep",
            "lint",
            "sanitize",
            "resynth",
            "bdd_resynth",
        }
        for entry in available_passes():
            assert entry.description

    def test_make_pass_unknown_name(self):
        with pytest.raises(PipelineError, match="unknown pass"):
            make_pass("polish")
