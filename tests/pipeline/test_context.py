"""OptimizationContext: lazy builds, declared invalidation, rebuild counts."""

from __future__ import annotations

import pytest

from repro.errors import PipelineError
from repro.pipeline import ALL_ANALYSES, OptimizationContext
from repro.timing.analysis import TimingAnalysis
from repro.transform.optimizer import OptimizeOptions
from tests.conftest import make_random_netlist


@pytest.fixture
def ctx(lib):
    netlist = make_random_netlist(lib, 5, 14, 2, seed=71)
    return OptimizationContext(netlist, OptimizeOptions(num_patterns=256))


class TestLazyBuild:
    def test_nothing_built_up_front(self, ctx):
        assert not any(ctx.is_built(name) for name in ALL_ANALYSES)
        assert ctx.build_counts == {}

    def test_get_builds_prerequisites(self, ctx):
        estimator = ctx.get("estimator")
        assert estimator is ctx.estimator  # cached, not rebuilt
        assert ctx.is_built("probability")  # built as a prerequisite
        assert ctx.build_counts == {"probability": 1, "estimator": 1}

    def test_repeated_get_builds_once(self, ctx):
        for _ in range(3):
            ctx.get("workspace")
        assert ctx.build_counts == {
            "probability": 1,
            "estimator": 1,
            "workspace": 1,
        }

    def test_peek_never_builds(self, ctx):
        assert ctx.peek("timing") is None
        assert not ctx.is_built("timing")
        built = ctx.get("timing")
        assert ctx.peek("timing") is built

    def test_constraint_is_none_without_delay_options(self, ctx):
        assert ctx.get("constraint") is None
        assert ctx.is_built("constraint")  # "built and None" is a state

    def test_constraint_limit_reaches_timing(self, lib):
        netlist = make_random_netlist(lib, 5, 14, 2, seed=71)
        ctx = OptimizationContext(
            netlist, OptimizeOptions(delay_limit=99.0, num_patterns=256)
        )
        assert ctx.constraint.limit == 99.0
        assert ctx.timing._limit == 99.0


class TestInvalidation:
    def test_probability_cascade(self, ctx):
        ctx.get("workspace")
        ctx.get("timing")
        ctx.invalidate("probability")
        # probability -> estimator -> workspace all drop ...
        assert not ctx.is_built("probability")
        assert not ctx.is_built("estimator")
        assert not ctx.is_built("workspace")
        # ... while the timing chain is untouched.
        assert ctx.is_built("timing")
        assert ctx.is_built("constraint")

    def test_constraint_cascade(self, ctx):
        ctx.get("timing")
        ctx.get("estimator")
        ctx.invalidate("constraint")
        assert not ctx.is_built("constraint")
        assert not ctx.is_built("timing")
        assert ctx.is_built("estimator")

    def test_rebuilt_exactly_once_after_invalidation(self, ctx):
        ctx.get("workspace")
        ctx.invalidate("probability")
        ctx.get("workspace")
        ctx.get("estimator")
        ctx.get("probability")
        assert ctx.build_counts == {
            "probability": 2,
            "estimator": 2,
            "workspace": 2,
        }

    def test_invalidate_all(self, ctx):
        for name in ALL_ANALYSES:
            ctx.get(name)
        ctx.invalidate_all()
        assert not any(ctx.is_built(name) for name in ALL_ANALYSES)

    def test_put_installs_maintained_instance(self, ctx):
        fresh = TimingAnalysis(ctx.netlist)
        ctx.put("timing", fresh)
        assert ctx.get("timing") is fresh
        # put() does not count as a build.
        assert "timing" not in ctx.build_counts


class TestErrors:
    def test_get_unknown_analysis(self, ctx):
        with pytest.raises(PipelineError, match="unknown analysis 'sta'"):
            ctx.get("sta")

    def test_put_unknown_analysis(self, ctx):
        with pytest.raises(PipelineError, match="unknown analysis"):
            ctx.put("sta", object())

    def test_invalidate_unknown_analysis(self, ctx):
        with pytest.raises(PipelineError, match="unknown analysis"):
            ctx.invalidate("sta")
