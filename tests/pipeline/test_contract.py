"""The ``sanitize=True`` pass-contract checker.

Under sanitize the manager audits every pass against its own
declarations: analysis reads must be covered by ``requires`` (or
``maintains``), analysis writes/invalidations by ``invalidates`` (or
``maintains``), and any netlist mutation requires at least one declared
write.  Violations raise :class:`PipelineError` tagged ``[contract]``
naming the pass and the missing declaration; without sanitize the same
passes run unaudited.
"""

from __future__ import annotations

import pytest

from repro.pipeline import (
    OptimizationContext,
    Pass,
    PassManager,
    PassResult,
    PipelineError,
)
from repro.pipeline.passes import DedupePass, LintPass, PowderPass, SweepPass
from repro.transform.optimizer import OptimizeOptions
from tests.conftest import make_random_netlist


class BadReader(Pass):
    """Reads the estimator without declaring it."""

    name = "bad-reader"

    def run(self, ctx):
        ctx.get("estimator")
        return PassResult(self.name, changed=False)


class BadMutator(Pass):
    """Edits the netlist with no declared invalidates/maintains."""

    name = "bad-mutator"

    def run(self, ctx):
        ctx.netlist._invalidate()
        return PassResult(self.name, changed=True)


class BadInvalidator(Pass):
    """Invalidates an analysis it never declared."""

    name = "bad-invalidator"

    def run(self, ctx):
        ctx.invalidate("probability")
        return PassResult(self.name, changed=False)


class HonestReader(Pass):
    """Same read as BadReader, but declared."""

    name = "honest-reader"
    requires = ("estimator",)

    def run(self, ctx):
        ctx.get("estimator")
        return PassResult(self.name, changed=False)


class MaintainingMutator(Pass):
    """Edits the netlist but declares it maintains the analyses."""

    name = "maintaining-mutator"
    maintains = ("probability", "estimator")

    def run(self, ctx):
        ctx.netlist._invalidate()
        return PassResult(self.name, changed=True)


def fresh_context(lib, **options):
    netlist = make_random_netlist(lib, 5, 14, 2, seed=72)
    return OptimizationContext(
        netlist, OptimizeOptions(num_patterns=256, **options)
    )


class TestViolations:
    def test_undeclared_read_is_rejected(self, lib):
        ctx = fresh_context(lib, sanitize=True)
        with pytest.raises(PipelineError, match=r"\[contract\].*bad-reader"):
            PassManager().run(ctx, [BadReader()])

    def test_undeclared_mutation_is_rejected(self, lib):
        ctx = fresh_context(lib, sanitize=True)
        with pytest.raises(
            PipelineError, match=r"\[contract\].*bad-mutator.*edited"
        ):
            PassManager().run(ctx, [BadMutator()])

    def test_undeclared_invalidate_is_rejected(self, lib):
        ctx = fresh_context(lib, sanitize=True)
        with pytest.raises(
            PipelineError, match=r"\[contract\].*bad-invalidator"
        ):
            PassManager().run(ctx, [BadInvalidator()])

    def test_error_names_the_missing_declaration(self, lib):
        ctx = fresh_context(lib, sanitize=True)
        with pytest.raises(PipelineError, match="requires"):
            PassManager().run(ctx, [BadReader()])


class TestLegalUse:
    def test_declared_read_passes(self, lib):
        ctx = fresh_context(lib, sanitize=True)
        PassManager().run(ctx, [HonestReader()])

    def test_maintains_legalises_reads_and_writes(self, lib):
        ctx = fresh_context(lib, sanitize=True)
        PassManager().run(ctx, [MaintainingMutator()])

    def test_builder_internal_reads_are_exempt(self, lib):
        # Building the estimator pulls the probability model through
        # ctx.get internally; only the pass's own depth-0 calls are
        # audited, so HonestReader needs "estimator", not "probability".
        ctx = fresh_context(lib, sanitize=True)
        PassManager().run(ctx, [HonestReader()])
        assert ctx.is_built("probability")

    def test_real_pipeline_is_contract_clean(self, lib):
        ctx = fresh_context(lib, sanitize=True, max_moves=2)
        PassManager().run(
            ctx,
            [
                DedupePass(),
                PowderPass(),
                SweepPass(),
                LintPass(select="S001,S002", facts=True),
            ],
        )

    def test_contract_cleared_after_each_pass(self, lib):
        ctx = fresh_context(lib, sanitize=True)
        with pytest.raises(PipelineError):
            PassManager().run(ctx, [BadReader()])
        # The failed pass must not leave its contract installed.
        assert ctx._contract is None
        ctx.get("estimator")  # direct use outside a pass stays legal


class TestUnsanitized:
    def test_no_audit_without_sanitize(self, lib):
        ctx = fresh_context(lib)
        PassManager().run(
            ctx, [BadReader(), BadInvalidator(), BadMutator()]
        )
