"""PassManager scheduling: requires built, invalidates honored, telemetry."""

from __future__ import annotations

from repro.pipeline import (
    OptimizationContext,
    Pass,
    PassManager,
    PassResult,
    run_pipeline,
)
from repro.transform.optimizer import OptimizeOptions
from tests.conftest import make_random_netlist


class _Probe(Pass):
    """A scripted pass that records what the manager prepared for it."""

    def __init__(self, name, requires=(), invalidates=(), configure_hook=None):
        super().__init__()
        self.name = name
        self.requires = tuple(requires)
        self.invalidates = tuple(invalidates)
        self._configure_hook = configure_hook
        self.seen_built: dict[str, bool] = {}
        self.configured = False

    def configure(self, ctx):
        self.configured = True
        assert not self.seen_built, "configure must precede run"
        if self._configure_hook:
            self._configure_hook(ctx)

    def run(self, ctx):
        self.seen_built = {name: ctx.is_built(name) for name in self.requires}
        return PassResult(self.name, changed=False)


def fresh_context(lib, **options):
    netlist = make_random_netlist(lib, 5, 14, 2, seed=72)
    return OptimizationContext(
        netlist, OptimizeOptions(num_patterns=256, **options)
    )


class TestScheduling:
    def test_requires_built_before_run(self, lib):
        ctx = fresh_context(lib)
        probe = _Probe("probe", requires=("estimator", "timing"))
        PassManager().run(ctx, [probe])
        assert probe.configured
        assert probe.seen_built == {"estimator": True, "timing": True}

    def test_invalidates_applied_after_run(self, lib):
        ctx = fresh_context(lib)
        first = _Probe("first", requires=("workspace",), invalidates=("probability",))
        second = _Probe("second", requires=("timing",))
        PassManager().run(ctx, [first, second])
        # first's invalidation cascaded through estimator and workspace ...
        assert not ctx.is_built("probability")
        assert not ctx.is_built("estimator")
        assert not ctx.is_built("workspace")
        # ... but left the timing chain second relied on alone.
        assert ctx.is_built("timing")

    def test_rebuilt_exactly_once_across_passes(self, lib):
        ctx = fresh_context(lib)
        passes = [
            _Probe("a", requires=("estimator",), invalidates=("probability",)),
            _Probe("b", requires=("estimator",)),
            _Probe("c", requires=("estimator",)),
        ]
        PassManager().run(ctx, passes)
        # One initial build for "a", one rebuild for "b", none for "c".
        assert ctx.build_counts["estimator"] == 2
        assert ctx.build_counts["probability"] == 2

    def test_per_pass_timers_recorded(self, lib):
        ctx = fresh_context(lib)
        manager = PassManager()
        manager.run(ctx, [_Probe("alpha"), _Probe("beta")])
        timers = manager.metrics.timers()
        assert "pass.alpha" in timers and "pass.beta" in timers

    def test_configure_runs_before_requires_are_built(self, lib):
        ctx = fresh_context(lib)
        seen = {}

        def hook(context):
            seen["estimator_built"] = context.is_built("estimator")

        probe = _Probe("probe", requires=("estimator",), configure_hook=hook)
        PassManager().run(ctx, [probe])
        assert seen == {"estimator_built": False}


class TestPipelineResult:
    def test_run_pipeline_with_spec_string(self, lib):
        netlist = make_random_netlist(lib, 5, 16, 2, seed=73)
        outcome = run_pipeline(
            netlist,
            "dedupe; powder(repeat=5, max_rounds=2); sweep",
            OptimizeOptions(num_patterns=256),
        )
        assert [p.name for p in outcome.passes] == ["dedupe", "powder", "sweep"]
        assert outcome.netlist is netlist
        assert outcome.optimize_result is outcome.passes[1].optimize_result
        assert outcome.optimize_result is not None
        assert outcome.changed == any(p.changed for p in outcome.passes)
        summary = outcome.summary()
        for name in ("dedupe", "powder", "sweep", "total"):
            assert name in summary

    def test_optimize_result_none_without_powder(self, lib):
        netlist = make_random_netlist(lib, 5, 14, 2, seed=74)
        outcome = run_pipeline(netlist, "dedupe; sweep")
        assert outcome.optimize_result is None
