"""Pipeline-spec mini-language: parsing, round-trips, positioned errors."""

from __future__ import annotations

import pytest

from repro.errors import PipelineError
from repro.pipeline import (
    StageSpec,
    build_pipeline,
    format_pipeline_spec,
    format_stage,
    parse_pipeline_spec,
)
from repro.pipeline.passes import DedupePass, PowderPass, SweepPass


class TestParsing:
    def test_plain_stages(self):
        stages = parse_pipeline_spec("dedupe; powder; sweep")
        assert [s.name for s in stages] == ["dedupe", "powder", "sweep"]
        assert all(s.kwargs == {} for s in stages)

    def test_whitespace_and_trailing_semicolon(self):
        stages = parse_pipeline_spec("  dedupe ;\n powder ;  ")
        assert [s.name for s in stages] == ["dedupe", "powder"]

    def test_value_typing(self):
        (stage,) = parse_pipeline_spec(
            "powder(repeat=25, min_gain=1e-6, objective=power, "
            "incremental=false, max_moves=none, verbose=TRUE)"
        )
        assert stage.kwargs == {
            "repeat": 25,
            "min_gain": 1e-6,
            "objective": "power",
            "incremental": False,
            "max_moves": None,
            "verbose": True,
        }
        assert isinstance(stage.kwargs["repeat"], int)
        assert isinstance(stage.kwargs["min_gain"], float)

    def test_quoted_strings(self):
        (stage,) = parse_pipeline_spec(
            "lint(select=\"N001,N002\", ignore='P001')"
        )
        assert stage.kwargs == {"select": "N001,N002", "ignore": "P001"}

    def test_empty_parens(self):
        (stage,) = parse_pipeline_spec("sweep()")
        assert stage == StageSpec("sweep", {})


class TestRoundTrip:
    SPECS = [
        "dedupe; powder(repeat=25, objective=power); sweep",
        "powder(min_gain=1e-06, incremental=false, max_rounds=3)",
        "lint(fail_on=warning, select=\"N001,N002\")",
        "sweep",
    ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_parse_format_parse(self, spec):
        stages = parse_pipeline_spec(spec)
        assert parse_pipeline_spec(format_pipeline_spec(stages)) == stages

    def test_canonical_spelling(self):
        stages = parse_pipeline_spec(
            "dedupe ;powder( repeat = 25 ,objective=power )"
        )
        assert (
            format_pipeline_spec(stages)
            == "dedupe; powder(repeat=25, objective=power)"
        )

    def test_keyword_colliding_string_stays_quoted(self):
        # A *string* "true" must not reparse as the boolean.
        text = format_stage("lint", {"fail_on": "true"})
        assert text == 'lint(fail_on="true")'
        (stage,) = parse_pipeline_spec(text)
        assert stage.kwargs == {"fail_on": "true"}

    def test_pass_spec_round_trips_through_instances(self):
        passes = build_pipeline("dedupe; powder(repeat=5); sweep")
        spec = "; ".join(p.spec() for p in passes)
        assert spec == "dedupe; powder(repeat=5); sweep"


class TestErrors:
    @pytest.mark.parametrize(
        "spec,fragment,position",
        [
            ("", "empty pipeline spec", 0),
            ("   ", "empty pipeline spec", 0),
            ("powder(", "expected a parameter name", 7),
            ("powder(repeat)", "expected '=' after 'repeat'", 13),
            ("powder(repeat=25,)", "trailing comma", 17),
            ("powder(repeat=25 seed=1)", "expected ',' or ')'", 17),
            ("powder(repeat=1, repeat=2)", "duplicate parameter", 17),
            ("powder(seed='12)", "unterminated string", 12),
            ("powder(seed=1.2.3)", "invalid value '1.2.3'", 12),
            ("dedupe powder", "expected ';' between stages", 7),
            ("; dedupe", "expected a pass name", 0),
        ],
    )
    def test_malformed_specs_carry_positions(self, spec, fragment, position):
        with pytest.raises(PipelineError) as excinfo:
            parse_pipeline_spec(spec)
        assert fragment in str(excinfo.value)
        assert excinfo.value.position == position
        if position:
            assert f"column {position}" in str(excinfo.value)


class TestBuildPipeline:
    def test_instantiates_registered_passes(self):
        passes = build_pipeline("dedupe; powder(repeat=5); sweep")
        assert isinstance(passes[0], DedupePass)
        assert isinstance(passes[1], PowderPass)
        assert passes[1].params == {"repeat": 5}
        assert isinstance(passes[2], SweepPass)

    def test_unknown_pass_lists_registry(self):
        with pytest.raises(PipelineError, match="unknown pass 'polish'"):
            build_pipeline("dedupe; polish")

    def test_unknown_powder_option(self):
        with pytest.raises(PipelineError, match="unknown powder option"):
            build_pipeline("powder(turbo=true)")

    def test_rejected_parameters_name_the_signature(self):
        with pytest.raises(PipelineError, match="rejected its parameters"):
            build_pipeline("resynth(mode=power, extra=1)")

    def test_bad_resynth_mode(self):
        with pytest.raises(PipelineError, match="unknown resynth mode"):
            build_pipeline("resynth(mode=fast)")
