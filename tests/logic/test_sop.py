"""Tests for the cube/cover algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.logic.sop import Cover, Cube
from repro.logic.truthtable import TruthTable


def cubes(nvars=4):
    return st.builds(
        lambda care, values: Cube(nvars, care, values & care),
        st.integers(0, (1 << nvars) - 1),
        st.integers(0, (1 << nvars) - 1),
    )


def covers(nvars=4, max_cubes=5):
    return st.lists(cubes(nvars), max_size=max_cubes).map(
        lambda cs: Cover(nvars, cs)
    )


class TestCube:
    def test_from_string(self):
        c = Cube.from_string("1-0")
        assert c.literal(0) == 1
        assert c.literal(1) is None
        assert c.literal(2) == 0

    def test_from_string_bad(self):
        with pytest.raises(LogicError):
            Cube.from_string("1x0")

    def test_str_roundtrip(self):
        for text in ["10-", "---", "111", "0-1"]:
            assert str(Cube.from_string(text)) == text

    def test_values_must_be_subset(self):
        with pytest.raises(LogicError):
            Cube(2, 0b01, 0b10)

    def test_contains(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("1-0")
        assert big.contains(small)
        assert not small.contains(big)

    def test_contains_minterm(self):
        c = Cube.from_string("1-0")
        assert c.contains_minterm(0b001)
        assert not c.contains_minterm(0b101)

    def test_intersect_disjoint(self):
        assert Cube.from_string("1-").intersect(Cube.from_string("0-")) is None

    def test_intersect(self):
        inter = Cube.from_string("1-").intersect(Cube.from_string("-0"))
        assert str(inter) == "10"

    def test_distance(self):
        assert Cube.from_string("10").distance(Cube.from_string("01")) == 2

    def test_consensus(self):
        c = Cube.from_string("1-").consensus(Cube.from_string("01"))
        assert c is not None and str(c) == "-1"

    def test_consensus_distance_two_is_none(self):
        assert Cube.from_string("10").consensus(Cube.from_string("01")) is None

    def test_supercube(self):
        sc = Cube.from_string("10").supercube(Cube.from_string("11"))
        assert str(sc) == "1-"

    def test_cofactor(self):
        c = Cube.from_string("1-0")
        assert c.cofactor(0, 0) is None
        cf = c.cofactor(0, 1)
        assert str(cf) == "--0"

    def test_with_literal(self):
        c = Cube.universe(3).with_literal(1, 0)
        assert str(c) == "-0-"
        assert str(c.with_literal(1, None)) == "---"

    def test_to_truthtable(self):
        t = Cube.from_string("1-").to_truthtable()
        assert t == TruthTable.variable(0, 2)

    @given(cubes(), cubes())
    def test_intersect_commutes(self, a, b):
        x = a.intersect(b)
        y = b.intersect(a)
        assert (x is None) == (y is None)
        if x is not None:
            assert x == y

    @given(cubes(), cubes())
    def test_supercube_contains_both(self, a, b):
        sc = a.supercube(b)
        assert sc.contains(a) and sc.contains(b)


class TestCover:
    def test_from_strings(self):
        cover = Cover.from_strings(["1-", "01"])
        assert len(cover) == 2

    def test_evaluate(self):
        cover = Cover.from_strings(["1-", "-1"])  # a OR b
        assert cover.evaluate([0, 0]) == 0
        assert cover.evaluate([1, 0]) == 1

    def test_tautology_true(self):
        cover = Cover.from_strings(["1-", "0-"])
        assert cover.is_tautology()

    def test_tautology_false(self):
        assert not Cover.from_strings(["11"]).is_tautology()

    def test_tautology_empty(self):
        assert not Cover(2, []).is_tautology()

    def test_tautology_universe(self):
        assert Cover(2, [Cube.universe(2)]).is_tautology()

    def test_covers_cube(self):
        cover = Cover.from_strings(["1-", "-1"])
        assert cover.covers_cube(Cube.from_string("11"))
        assert not cover.covers_cube(Cube.from_string("0-"))

    def test_remove_contained(self):
        cover = Cover.from_strings(["1-", "11"])
        cover.remove_contained()
        assert [str(c) for c in cover.cubes] == ["1-"]

    def test_merge_distance_one(self):
        cover = Cover.from_strings(["10", "11"])
        assert cover.merge_distance_one()
        assert [str(c) for c in cover.cubes] == ["1-"]

    def test_from_truthtable_roundtrip(self):
        t = TruthTable(3, 0b01101001)
        assert Cover.from_truthtable(t).to_truthtable() == t

    @given(covers())
    @settings(max_examples=60)
    def test_complement_is_complement(self, cover):
        comp = cover.complement()
        assert comp.to_truthtable() == ~cover.to_truthtable()

    @given(covers())
    @settings(max_examples=60)
    def test_tautology_matches_truthtable(self, cover):
        expected = cover.to_truthtable().count_ones() == cover.to_truthtable().nrows
        assert cover.is_tautology() == expected

    @given(covers(), covers())
    @settings(max_examples=60)
    def test_covers_matches_truthtables(self, a, b):
        assert a.covers(b) == b.to_truthtable().implies(a.to_truthtable())

    @given(covers())
    @settings(max_examples=60)
    def test_remove_contained_preserves_function(self, cover):
        before = cover.to_truthtable()
        cover.remove_contained()
        assert cover.to_truthtable() == before

    @given(covers())
    @settings(max_examples=60)
    def test_merge_preserves_function(self, cover):
        before = cover.to_truthtable()
        while cover.merge_distance_one():
            pass
        assert cover.to_truthtable() == before

    def test_cofactor_width_mismatch(self):
        with pytest.raises(LogicError):
            Cover(2, [Cube.universe(3)])
