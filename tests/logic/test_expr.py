"""Tests for the genlib expression parser and AST."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.logic.expr import Expr, parse_expression
from repro.logic.truthtable import all_minterms


class TestParsing:
    def test_single_variable(self):
        e = parse_expression("a")
        assert e.kind == "var" and e.name == "a"

    def test_and_star(self):
        e = parse_expression("a*b")
        assert e.evaluate({"a": 1, "b": 1}) == 1
        assert e.evaluate({"a": 1, "b": 0}) == 0

    def test_and_juxtaposition(self):
        e = parse_expression("a b")
        assert e.evaluate({"a": 1, "b": 1}) == 1
        assert e.evaluate({"a": 0, "b": 1}) == 0

    def test_or_precedence(self):
        e = parse_expression("a+b*c")
        assert e.evaluate({"a": 1, "b": 0, "c": 0}) == 1
        assert e.evaluate({"a": 0, "b": 1, "c": 0}) == 0

    def test_prefix_not(self):
        e = parse_expression("!a")
        assert e.evaluate({"a": 0}) == 1

    def test_postfix_not(self):
        e = parse_expression("a'")
        assert e.evaluate({"a": 0}) == 1

    def test_double_postfix(self):
        e = parse_expression("a''")
        assert e.evaluate({"a": 1}) == 1

    def test_not_binds_tighter_than_and(self):
        e = parse_expression("!a*b")
        assert e.evaluate({"a": 0, "b": 1}) == 1

    def test_not_of_group(self):
        e = parse_expression("!(a*b)")
        assert e.evaluate({"a": 1, "b": 1}) == 0
        assert e.evaluate({"a": 0, "b": 1}) == 1

    def test_xor_precedence(self):
        # ^ binds looser than * but tighter than +
        e = parse_expression("a^b*c")
        assert e.evaluate({"a": 1, "b": 1, "c": 1}) == 0
        e2 = parse_expression("a+b^c")
        assert e2.evaluate({"a": 1, "b": 0, "c": 0}) == 1

    def test_constants(self):
        assert parse_expression("CONST0").evaluate({}) == 0
        assert parse_expression("CONST1").evaluate({}) == 1

    def test_nested_parens(self):
        e = parse_expression("((a+b))*((c))")
        assert e.evaluate({"a": 0, "b": 1, "c": 1}) == 1

    def test_bracket_identifiers(self):
        e = parse_expression("a[0]*a[1]")
        assert set(e.variables()) == {"a[0]", "a[1]"}

    def test_empty_raises(self):
        with pytest.raises(ParseError):
            parse_expression("   ")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_expression("(a+b")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("a+b)")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_expression("a%b")

    def test_unbound_variable(self):
        with pytest.raises(ParseError):
            parse_expression("a").evaluate({})


class TestTruthTables:
    def test_order_respected(self):
        e = parse_expression("a*!b")
        t = e.to_truthtable(["a", "b"])
        assert t.bits == 0b0010
        t2 = e.to_truthtable(["b", "a"])
        assert t2.bits == 0b0100

    def test_order_missing_variable(self):
        with pytest.raises(ParseError):
            parse_expression("a*b").to_truthtable(["a"])

    def test_xor_table(self):
        t = parse_expression("a^b").to_truthtable(["a", "b"])
        assert t.bits == 0b0110

    def test_const_table(self):
        t = parse_expression("CONST1").to_truthtable([])
        assert t.nvars == 0 and t.bits == 1


class TestPrinting:
    @pytest.mark.parametrize(
        "text",
        [
            "a*b+c",
            "!(a+b)*c",
            "a^b^c",
            "!(a*b+c*d)",
            "a*(b+c)+!d",
            "CONST0",
            "!a*!b",
        ],
    )
    def test_roundtrip_function(self, text):
        e = parse_expression(text)
        names = list(e.variables())
        reparsed = parse_expression(e.to_genlib())
        for minterm in all_minterms(len(names)):
            env = dict(zip(names, minterm))
            assert e.evaluate(env) == reparsed.evaluate(env)

    def test_str_matches_genlib(self):
        e = parse_expression("a*b+!c")
        assert str(e) == e.to_genlib()


@st.composite
def expressions(draw, depth=3):
    names = ["a", "b", "c", "d"]
    if depth == 0 or draw(st.booleans()):
        return Expr.var(draw(st.sampled_from(names)))
    kind = draw(st.sampled_from(["and", "or", "xor", "not"]))
    if kind == "not":
        return Expr.not_(draw(expressions(depth=depth - 1)))
    children = draw(
        st.lists(expressions(depth=depth - 1), min_size=2, max_size=3)
    )
    builder = {"and": Expr.and_, "or": Expr.or_, "xor": Expr.xor}[kind]
    return builder(*children)


class TestProperties:
    @given(expressions())
    def test_print_parse_roundtrip(self, expr):
        names = list(expr.variables())
        reparsed = parse_expression(expr.to_genlib())
        assert reparsed.to_truthtable(names) == expr.to_truthtable(names)

    @given(expressions())
    def test_variables_deterministic(self, expr):
        assert expr.variables() == expr.variables()
