"""Tests for the ROBDD package."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.logic.bdd import ONE, ZERO, BddManager, BddSizeError
from repro.logic.truthtable import TruthTable, all_minterms


def build_from_table(manager: BddManager, table: TruthTable) -> int:
    """Reference construction: OR of minterm cubes."""
    result = ZERO
    for m in range(table.nrows):
        if not table.value(m):
            continue
        cube = ONE
        for v in range(table.nvars):
            var = manager.variable(v)
            lit = var if (m >> v) & 1 else manager.apply_not(var)
            cube = manager.apply_and(cube, lit)
        result = manager.apply_or(result, cube)
    return result


class TestBasics:
    def test_terminals(self):
        m = BddManager(2)
        assert m.constant(False) == ZERO
        assert m.constant(True) == ONE

    def test_variable(self):
        m = BddManager(2)
        x = m.variable(0)
        assert m.evaluate(x, [1, 0]) == 1
        assert m.evaluate(x, [0, 1]) == 0

    def test_variable_out_of_range(self):
        with pytest.raises(LogicError):
            BddManager(1).variable(1)

    def test_canonicity(self):
        m = BddManager(2)
        a, b = m.variable(0), m.variable(1)
        f1 = m.apply_and(a, b)
        f2 = m.apply_and(b, a)
        assert f1 == f2

    def test_reduction(self):
        m = BddManager(2)
        a = m.variable(0)
        # a OR !a = 1, must reduce to the terminal.
        assert m.apply_or(a, m.apply_not(a)) == ONE

    def test_ite(self):
        m = BddManager(3)
        f = m.apply_ite(m.variable(0), m.variable(1), m.variable(2))
        assert m.evaluate(f, [1, 1, 0]) == 1
        assert m.evaluate(f, [0, 1, 0]) == 0
        assert m.evaluate(f, [0, 0, 1]) == 1

    def test_node_limit(self):
        m = BddManager(8, node_limit=10)
        with pytest.raises(BddSizeError):
            f = ONE
            for i in range(8):
                f = m.apply_and(f, m.apply_xor(m.variable(i), m.constant(False)))
                # XOR chains force node creation quickly.
                f = m.apply_xor(f, m.variable((i + 1) % 8))


@st.composite
def small_tables(draw, nvars=3):
    bits = draw(st.integers(0, (1 << (1 << nvars)) - 1))
    return TruthTable(nvars, bits)


class TestAgainstTruthTables:
    @given(small_tables(), small_tables())
    @settings(max_examples=40)
    def test_apply_ops_match(self, ta, tb):
        m = BddManager(3)
        fa = build_from_table(m, ta)
        fb = build_from_table(m, tb)
        for op, ref in [
            (m.apply_and, ta & tb),
            (m.apply_or, ta | tb),
            (m.apply_xor, ta ^ tb),
        ]:
            node = op(fa, fb)
            for minterm, inputs in enumerate(all_minterms(3)):
                assert m.evaluate(node, inputs) == ref.value(minterm)

    @given(small_tables())
    @settings(max_examples=40)
    def test_not_matches(self, t):
        m = BddManager(3)
        f = build_from_table(m, t)
        g = m.apply_not(f)
        for minterm, inputs in enumerate(all_minterms(3)):
            assert m.evaluate(g, inputs) == 1 - t.value(minterm)

    @given(small_tables())
    @settings(max_examples=40)
    def test_count_minterms(self, t):
        m = BddManager(3)
        f = build_from_table(m, t)
        assert m.count_minterms(f) == t.count_ones()

    @given(small_tables())
    @settings(max_examples=40)
    def test_probability_uniform(self, t):
        m = BddManager(3)
        f = build_from_table(m, t)
        assert m.probability(f, [0.5] * 3) == pytest.approx(
            t.count_ones() / 8
        )

    @given(small_tables())
    @settings(max_examples=30)
    def test_probability_biased(self, t):
        probs = [0.1, 0.7, 0.4]
        m = BddManager(3)
        f = build_from_table(m, t)
        assert m.probability(f, probs) == pytest.approx(
            t.onset_probability(probs)
        )

    @given(small_tables())
    @settings(max_examples=40)
    def test_support(self, t):
        m = BddManager(3)
        f = build_from_table(m, t)
        assert m.support(f) == t.support()

    def test_probability_arity_check(self):
        m = BddManager(2)
        with pytest.raises(LogicError):
            m.probability(ONE, [0.5])
