"""Tests for BDD transfer and probability-weighted sifting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.logic.bdd import (
    ONE,
    ZERO,
    BddManager,
    BddSizeError,
    ReorderResult,
    activity_weights,
    sift_weighted,
    weighted_node_cost,
)
from repro.logic.truthtable import TruthTable
from tests.logic.test_bdd import build_from_table


def _table_of(manager, node, nvars):
    bits = 0
    for m in range(1 << nvars):
        inputs = [(m >> v) & 1 for v in range(nvars)]
        if manager.evaluate(node, inputs):
            bits |= 1 << m
    return TruthTable(nvars, bits)


small_tables = st.builds(
    TruthTable, st.just(3), st.integers(min_value=0, max_value=255)
)


class TestTransfer:
    @given(small_tables)
    @settings(max_examples=40)
    def test_identity_transfer_preserves_function(self, table):
        source = BddManager(3)
        f = build_from_table(source, table)
        target = BddManager(3)
        (g,) = source.transfer([f], target)
        assert _table_of(target, g, 3) == table

    @given(small_tables)
    @settings(max_examples=40)
    def test_permuted_transfer_relabels_variables(self, table):
        source = BddManager(3)
        f = build_from_table(source, table)
        target = BddManager(3)
        var_map = [2, 0, 1]  # original var v lands at level var_map[v]
        (g,) = source.transfer([f], target, var_map)
        for m in range(8):
            inputs = [(m >> v) & 1 for v in range(3)]
            permuted = [0, 0, 0]
            for v in range(3):
                permuted[var_map[v]] = inputs[v]
            assert source.evaluate(f, inputs) == target.evaluate(
                g, permuted
            )

    def test_shared_nodes_stay_shared(self):
        source = BddManager(2)
        a = source.variable(0)
        b = source.variable(1)
        both = source.apply_and(a, b)
        either = source.apply_or(a, b)
        target = BddManager(2)
        roots = source.transfer([both, either, both], target)
        assert roots[0] == roots[2]
        assert len(target.reachable(roots)) == len(
            source.reachable([both, either])
        )

    def test_transfer_respects_target_node_limit(self):
        source = BddManager(4)
        f = build_from_table(source, TruthTable(4, 0x6996))  # parity
        target = BddManager(4, node_limit=3)
        with pytest.raises(BddSizeError):
            source.transfer([f], target)


class TestWeightedCost:
    def test_cost_counts_weighted_nodes(self):
        m = BddManager(2)
        f = m.apply_and(m.variable(0), m.variable(1))
        # Two decision nodes (one per variable) + two terminals; terminals
        # carry weight via _SIZE_EPSILON only.
        weights = activity_weights([0.5, 0.5])
        cost = weighted_node_cost(m, [f], weights)
        assert cost == pytest.approx(1.0, abs=0.01)

    def test_quiet_inputs_cost_less(self):
        m = BddManager(2)
        f = m.apply_and(m.variable(0), m.variable(1))
        noisy = weighted_node_cost(m, [f], activity_weights([0.5, 0.5]))
        quiet = weighted_node_cost(m, [f], activity_weights([0.01, 0.01]))
        assert quiet < noisy


class TestSiftWeighted:
    def test_preserves_functions(self):
        tables = [TruthTable(3, bits) for bits in (0b11101000, 0x96, 0x1F)]
        manager = BddManager(3)
        roots = [build_from_table(manager, t) for t in tables]
        result = sift_weighted(manager, roots, [0.9, 0.5, 0.1])
        assert isinstance(result, ReorderResult)
        assert sorted(result.order) == [0, 1, 2]
        for index, root in enumerate(roots):
            # Reading the sifted BDD through the order permutation must
            # reproduce the original function.
            for m in range(8):
                inputs = [(m >> v) & 1 for v in range(3)]
                by_level = [inputs[result.order[lvl]] for lvl in range(3)]
                assert result.manager.evaluate(
                    result.roots[index], by_level
                ) == manager.evaluate(root, inputs)

    def test_moves_noisy_variable_off_the_spine(self):
        # A chain function where one variable dominates the node count;
        # making that variable the only noisy one rewards reordering.
        manager = BddManager(4)
        f = build_from_table(manager, TruthTable(4, 0xF888))
        result = sift_weighted(manager, [f], [0.5, 0.5, 0.5, 0.5])
        assert result.final_cost <= result.initial_cost

    def test_deterministic(self):
        manager = BddManager(4)
        f = build_from_table(manager, TruthTable(4, 0x6996))
        g = build_from_table(manager, TruthTable(4, 0xF000))
        first = sift_weighted(manager, [f, g], [0.9, 0.1, 0.5, 0.3])
        second = sift_weighted(manager, [f, g], [0.9, 0.1, 0.5, 0.3])
        assert first.order == second.order
        assert first.final_cost == second.final_cost

    def test_never_worsens_cost(self):
        manager = BddManager(4)
        roots = [
            build_from_table(manager, TruthTable(4, bits))
            for bits in (0x8000, 0xFFFE, 0x0660)
        ]
        result = sift_weighted(manager, roots, [0.2, 0.8, 0.5, 0.6])
        assert result.final_cost <= result.initial_cost + 1e-12

    def test_default_probabilities_are_half(self):
        manager = BddManager(3)
        f = build_from_table(manager, TruthTable(3, 0xCA))
        result = sift_weighted(manager, [f])
        assert result.final_cost <= result.initial_cost + 1e-12

    def test_probability_arity_check(self):
        manager = BddManager(3)
        f = build_from_table(manager, TruthTable(3, 0xCA))
        with pytest.raises(LogicError):
            sift_weighted(manager, [f], [0.5, 0.5])

    def test_constant_roots(self):
        manager = BddManager(2)
        result = sift_weighted(manager, [ONE, ZERO])
        assert result.roots == [ONE, ZERO]
        assert result.final_cost == result.initial_cost
