"""Unit and property tests for the TruthTable kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.logic.truthtable import MAX_VARS, TruthTable, all_minterms


def tables(max_vars=4):
    return st.integers(0, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable, st.just(n), st.integers(0, (1 << (1 << n)) - 1)
        )
    )


class TestConstruction:
    def test_constant_false(self):
        t = TruthTable.constant(False, 3)
        assert t.count_ones() == 0
        assert t.is_constant()

    def test_constant_true(self):
        t = TruthTable.constant(True, 3)
        assert t.count_ones() == 8

    def test_variable_pattern(self):
        t = TruthTable.variable(1, 3)
        for m in range(8):
            assert t.value(m) == (m >> 1) & 1

    def test_variable_out_of_range(self):
        with pytest.raises(LogicError):
            TruthTable.variable(3, 3)

    def test_from_rows(self):
        t = TruthTable.from_rows([0, 1, 1, 0])
        assert t.nvars == 2
        assert t.bits == 0b0110

    def test_from_rows_bad_length(self):
        with pytest.raises(LogicError):
            TruthTable.from_rows([0, 1, 1])

    def test_from_rows_bad_value(self):
        with pytest.raises(LogicError):
            TruthTable.from_rows([0, 2])

    def test_from_function(self):
        t = TruthTable.from_function(lambda ins: ins[0] and not ins[1], 2)
        assert t.bits == 0b0010

    def test_too_many_vars(self):
        with pytest.raises(LogicError):
            TruthTable(MAX_VARS + 1, 0)

    def test_bits_exceed_rows(self):
        with pytest.raises(LogicError):
            TruthTable(1, 0b111)

    def test_immutable(self):
        t = TruthTable.constant(True, 1)
        with pytest.raises(AttributeError):
            t.bits = 0


class TestQueries:
    def test_evaluate_matches_value(self):
        t = TruthTable(3, 0b10110100)
        for m, inputs in enumerate(all_minterms(3)):
            assert t.evaluate(inputs) == t.value(m)

    def test_evaluate_arity_check(self):
        with pytest.raises(LogicError):
            TruthTable(2, 0b0110).evaluate([1])

    def test_onset_probability_uniform(self):
        t = TruthTable(2, 0b1000)  # AND
        assert t.onset_probability() == 0.25

    def test_onset_probability_biased(self):
        t = TruthTable(2, 0b1000)
        assert t.onset_probability([0.5, 1.0]) == pytest.approx(0.5)

    def test_support_detects_vacuous(self):
        # f = x0, expressed over 3 vars
        t = TruthTable.variable(0, 3)
        assert t.support() == (0,)

    def test_depends_on(self):
        t = TruthTable(2, 0b0110)  # XOR
        assert t.depends_on(0) and t.depends_on(1)


class TestAlgebra:
    def test_and_or_not(self):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        assert (a & b).bits == 0b1000
        assert (a | b).bits == 0b1110
        assert (~a).bits == 0b0101

    def test_xor(self):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        assert (a ^ b).bits == 0b0110

    def test_mismatched_support(self):
        with pytest.raises(LogicError):
            TruthTable.constant(True, 1) & TruthTable.constant(True, 2)

    def test_implies(self):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        assert (a & b).implies(a)
        assert not a.implies(a & b)

    @given(tables())
    def test_double_negation(self, t):
        assert ~~t == t

    @given(tables(), tables())
    def test_de_morgan(self, a, b):
        if a.nvars != b.nvars:
            return
        assert ~(a & b) == (~a | ~b)

    @given(tables())
    def test_xor_self_is_zero(self, t):
        assert (t ^ t).count_ones() == 0


class TestStructure:
    def test_cofactor_shannon(self):
        t = TruthTable(3, 0b10010110)
        x = TruthTable.variable(1, 3)
        rebuilt = (x & t.cofactor(1, 1)) | (~x & t.cofactor(1, 0))
        assert rebuilt == t

    @given(tables(3), st.integers(0, 2), st.integers(0, 1))
    def test_cofactor_is_independent(self, t, var, value):
        if var >= t.nvars:
            return
        cf = t.cofactor(var, value)
        assert not cf.depends_on(var)

    def test_compose_identity(self):
        t = TruthTable(2, 0b0110)
        vars_ = [TruthTable.variable(i, 2) for i in range(2)]
        assert t.compose(vars_) == t

    def test_compose_swap(self):
        t = TruthTable(2, 0b0010)  # x0 & !x1
        swapped = t.compose(
            [TruthTable.variable(1, 2), TruthTable.variable(0, 2)]
        )
        assert swapped.bits == 0b0100  # x1 & !x0

    def test_permute_roundtrip(self):
        t = TruthTable(3, 0b11011000)
        perm = (2, 0, 1)
        inverse = [0] * 3
        for new, old in enumerate(perm):
            inverse[old] = new
        assert t.permute(perm).permute(tuple(inverse)) == t

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(LogicError):
            TruthTable(2, 0).permute((0, 0))

    def test_extend_preserves_function(self):
        t = TruthTable(2, 0b1000)
        wide = t.extend(4, [1, 3])
        for m, inputs in enumerate(all_minterms(4)):
            assert wide.evaluate(inputs) == t.evaluate(
                (inputs[1], inputs[3])
            )

    def test_shrink_removes_vacuous(self):
        t = TruthTable.variable(2, 4)
        small, kept = t.shrink()
        assert small.nvars == 1
        assert kept == (2,)
        assert small == TruthTable.variable(0, 1)

    @given(tables(3))
    def test_p_canonical_is_invariant(self, t):
        canon, _ = t.p_canonical()
        # Canonical form of any permutation is the same table.
        perm = tuple(reversed(range(t.nvars)))
        canon2, _ = t.permute(perm).p_canonical()
        assert canon == canon2


class TestDunder:
    def test_hash_and_eq(self):
        a = TruthTable(2, 0b0110)
        b = TruthTable(2, 0b0110)
        assert a == b and hash(a) == hash(b)
        assert a != TruthTable(2, 0b1001)
        assert a != "not a table"

    def test_repr(self):
        assert "TruthTable" in repr(TruthTable(2, 0b0110))
