"""Tests that check_netlist detects structural corruption."""

import pytest

from repro.errors import NetlistError
from repro.netlist.verify import check_netlist


class TestVerify:
    def test_healthy_passes(self, figure2):
        check_netlist(figure2)

    def test_detects_stale_fanout(self, figure2):
        d = figure2.gate("d")
        f = figure2.gate("f")
        # Corrupt: remove d's record of feeding f.
        d.fanouts.remove((f, 0))
        with pytest.raises(NetlistError):
            check_netlist(figure2)

    def test_detects_phantom_fanout(self, figure2):
        d = figure2.gate("d")
        e = figure2.gate("e")
        d.fanouts.append((e, 0))  # e pin 0 is not driven by d
        with pytest.raises(NetlistError):
            check_netlist(figure2)

    def test_detects_wrong_registration(self, figure2):
        gate = figure2.gate("d")
        del figure2.gates["d"]
        figure2.gates["dd"] = gate
        with pytest.raises(NetlistError):
            check_netlist(figure2)

    def test_detects_po_mismatch(self, figure2):
        e = figure2.gate("e")
        figure2.outputs["f_out"] = e  # e doesn't list f_out
        with pytest.raises(NetlistError):
            check_netlist(figure2)

    def test_detects_missing_po_load(self, figure2):
        del figure2.output_loads["f_out"]
        with pytest.raises(NetlistError):
            check_netlist(figure2)

    def test_detects_input_with_fanin(self, figure2):
        a = figure2.gate("a")
        a.fanins.append(figure2.gate("b"))
        with pytest.raises(NetlistError):
            check_netlist(figure2)

    def test_detects_cycle(self, figure2):
        d = figure2.gate("d")
        f = figure2.gate("f")
        # Force a cycle bypassing the API guard.
        a = d.fanins[0]
        a.fanouts.remove((d, 0))
        d.fanins[0] = f
        f.fanouts.append((d, 0))
        figure2._invalidate()
        with pytest.raises(NetlistError):
            check_netlist(figure2)
