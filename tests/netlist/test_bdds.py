"""Tests for global BDD construction from netlists."""

import pytest

from repro.logic.bdd import BddSizeError
from repro.netlist.bdds import netlist_bdds
from repro.netlist.simulate import SimState, exhaustive_patterns
from tests.conftest import make_random_netlist


class TestNetlistBdds:
    def test_matches_exhaustive_simulation(self, figure2):
        manager, nodes = netlist_bdds(figure2)
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        for name, node in nodes.items():
            word = sim.value(name)
            for m in range(8):
                inputs = [(m >> i) & 1 for i in range(3)]
                want = (int(word[0]) >> m) & 1
                assert manager.evaluate(node, inputs) == want, (name, m)

    @pytest.mark.parametrize("seed", [201, 202])
    def test_random_netlists(self, lib, seed):
        nl = make_random_netlist(lib, 5, 15, 3, seed=seed)
        manager, nodes = netlist_bdds(nl)
        sim = SimState(nl, exhaustive_patterns(nl.input_names))
        for name, node in nodes.items():
            word = sim.value(name)
            for m in range(32):
                inputs = [(m >> i) & 1 for i in range(5)]
                want = (int(word[m // 64]) >> (m % 64)) & 1
                assert manager.evaluate(node, inputs) == want, (name, m)

    def test_shared_manager_consistent(self, lib, figure2):
        from tests.conftest import make_figure2

        other = make_figure2(lib)
        manager, left_nodes = netlist_bdds(figure2)
        manager, right_nodes = netlist_bdds(
            other, manager=manager, input_order=list(figure2.input_names)
        )
        # Structurally identical circuits: canonical nodes coincide.
        for name in left_nodes:
            assert left_nodes[name] == right_nodes[name]

    def test_node_limit_enforced(self, lib):
        # A multiplier's middle product bits blow past a tiny node budget.
        from repro.bench.functions import multiplier_exprs
        from repro.synth.subject import SubjectGraph
        from repro.synth.mapper import technology_map, MapOptions

        bundle = multiplier_exprs("m", 4)
        graph = SubjectGraph("m")
        for pi in bundle.input_names:
            graph.add_pi(pi)
        for po, expr in bundle.outputs.items():
            graph.set_output(po, graph.add_expr(expr))
        nl = technology_map(graph, lib, MapOptions(mode="area"))
        with pytest.raises(BddSizeError):
            netlist_bdds(nl, node_limit=50)

    def test_tie_gates(self, builder, lib):
        a = builder.input("a")
        tie = builder.netlist.add_gate(lib.constant(True), [], name="one")
        g = builder.and_(a, tie, name="g")
        builder.output("o", g)
        nl = builder.build()
        manager, nodes = netlist_bdds(nl)
        assert nodes["one"] == manager.constant(True)
        assert nodes["g"] == nodes["a"]
