"""Property tests: the batched observability kernel equals the per-stem
reference (``SimState.stem_observability`` / ``branch_observability``)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.library.standard import standard_library
from repro.netlist.observability import ObservabilityMaps
from repro.netlist.simulate import SimState, exhaustive_patterns, random_patterns

from tests.conftest import make_figure2, make_random_netlist

LIB = standard_library()


def assert_maps_match_reference(netlist, sim, maps):
    for gate in netlist.gates.values():
        expected = sim.stem_observability(gate)
        assert np.array_equal(maps.stem[gate.name], expected), gate.name
    for gate in netlist.gates.values():
        for sink, pin in gate.fanouts:
            expected = sim.branch_observability(sink, pin)
            got = maps.branch(sink, pin)
            assert np.array_equal(got, expected), (sink.name, pin)


class TestAgainstReference:
    @settings(max_examples=20, deadline=None)
    @given(
        num_inputs=st.integers(3, 6),
        num_gates=st.integers(4, 24),
        num_outputs=st.integers(1, 3),
        seed=st.integers(0, 10_000),
    )
    def test_random_netlists(self, num_inputs, num_gates, num_outputs, seed):
        netlist = make_random_netlist(LIB, num_inputs, num_gates, num_outputs, seed)
        if not netlist.input_names:
            return
        sim = SimState(netlist, random_patterns(netlist.input_names, 128, seed=seed))
        maps = ObservabilityMaps(sim)
        assert_maps_match_reference(netlist, sim, maps)

    def test_figure2_exhaustive(self):
        netlist = make_figure2(LIB)
        sim = SimState(netlist, exhaustive_patterns(netlist.input_names))
        maps = ObservabilityMaps(sim)
        assert_maps_match_reference(netlist, sim, maps)

    def test_reconvergent_stem(self):
        # s fans out to two XOR branches that reconverge: the OR over branch
        # masks would overestimate, the exact kernel must not.
        from repro.netlist.build import NetlistBuilder

        b = NetlistBuilder(LIB, "reconv")
        a, c = b.inputs("a", "c")
        s = b.and_(a, c, name="s")
        left = b.xor_(s, a, name="left")
        right = b.xor_(s, c, name="right")
        out = b.xnor_(left, right, name="out")
        b.output("o", out)
        netlist = b.build()
        sim = SimState(netlist, exhaustive_patterns(netlist.input_names))
        maps = ObservabilityMaps(sim)
        assert_maps_match_reference(netlist, sim, maps)

    def test_non_observable_stem(self):
        # A gate with no path to any output has an all-zero mask.
        from repro.netlist.build import NetlistBuilder

        b = NetlistBuilder(LIB, "dead")
        a, c = b.inputs("a", "c")
        b.and_(a, c, name="dangling")
        keep = b.or_(a, c, name="keep")
        b.output("o", keep)
        netlist = b.build()
        sim = SimState(netlist, exhaustive_patterns(netlist.input_names))
        maps = ObservabilityMaps(sim)
        assert not maps.stem["dangling"].any()
        assert_maps_match_reference(netlist, sim, maps)

    def test_branch_of_input_rejected(self):
        netlist = make_figure2(LIB)
        sim = SimState(netlist, exhaustive_patterns(netlist.input_names))
        maps = ObservabilityMaps(sim)
        with pytest.raises(NetlistError):
            maps.branch(netlist.gate("a"), 0)


class TestIncrementalUpdate:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_update_matches_recompute_after_rewire(self, seed):
        netlist = make_random_netlist(LIB, 5, 16, 3, seed)
        sim = SimState(netlist, random_patterns(netlist.input_names, 128, seed=1))
        maps = ObservabilityMaps(sim)

        # Rewire one random sink pin to a random legal source.
        import random

        rng = random.Random(seed)
        rewirable = [g for g in netlist.logic_gates() if g.fanins]
        sink = rng.choice(rewirable)
        pin = rng.randrange(len(sink.fanins))
        old_fanin = sink.fanins[pin]
        sources = [
            g
            for g in netlist.gates.values()
            if g is not sink and not netlist.would_create_cycle(g, sink)
        ]
        source = rng.choice(sources)
        netlist.replace_fanin(sink, pin, source)
        changed = sim.resimulate_fanout([sink])

        dirty = {id(g): g for g in changed}
        for g in (sink, old_fanin, source):
            dirty[id(g)] = g
        survived = maps.update_after_edit(dirty.values())

        fresh = ObservabilityMaps(
            SimState(netlist, random_patterns(netlist.input_names, 128, seed=1))
        )
        assert set(maps.stem) == set(fresh.stem)
        for name, mask in fresh.stem.items():
            assert np.array_equal(maps.stem[name], mask), name
        assert_maps_match_reference(netlist, sim, maps)
        # Masks reported unchanged kept their identity.
        for name in set(maps.stem) - survived:
            assert np.array_equal(maps.stem[name], fresh.stem[name])

    def test_update_after_gate_removal(self):
        netlist = make_random_netlist(LIB, 5, 14, 2, seed=3)
        sim = SimState(netlist, random_patterns(netlist.input_names, 128, seed=2))
        maps = ObservabilityMaps(sim)

        # Retarget every fanout of one multi-fanout stem, then sweep.
        stems = [g for g in netlist.logic_gates() if g.fanout_count()]
        target = stems[0]
        replacement = next(
            g
            for g in netlist.gates.values()
            if g is not target
            and not any(s is g for s, _ in target.fanouts)
            and not any(
                netlist.would_create_cycle(g, sink) for sink, _ in target.fanouts
            )
        )
        sinks = [sink for sink, _pin in target.fanouts]
        netlist.replace_fanouts(target, replacement)
        boundary: list = []
        removed = netlist.sweep_dead(boundary=boundary)
        changed = sim.resimulate_fanout(sinks)

        dirty = {id(g): g for g in changed}
        for g in sinks + [replacement] + boundary:
            dirty[id(g)] = g
        if target.name in netlist.gates:
            dirty[id(target)] = target
        maps.update_after_edit(dirty.values())

        assert removed  # the stem (at least) died
        assert all(name not in maps.stem for name in removed)
        assert_maps_match_reference(netlist, sim, maps)
