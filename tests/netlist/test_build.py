"""Tests for the NetlistBuilder convenience layer."""

import pytest

from repro.errors import LibraryError
from repro.logic.truthtable import TruthTable
from repro.netlist.simulate import SimState, exhaustive_patterns
from repro.netlist.verify import check_netlist


class TestBuilder:
    def test_two_input_helpers(self, builder):
        a, b = builder.inputs("a", "b")
        gates = {
            "and": builder.and_(a, b),
            "or": builder.or_(a, b),
            "nand": builder.nand_(a, b),
            "nor": builder.nor_(a, b),
            "xor": builder.xor_(a, b),
            "xnor": builder.xnor_(a, b),
        }
        for i, (name, gate) in enumerate(gates.items()):
            builder.output(f"o_{name}", gate)
        nl = builder.build()
        check_netlist(nl)
        sim = SimState(nl, exhaustive_patterns(["a", "b"]))
        expect = {
            "and": lambda x, y: x & y,
            "or": lambda x, y: x | y,
            "nand": lambda x, y: 1 - (x & y),
            "nor": lambda x, y: 1 - (x | y),
            "xor": lambda x, y: x ^ y,
            "xnor": lambda x, y: 1 - (x ^ y),
        }
        for name, gate in gates.items():
            word = sim.value(gate.name)
            for m in range(4):
                x, y = m & 1, (m >> 1) & 1
                assert (int(word[0]) >> m) & 1 == expect[name](x, y), name

    def test_not(self, builder):
        a = builder.input("a")
        g = builder.not_(a)
        builder.output("o", g)
        nl = builder.build()
        sim = SimState(nl, exhaustive_patterns(["a"]))
        assert sim.signal_probability(g.name) == 0.5

    def test_cell_gate_by_name(self, builder):
        a, b, c = builder.inputs("a", "b", "c")
        g = builder.cell_gate("aoi21", a, b, c)
        builder.output("o", g)
        assert g.cell.name == "aoi21"

    def test_missing_function_raises(self, builder):
        a, b = builder.inputs("a", "b")
        with pytest.raises(LibraryError):
            builder.gate(TruthTable(2, 0b0010), a, b)  # a & !b: no such cell

    def test_buffer_matches_cell(self, builder):
        a = builder.input("a")
        g = builder.gate(TruthTable(1, 0b10), a)
        assert g.cell.is_buffer()

    def test_trees(self, builder):
        xs = builder.inputs(*[f"x{i}" for i in range(5)])
        g_and = builder.and_tree(list(xs))
        g_or = builder.or_tree(list(xs))
        g_xor = builder.xor_tree(list(xs))
        for n, g in [("a", g_and), ("o", g_or), ("x", g_xor)]:
            builder.output(n, g)
        nl = builder.build()
        sim = SimState(nl, exhaustive_patterns(nl.input_names))
        assert sim.signal_probability(g_and.name) == pytest.approx(1 / 32)
        assert sim.signal_probability(g_or.name) == pytest.approx(31 / 32)
        assert sim.signal_probability(g_xor.name) == pytest.approx(0.5)

    def test_empty_tree_rejected(self, builder):
        with pytest.raises(LibraryError):
            builder.and_tree([])
