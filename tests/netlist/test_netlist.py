"""Tests for the core netlist data structure."""

import pytest

from repro.errors import NetlistError
from repro.netlist.netlist import Netlist
from repro.netlist.verify import check_netlist


class TestConstruction:
    def test_add_input(self, lib):
        nl = Netlist("t", lib)
        a = nl.add_input("a")
        assert a.is_input
        assert nl.input_names == ["a"]

    def test_duplicate_input(self, lib):
        nl = Netlist("t", lib)
        nl.add_input("a")
        with pytest.raises(NetlistError):
            nl.add_input("a")

    def test_add_gate_arity_check(self, lib):
        nl = Netlist("t", lib)
        a = nl.add_input("a")
        with pytest.raises(NetlistError):
            nl.add_gate(lib["nand2"], [a])

    def test_add_gate_foreign_fanin(self, lib):
        nl1 = Netlist("a", lib)
        nl2 = Netlist("b", lib)
        a = nl1.add_input("a")
        with pytest.raises(NetlistError):
            nl2.add_gate(lib["inv1"], [a])

    def test_fresh_name_unique(self, lib):
        nl = Netlist("t", lib)
        nl.add_input("n1")
        name = nl.fresh_name()
        assert name not in nl.gates

    def test_set_output_reassign(self, lib):
        nl = Netlist("t", lib)
        a = nl.add_input("a")
        b = nl.add_input("b")
        nl.set_output("o", a)
        nl.set_output("o", b)
        assert nl.outputs["o"] is b
        assert "o" not in a.po_names
        check_netlist(nl)


class TestLoads:
    def test_load_counts_pins_and_po(self, lib, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b)
        x = builder.xor_(g, a)
        builder.output("o", g, load=0.5)
        nl = builder.build()
        # g drives one xor pin (2.0) and the PO (0.5).
        assert nl.load_of(g) == pytest.approx(2.5)

    def test_total_area(self, lib, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b)
        builder.output("o", g)
        assert builder.build().total_area() == lib["and2"].area


class TestEdits:
    def test_replace_fanin(self, lib, builder):
        a, b, c = builder.inputs("a", "b", "c")
        g = builder.and_(a, b, name="g")
        builder.output("o", g)
        nl = builder.build()
        old = nl.replace_fanin(g, 0, c)
        assert old is a
        assert g.fanins[0] is c
        check_netlist(nl)

    def test_replace_fanin_same_driver_noop(self, lib, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        builder.output("o", g)
        nl = builder.build()
        nl.replace_fanin(g, 0, a)
        check_netlist(nl)

    def test_replace_fanin_cycle_rejected(self, lib, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        h = builder.not_(g, name="h")
        builder.output("o", h)
        nl = builder.build()
        with pytest.raises(NetlistError):
            nl.replace_fanin(g, 0, h)
        check_netlist(nl)

    def test_replace_fanin_self_cycle(self, lib, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        builder.output("o", g)
        nl = builder.build()
        with pytest.raises(NetlistError):
            nl.replace_fanin(g, 0, g)

    def test_replace_fanouts_moves_everything(self, lib, builder):
        a, b, c = builder.inputs("a", "b", "c")
        g = builder.and_(a, b, name="g")
        h = builder.or_(c, b, name="h")
        sink = builder.not_(g, name="s")
        builder.output("o", sink)
        builder.output("og", g)
        nl = builder.build()
        nl.replace_fanouts(g, h)
        assert g.fanout_count() == 0
        assert sink.fanins[0] is h
        assert nl.outputs["og"] is h
        check_netlist(nl)

    def test_replace_fanouts_cycle_rejected(self, lib, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        h = builder.not_(g, name="h")
        builder.output("o", h)
        nl = builder.build()
        with pytest.raises(NetlistError):
            nl.replace_fanouts(g, h)  # h is downstream of g

    def test_remove_gate(self, lib, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        nl = builder.build()
        nl.remove_gate(g)
        assert "g" not in nl.gates
        assert a.fanouts == []
        check_netlist(nl)

    def test_remove_gate_with_fanout_rejected(self, lib, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        builder.not_(g, name="h")
        nl = builder.build()
        with pytest.raises(NetlistError):
            nl.remove_gate(g)

    def test_remove_primary_input_rejected(self, lib, builder):
        a = builder.input("a")
        nl = builder.build()
        with pytest.raises(NetlistError):
            nl.remove_gate(a)

    def test_sweep_dead_cascades(self, lib, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        h = builder.not_(g, name="h")
        k = builder.or_(a, b, name="k")
        builder.output("o", k)
        nl = builder.build()
        removed = nl.sweep_dead()
        assert set(removed) == {"g", "h"}
        assert nl.num_gates() == 1
        check_netlist(nl)

    def test_sweep_keeps_po_drivers(self, lib, builder):
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        builder.output("o", g)
        nl = builder.build()
        assert nl.sweep_dead() == []


class TestCopy:
    def test_copy_is_deep(self, figure2):
        clone = figure2.copy("clone")
        assert clone.num_gates() == figure2.num_gates()
        assert set(clone.gates) == set(figure2.gates)
        # Mutating the clone leaves the original alone.
        clone.sweep_dead()
        d = clone.gate("d")
        clone.replace_fanin(clone.gate("f"), 0, clone.gate("e"))
        assert figure2.gate("f").fanins[0].name == "d"
        check_netlist(figure2)
        check_netlist(clone)

    def test_copy_preserves_loads(self, lib, builder):
        a = builder.input("a")
        g = builder.not_(a)
        builder.output("o", g, load=2.5)
        nl = builder.build()
        clone = nl.copy()
        assert clone.output_loads["o"] == 2.5

    def test_copy_shares_cells(self, figure2):
        clone = figure2.copy()
        assert clone.gate("d").cell is figure2.gate("d").cell
