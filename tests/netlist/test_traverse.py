"""Tests for graph traversals: topo order, TFO/TFI, MFFC."""

import pytest

from repro.errors import NetlistError
from repro.netlist.traverse import (
    logic_levels,
    mffc,
    region_inputs,
    topological_order,
    transitive_fanin,
    transitive_fanout,
)


def build_diamond(builder):
    """a -> (g1, g2) -> g3; classic reconvergence."""
    a, b = builder.inputs("a", "b")
    g1 = builder.and_(a, b, name="g1")
    g2 = builder.or_(a, b, name="g2")
    g3 = builder.xor_(g1, g2, name="g3")
    builder.output("o", g3)
    return builder.build()


class TestTopologicalOrder:
    def test_respects_edges(self, random_netlist):
        order = topological_order(random_netlist)
        position = {g.name: i for i, g in enumerate(order)}
        for gate in random_netlist.gates.values():
            for fanin in gate.fanins:
                assert position[fanin.name] < position[gate.name]

    def test_includes_everything(self, random_netlist):
        order = topological_order(random_netlist)
        assert len(order) == len(random_netlist.gates)

    def test_cached_until_edit(self, builder):
        nl = build_diamond(builder)
        first = topological_order(nl)
        assert topological_order(nl) is first
        nl.replace_fanin(nl.gate("g3"), 0, nl.gate("g2"))
        assert topological_order(nl) is not first


class TestTransitiveSets:
    def test_tfo_diamond(self, builder):
        nl = build_diamond(builder)
        names = [g.name for g in transitive_fanout(nl, [nl.gate("a")])]
        assert set(names) == {"g1", "g2", "g3"}

    def test_tfo_excludes_root(self, builder):
        nl = build_diamond(builder)
        names = [g.name for g in transitive_fanout(nl, [nl.gate("g1")])]
        assert set(names) == {"g3"}

    def test_tfo_is_topological(self, random_netlist):
        roots = [random_netlist.gate(random_netlist.input_names[0])]
        tfo = transitive_fanout(random_netlist, roots)
        order = {g.name: i for i, g in enumerate(topological_order(random_netlist))}
        indices = [order[g.name] for g in tfo]
        assert indices == sorted(indices)

    def test_tfi(self, builder):
        nl = build_diamond(builder)
        names = {g.name for g in transitive_fanin(nl, [nl.gate("g3")])}
        assert names == {"a", "b", "g1", "g2"}

    def test_tfi_of_input_empty(self, builder):
        nl = build_diamond(builder)
        assert transitive_fanin(nl, [nl.gate("a")]) == []


class TestMffc:
    def test_single_fanout_chain(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.not_(g1, name="g2")
        builder.output("o", g2)
        nl = builder.build()
        region = {g.name for g in mffc(nl, g2)}
        assert region == {"g1", "g2"}

    def test_stops_at_shared_logic(self, builder):
        nl = build_diamond(builder)
        # g1 feeds only g3, but its fanins a/b also feed g2: region = {g1}.
        region = {g.name for g in mffc(nl, nl.gate("g1"))}
        assert region == {"g1"}

    def test_stops_at_po_driver(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.not_(g1, name="g2")
        builder.output("o1", g1)
        builder.output("o2", g2)
        nl = builder.build()
        region = {g.name for g in mffc(nl, g2)}
        assert region == {"g2"}  # g1 survives: it drives a PO

    def test_input_has_empty_mffc(self, builder):
        nl = build_diamond(builder)
        assert mffc(nl, nl.gate("a")) == []

    def test_mffc_matches_sweep(self, random_netlist):
        # Removing a root's fanout then sweeping dead must delete exactly
        # the MFFC.
        nl = random_netlist
        for name in list(nl.gates):
            gate = nl.gates.get(name)
            if gate is None or gate.is_input:
                continue
            trial = nl.copy("trial")
            troot = trial.gate(name)
            expected = {g.name for g in mffc(trial, troot)}
            # Disconnect: move fanouts to a PI, drop PO bindings.
            some_pi = trial.gate(trial.input_names[0])
            for sink, pin in list(troot.fanouts):
                sink.fanins[pin] = some_pi
                some_pi.fanouts.append((sink, pin))
            troot.fanouts.clear()
            for po in list(troot.po_names):
                trial.outputs[po] = some_pi
                some_pi.po_names.append(po)
            troot.po_names.clear()
            trial._invalidate()
            removed = set(trial.sweep_dead())
            assert removed == expected, name


class TestRegionInputs:
    def test_region_inputs(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.not_(g1, name="g2")
        builder.output("o", g2)
        nl = builder.build()
        region = mffc(nl, g2)
        inputs = {g.name for g in region_inputs(nl, region)}
        assert inputs == {"a", "b"}


class TestLevels:
    def test_levels(self, builder):
        nl = build_diamond(builder)
        levels = logic_levels(nl)
        assert levels["a"] == 0
        assert levels["g1"] == 1
        assert levels["g3"] == 2


class TestTopologicalIndex:
    def test_matches_order(self, random_netlist):
        from repro.netlist.traverse import topological_index

        order = topological_order(random_netlist)
        index = topological_index(random_netlist)
        for i, gate in enumerate(order):
            assert index[id(gate)] == i

    def test_invalidated_on_edit(self, builder):
        from repro.netlist.traverse import topological_index

        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        builder.output("o", g)
        nl = builder.build()
        first = topological_index(nl)
        nl.add_gate(nl.library.inverter(), [g], name="h")
        nl.set_output("o2", nl.gate("h"))
        second = topological_index(nl)
        assert id(nl.gate("h")) in second
        assert id(nl.gate("h")) not in first

    def test_tfo_bitset_equals_reference(self, random_netlist):
        # Cross-check the bitset TFO against a straightforward set sweep.
        for root in list(random_netlist.gates.values())[:10]:
            fast = {g.name for g in transitive_fanout(random_netlist, [root])}
            slow: set = set()
            for gate in topological_order(random_netlist):
                if gate is root:
                    continue
                if any(
                    f is root or f.name in slow for f in gate.fanins
                ):
                    slow.add(gate.name)
            assert fast == slow, root.name

    def test_tfo_multi_roots(self, random_netlist):
        gates = list(random_netlist.gates.values())
        roots = gates[:3]
        multi = {g.name for g in transitive_fanout(random_netlist, roots)}
        union = set()
        for root in roots:
            union |= {g.name for g in transitive_fanout(random_netlist, [root])}
        union -= {g.name for g in roots}
        assert multi == union

    def test_tfo_empty_roots(self, random_netlist):
        assert transitive_fanout(random_netlist, []) == []
