"""Property tests: random legal edit sequences keep every invariant.

Generates sequences of the edits the optimizer performs (branch rewires,
full fanout moves, dead sweeps) on random netlists and asserts structural
integrity plus simulation consistency after every step.
"""

import random

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.netlist.simulate import SimState, random_patterns
from repro.netlist.verify import check_netlist
from tests.conftest import make_random_netlist


def random_edit_sequence(netlist, rng, steps):
    """Apply `steps` random legal edits; yields after each edit."""
    for _ in range(steps):
        gates = list(netlist.gates.values())
        choice = rng.random()
        if choice < 0.45:
            # Rewire one branch to a random non-cyclic driver.
            candidates = [
                g for g in gates if not g.is_input and g.fanins
            ]
            if not candidates:
                continue
            sink = rng.choice(candidates)
            pin = rng.randrange(len(sink.fanins))
            driver = rng.choice(gates)
            if driver is sink or netlist.would_create_cycle(driver, sink):
                continue
            netlist.replace_fanin(sink, pin, driver)
        elif choice < 0.7:
            # Move all fanout of one stem to another.
            old = rng.choice(gates)
            new = rng.choice(gates)
            if old is new or not old.fanout_count():
                continue
            try:
                netlist.replace_fanouts(old, new)
            except NetlistError:
                continue  # would create a cycle: legal to refuse
        else:
            netlist.sweep_dead()
        yield


@pytest.mark.parametrize("seed", [101, 102, 103, 104])
class TestEditSequences:
    def test_invariants_hold_throughout(self, lib, seed):
        netlist = make_random_netlist(lib, 6, 20, 4, seed=seed)
        rng = random.Random(seed)
        for _ in random_edit_sequence(netlist, rng, steps=25):
            check_netlist(netlist)

    def test_simulation_stays_consistent(self, lib, seed):
        netlist = make_random_netlist(lib, 6, 20, 4, seed=seed)
        rng = random.Random(seed + 1)
        patterns = random_patterns(netlist.input_names, 128, seed=seed)
        sim = SimState(netlist, patterns)
        for _ in random_edit_sequence(netlist, rng, steps=15):
            sim.resimulate_all()
            fresh = SimState(
                netlist, random_patterns(netlist.input_names, 128, seed=seed)
            )
            for name in netlist.gates:
                assert np.array_equal(sim.value(name), fresh.value(name))

    def test_loads_never_negative(self, lib, seed):
        netlist = make_random_netlist(lib, 6, 20, 4, seed=seed)
        rng = random.Random(seed + 2)
        for _ in random_edit_sequence(netlist, rng, steps=20):
            for gate in netlist.gates.values():
                assert netlist.load_of(gate) >= 0.0

    def test_timing_recomputable(self, lib, seed):
        from repro.timing.analysis import TimingAnalysis

        netlist = make_random_netlist(lib, 6, 20, 4, seed=seed)
        rng = random.Random(seed + 3)
        for _ in random_edit_sequence(netlist, rng, steps=15):
            analysis = TimingAnalysis(netlist)
            analysis.validate()
            assert analysis.circuit_delay >= 0.0
