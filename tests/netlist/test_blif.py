"""Tests for BLIF I/O."""

import numpy as np
import pytest

from repro.errors import ParseError
from repro.netlist.blif import parse_blif, write_blif
from repro.netlist.simulate import SimState, exhaustive_patterns
from repro.netlist.verify import check_netlist


def outputs_equal(nl1, nl2):
    sim1 = SimState(nl1, exhaustive_patterns(nl1.input_names))
    sim2 = SimState(nl2, exhaustive_patterns(nl2.input_names))
    for po in nl1.outputs:
        if not np.array_equal(
            sim1.value(nl1.outputs[po].name), sim2.value(nl2.outputs[po].name)
        ):
            return False
    return True


class TestParse:
    def test_simple_gate(self, lib):
        text = """
.model m
.inputs a b
.outputs y
.gate nand2 a=a b=b O=y
.end
"""
        nl = parse_blif(text, lib)
        check_netlist(nl)
        assert nl.num_gates() == 1
        assert nl.gate("y").cell.name == "nand2"

    def test_out_of_order_gates(self, lib):
        text = """
.model m
.inputs a b
.outputs y
.gate inv1 a=t O=y
.gate nand2 a=a b=b O=t
.end
"""
        nl = parse_blif(text, lib)
        check_netlist(nl)
        assert nl.num_gates() == 2

    def test_continuation_lines(self, lib):
        text = ".model m\n.inputs a \\\n b\n.outputs y\n.gate nand2 a=a b=b O=y\n.end\n"
        nl = parse_blif(text, lib)
        assert nl.input_names == ["a", "b"]

    def test_constant_names(self, lib):
        text = """
.model m
.inputs a
.outputs y
.gate nand2 a=a b=k1 O=y
.names k1
1
.end
"""
        nl = parse_blif(text, lib)
        check_netlist(nl)
        tie = nl.gate("k1")
        assert tie.cell.name == "one"

    def test_buffer_names_is_alias(self, lib):
        text = """
.model m
.inputs a b
.outputs y
.gate nand2 a=a b=b O=t
.names t y
1 1
.end
"""
        nl = parse_blif(text, lib)
        check_netlist(nl)
        assert nl.outputs["y"].name == "t"

    def test_inverter_names(self, lib):
        text = """
.model m
.inputs a b
.outputs y
.gate and2 a=a b=b O=t
.names t y
0 1
.end
"""
        nl = parse_blif(text, lib)
        assert nl.outputs["y"].cell.is_inverter()

    def test_unknown_cell(self, lib):
        with pytest.raises(ParseError):
            parse_blif(".inputs a\n.outputs y\n.gate bogus a=a O=y\n", lib)

    def test_unbound_pin(self, lib):
        with pytest.raises(ParseError):
            parse_blif(".inputs a\n.outputs y\n.gate nand2 a=a O=y\n", lib)

    def test_unknown_pin(self, lib):
        with pytest.raises(ParseError):
            parse_blif(
                ".inputs a b\n.outputs y\n.gate nand2 a=a b=b z=b O=y\n", lib
            )

    def test_undriven_output(self, lib):
        with pytest.raises(ParseError):
            parse_blif(".inputs a\n.outputs y\n.end\n", lib)

    def test_latch_unsupported(self, lib):
        with pytest.raises(ParseError):
            parse_blif(".inputs a\n.outputs y\n.latch a y re clk 0\n", lib)

    def test_multi_input_names_rejected(self, lib):
        with pytest.raises(ParseError):
            parse_blif(
                ".inputs a b\n.outputs y\n.names a b y\n11 1\n", lib
            )

    def test_combinational_loop_detected(self, lib):
        text = """
.inputs a
.outputs y
.gate nand2 a=a b=y O=t
.gate inv1 a=t O=y
.end
"""
        with pytest.raises(ParseError):
            parse_blif(text, lib)


class TestRoundtrip:
    def test_figure2_roundtrip(self, figure2, lib):
        text = write_blif(figure2)
        clone = parse_blif(text, lib)
        check_netlist(clone)
        assert outputs_equal(figure2, clone)

    def test_random_roundtrip(self, random_netlist, lib):
        text = write_blif(random_netlist)
        clone = parse_blif(text, lib)
        check_netlist(clone)
        assert outputs_equal(random_netlist, clone)

    def test_model_name_preserved(self, figure2, lib):
        clone = parse_blif(write_blif(figure2), lib)
        assert clone.name == "fig2"


class TestRoundtripProperty:
    @pytest.mark.parametrize("seed", [601, 602, 603, 604])
    def test_many_random_roundtrips(self, lib, seed):
        from tests.conftest import make_random_netlist

        nl = make_random_netlist(lib, 5, 15, 3, seed=seed)
        clone = parse_blif(write_blif(nl), lib)
        check_netlist(clone)
        assert outputs_equal(nl, clone)
        # Second round-trip is textually stable.
        assert write_blif(clone) == write_blif(parse_blif(write_blif(clone), lib))
