"""Tests for the structural Verilog writer."""

import re

from repro.netlist.verilog import write_verilog
from repro.bench.suite import build_benchmark


class TestWriteVerilog:
    def test_figure2_structure(self, figure2):
        text = write_verilog(figure2)
        assert text.count("endmodule") >= 3  # top + cell models
        assert "module fig2" in text
        assert "input a;" in text
        assert "output f_out;" in text
        # One instance per logic gate.
        assert len(re.findall(r"^\s+\w+ u\d+ \(", text, re.M)) == 3

    def test_cell_models_emitted(self, figure2):
        text = write_verilog(figure2)
        assert "module and2" in text
        assert "module xor2" in text
        assert "assign O =" in text

    def test_no_cell_models_option(self, figure2):
        text = write_verilog(figure2, include_cell_models=False)
        assert "module and2" not in text

    def test_identifier_sanitisation(self, builder):
        a = builder.input("a[0]")  # bracketed names need sanitising
        g = builder.not_(a, name="weird.name")
        builder.output("out-1", g)
        text = write_verilog(builder.build())
        assert "a[0]" not in text.replace("// a[0]", "")
        assert re.search(r"input a_0_;", text)

    def test_keyword_collision(self, builder):
        a = builder.input("wire")
        g = builder.not_(a, name="assign")
        builder.output("module", g)
        text = write_verilog(builder.build())
        # All three identifiers must have been renamed.
        assert "input n_wire;" in text

    def test_benchmark_writes(self, lib):
        netlist = build_benchmark("sqrt8", lib)
        text = write_verilog(netlist)
        assert text.count(" u") >= netlist.num_gates()

    def test_every_gate_instantiated(self, random_netlist):
        text = write_verilog(random_netlist)
        instances = re.findall(r"^\s+(\w+) u\d+ \(", text, re.M)
        assert len(instances) == random_netlist.num_gates()


class TestWriteDot:
    def test_dot_structure(self, figure2):
        from repro.netlist.dot import write_dot

        text = write_dot(figure2)
        assert text.startswith("digraph")
        assert '"a" [shape=box' in text
        assert '"d" -> "f"' in text
        assert '"PO:f_out"' in text

    def test_highlighting(self, figure2):
        from repro.netlist.dot import write_dot

        text = write_dot(figure2, highlight=["d"])
        assert "fillcolor=orange" in text

    def test_quoting(self, builder):
        from repro.netlist.dot import write_dot

        a = builder.input('weird"name')
        builder.output("o", builder.not_(a))
        text = write_dot(builder.build())
        assert '\\"' in text
