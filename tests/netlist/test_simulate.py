"""Tests for bit-parallel simulation and observability masks."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.netlist.simulate import (
    SimState,
    evaluate_cell,
    exhaustive_patterns,
    popcount,
    random_patterns,
)


def bit(words, index):
    return (int(words[index // 64]) >> (index % 64)) & 1


class TestPatterns:
    def test_random_patterns_deterministic(self):
        a = random_patterns(["x"], 128, seed=5)
        b = random_patterns(["x"], 128, seed=5)
        assert np.array_equal(a["x"], b["x"])

    def test_random_patterns_seed_matters(self):
        a = random_patterns(["x"], 128, seed=5)
        b = random_patterns(["x"], 128, seed=6)
        assert not np.array_equal(a["x"], b["x"])

    def test_random_patterns_bad_count(self):
        with pytest.raises(NetlistError):
            random_patterns(["x"], 100)

    def test_biased_probability(self):
        patterns = random_patterns(["x"], 64 * 256, seed=1, input_probs={"x": 0.9})
        p = popcount(patterns["x"]) / (64 * 256)
        assert 0.85 < p < 0.95

    def test_exhaustive_covers_all(self):
        patterns = exhaustive_patterns(["a", "b"])
        seen = set()
        for i in range(64):
            seen.add((bit(patterns["a"], i), bit(patterns["b"], i)))
        assert seen == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_exhaustive_limit(self):
        with pytest.raises(NetlistError):
            exhaustive_patterns([f"x{i}" for i in range(21)])


class TestEvaluateCell:
    def test_xor_cell(self, lib):
        words_a = np.array([0b1100], dtype=np.uint64)
        words_b = np.array([0b1010], dtype=np.uint64)
        out = evaluate_cell(lib["xor2"], [words_a, words_b], 1)
        assert int(out[0]) & 0b1111 == 0b0110

    def test_aoi21_cell(self, lib):
        # O = !(a*b + c)
        cell = lib["aoi21"]
        a = np.array([0b1111 << 0], dtype=np.uint64)
        b = np.array([0b0011], dtype=np.uint64)
        c = np.array([0b0101], dtype=np.uint64)
        out = evaluate_cell(cell, [a, b, c], 1)
        for i in range(4):
            av, bv, cv = 1, (0b0011 >> i) & 1, (0b0101 >> i) & 1
            assert bit(out, i) == (1 - ((av & bv) | cv))

    def test_arity_mismatch(self, lib):
        with pytest.raises(NetlistError):
            evaluate_cell(lib["nand2"], [np.zeros(1, dtype=np.uint64)], 1)


class TestSimState:
    def test_matches_exhaustive_evaluation(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        f = sim.value("f")
        for m in range(8):
            a, b, c = m & 1, (m >> 1) & 1, (m >> 2) & 1
            assert bit(f, m) == ((a ^ c) & b)

    def test_signal_probability(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        assert sim.signal_probability("e") == 0.25
        assert sim.signal_probability("d") == 0.5

    def test_missing_patterns(self, figure2):
        with pytest.raises(NetlistError):
            SimState(figure2, {"a": np.zeros(1, dtype=np.uint64)})

    def test_incremental_resim_matches_full(self, random_netlist, lib):
        nl = random_netlist
        sim = SimState(nl, random_patterns(nl.input_names, 256, seed=3))
        # Rewire something, then compare incremental vs full resim.
        target = next(g for g in nl.logic_gates() if g.fanout_count())
        source = nl.gate(nl.input_names[0])
        sink, pin = target.fanouts[0]
        if not nl.would_create_cycle(source, sink):
            nl.replace_fanin(sink, pin, source)
            sim.resimulate_fanout([sink])
            reference = SimState(
                nl, random_patterns(nl.input_names, 256, seed=3)
            )
            for name in nl.gates:
                assert np.array_equal(sim.value(name), reference.value(name)), name

    def test_resim_returns_changed(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        changed = sim.resimulate_fanout([figure2.gate("d")])
        assert changed == []  # nothing actually changed

    def test_resim_overlapping_roots_single_eval(self, figure2, monkeypatch):
        # A root inside another root's TFO must be evaluated exactly once
        # and appear at most once in the changed list.
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        d = figure2.gate("d")
        f = figure2.gate("f")  # f is in TFO(d)
        sim.values["d"] = ~sim.values["d"]  # force a stale committed value

        eval_counts: dict[str, int] = {}
        original = SimState._eval

        def counting_eval(self, gate, values):
            eval_counts[gate.name] = eval_counts.get(gate.name, 0) + 1
            return original(self, gate, values)

        monkeypatch.setattr(SimState, "_eval", counting_eval)
        changed = sim.resimulate_fanout([f, d])
        assert all(count == 1 for count in eval_counts.values()), eval_counts
        names = [g.name for g in changed]
        assert len(names) == len(set(names))
        # Committed state is consistent with a full re-simulation.
        reference = SimState(figure2, exhaustive_patterns(figure2.input_names))
        for name in figure2.gates:
            assert np.array_equal(sim.value(name), reference.value(name)), name

    def test_output_words(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        outs = sim.output_words()
        assert set(outs) == {"f_out", "e_out"}

    def test_value_missing(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        with pytest.raises(NetlistError):
            sim.value("nope")


class TestObservability:
    def test_stem_observability_fig2(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        # d is observable at f only when b = 1.
        obs = sim.stem_observability(figure2.gate("d"))
        for m in range(8):
            b = (m >> 1) & 1
            assert bit(obs, m) == b

    def test_po_driver_fully_observable(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        obs = sim.stem_observability(figure2.gate("f"))
        for m in range(8):
            assert bit(obs, m) == 1

    def test_branch_observability(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        # Branch a -> d (xor pin 0): flipping it flips d, observable iff b=1.
        d = figure2.gate("d")
        pin = [i for i, f in enumerate(d.fanins) if f.name == "a"][0]
        obs = sim.branch_observability(d, pin)
        for m in range(8):
            assert bit(obs, m) == (m >> 1) & 1

    def test_branch_obs_of_input_rejected(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        with pytest.raises(NetlistError):
            sim.branch_observability(figure2.gate("a"), 0)

    def test_propagate_forced_leaves_state(self, figure2):
        sim = SimState(figure2, exhaustive_patterns(figure2.input_names))
        before = {n: sim.value(n).copy() for n in figure2.gates}
        flipped = ~sim.value("d")
        sim.propagate_forced({"d": flipped})
        for name in figure2.gates:
            assert np.array_equal(sim.value(name), before[name])


class TestPopcount:
    def test_popcount(self):
        words = np.array([0b1011, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert popcount(words) == 3 + 64

    def test_lut_fallback_matches(self):
        from repro.kernels.words import _popcount_lut

        rng = np.random.default_rng(11)
        words = rng.integers(0, 2**64, size=257, dtype=np.uint64)
        expected = sum(int(w).bit_count() for w in words)
        assert _popcount_lut(words) == expected
        assert popcount(words) == expected

    def test_lut_fallback_edge_words(self):
        from repro.kernels.words import _popcount_lut

        words = np.array([0, 0xFFFFFFFFFFFFFFFF, 1 << 63, 0xF0F0], dtype=np.uint64)
        assert _popcount_lut(words) == 0 + 64 + 1 + 8
        assert _popcount_lut(np.zeros(0, dtype=np.uint64)) == 0
