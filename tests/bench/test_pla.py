"""Tests for PLA parsing, writing, and random generation."""

import pytest

from repro.bench.pla import Pla, parse_pla, random_pla, write_pla
from repro.errors import ParseError
from repro.logic.sop import Cover, Cube

SAMPLE = """
# sample
.i 3
.o 2
.ilb x y z
.ob f g
.p 3
1-0 10
-11 01
111 11
.e
"""


class TestParse:
    def test_basic(self):
        pla = parse_pla(SAMPLE, "sample")
        assert pla.num_inputs == 3
        assert pla.num_outputs == 2
        assert pla.input_names == ["x", "y", "z"]
        assert len(pla.on["f"].cubes) == 2
        assert len(pla.on["g"].cubes) == 2

    def test_default_names(self):
        pla = parse_pla(".i 2\n.o 1\n11 1\n.e\n")
        assert pla.input_names == ["x0", "x1"]
        assert pla.output_names == ["y0"]

    def test_dont_care_outputs(self):
        pla = parse_pla(".i 2\n.o 1\n.type fd\n11 1\n00 -\n.e\n")
        assert "y0" in pla.dc
        assert len(pla.dc["y0"].cubes) == 1

    def test_fr_type_ignores_offset_rows(self):
        pla = parse_pla(".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n")
        assert len(pla.on["y0"].cubes) == 1

    def test_no_space_rows(self):
        pla = parse_pla(".i 2\n.o 1\n11 1\n.e\n")
        assert pla.on["y0"].cubes[0] == Cube.from_string("11")

    def test_missing_io_counts(self):
        with pytest.raises(ParseError):
            parse_pla("11 1\n")

    def test_bad_row_width(self):
        with pytest.raises(ParseError):
            parse_pla(".i 3\n.o 1\n11 1\n.e\n")

    def test_bad_output_flag(self):
        with pytest.raises(ParseError):
            parse_pla(".i 2\n.o 1\n11 x\n.e\n")

    def test_label_count_mismatch(self):
        with pytest.raises(ParseError):
            parse_pla(".i 2\n.o 1\n.ilb a\n11 1\n.e\n")


class TestWrite:
    def test_roundtrip(self):
        pla = parse_pla(SAMPLE, "sample")
        text = write_pla(pla)
        again = parse_pla(text, "sample")
        for po in pla.output_names:
            assert again.on[po].to_truthtable() == pla.on[po].to_truthtable()

    def test_roundtrip_with_dc(self):
        pla = parse_pla(".i 2\n.o 1\n11 1\n0- -\n.e\n")
        again = parse_pla(write_pla(pla))
        assert again.dc["y0"].to_truthtable() == pla.dc["y0"].to_truthtable()

    def test_shared_cubes_one_row(self):
        pla = Pla("t", ["a", "b"], ["f", "g"])
        cube = Cube.from_string("11")
        pla.on["f"] = Cover(2, [cube])
        pla.on["g"] = Cover(2, [cube])
        text = write_pla(pla)
        rows = [l for l in text.splitlines() if not l.startswith(".")]
        assert rows == ["11 11"]


class TestRandom:
    def test_deterministic(self):
        a = random_pla("r", 8, 4, 20, seed=3)
        b = random_pla("r", 8, 4, 20, seed=3)
        for po in a.output_names:
            assert a.on[po].to_truthtable().bits == b.on[po].to_truthtable().bits

    def test_seed_changes_result(self):
        a = random_pla("r", 8, 4, 20, seed=3)
        b = random_pla("r", 8, 4, 20, seed=4)
        assert any(
            a.on[po].to_truthtable() != b.on[po].to_truthtable()
            for po in a.output_names
        )

    def test_shapes(self):
        pla = random_pla("r", 10, 5, 30, seed=1)
        assert pla.num_inputs == 10
        assert pla.num_outputs == 5
        pla.validate()
        assert pla.total_cubes() > 0

    def test_literal_bounds(self):
        pla = random_pla("r", 12, 2, 25, seed=2, literal_low=3, literal_high=5)
        for cover in pla.on.values():
            for cube in cover.cubes:
                assert 1 <= cube.num_literals() <= 5
