"""Tests for the benchmark registry."""

import numpy as np
import pytest

from repro.bench.suite import (
    DEFAULT_SUITE,
    SUITE,
    TRADEOFF_SUITE,
    available_benchmarks,
    build_benchmark,
)
from repro.errors import ReproError
from repro.netlist.blif import write_blif
from repro.netlist.simulate import SimState, random_patterns
from repro.netlist.verify import check_netlist


class TestRegistry:
    def test_default_subset_of_registry(self):
        assert set(DEFAULT_SUITE) <= set(SUITE)
        assert set(TRADEOFF_SUITE) <= set(SUITE)

    def test_available(self):
        names = available_benchmarks()
        assert "comp" in names and "9sym" in names

    def test_unknown_benchmark(self, lib):
        with pytest.raises(ReproError):
            build_benchmark("not-a-circuit", lib)

    def test_paper_names_recorded(self):
        for spec in SUITE.values():
            assert spec.paper_name
            assert spec.description


class TestBuilds:
    @pytest.mark.parametrize("name", list(DEFAULT_SUITE))
    def test_default_suite_builds(self, lib, name):
        netlist = build_benchmark(name, lib)
        check_netlist(netlist)
        assert netlist.num_gates() > 0
        assert netlist.outputs

    def test_deterministic_build(self, lib):
        a = build_benchmark("clip", lib)
        b = build_benchmark("clip", lib)
        assert write_blif(a) == write_blif(b)

    def test_map_mode_changes_result(self, lib):
        power = build_benchmark("rd84", lib, map_mode="power")
        area = build_benchmark("rd84", lib, map_mode="area")
        assert area.total_area() <= power.total_area() + 1e-9

    def test_sym_variants_differ_structurally(self, lib):
        base = build_benchmark("9sym", lib)
        variant = build_benchmark("9symml", lib)
        assert write_blif(base) != write_blif(variant)

    def test_sym_variants_equivalent(self, lib):
        base = build_benchmark("9sym", lib)
        variant = build_benchmark("9symml", lib)
        patterns = random_patterns(base.input_names, 512, seed=5)
        sim_a = SimState(base, patterns)
        sim_b = SimState(variant, patterns)
        out_a = sim_a.value(base.outputs["f"].name)
        out_b = sim_b.value(variant.outputs["f"].name)
        assert np.array_equal(out_a, out_b)

    def test_comp_functional_spot_check(self, lib):
        netlist = build_benchmark("comp", lib)
        patterns = random_patterns(netlist.input_names, 256, seed=9)
        sim = SimState(netlist, patterns)
        gt = sim.value(netlist.outputs["gt"].name)
        lt = sim.value(netlist.outputs["lt"].name)
        eq = sim.value(netlist.outputs["eq"].name)
        for p in range(64):
            a = sum(
                ((int(patterns[f"a{i}"][0]) >> p) & 1) << i for i in range(8)
            )
            b = sum(
                ((int(patterns[f"b{i}"][0]) >> p) & 1) << i for i in range(8)
            )
            assert ((int(gt[0]) >> p) & 1) == int(a > b)
            assert ((int(lt[0]) >> p) & 1) == int(a < b)
            assert ((int(eq[0]) >> p) & 1) == int(a == b)


class TestExtendedRegistry:
    """The non-default (larger / --full-style) entries must also build."""

    @pytest.mark.parametrize(
        "name",
        [
            "i2", "ex5", "C432", "x1", "example2", "pdc", "table5",
            "comp16", "rd73", "alu4tl", "duke2", "misex3", "Z9sym",
            "adder16", "parity16",
        ],
    )
    def test_extended_entry_builds(self, lib, name):
        netlist = build_benchmark(name, lib)
        check_netlist(netlist)
        assert netlist.num_gates() > 0

    def test_rd73_counts_correctly(self, lib):
        netlist = build_benchmark("rd73", lib)
        from repro.netlist.simulate import SimState, exhaustive_patterns

        sim = SimState(netlist, exhaustive_patterns(netlist.input_names))
        for m in range(128):
            weight = bin(m).count("1")
            got = 0
            for j in range(3):
                word = sim.value(netlist.outputs[f"s{j}"].name)
                got |= ((int(word[m // 64]) >> (m % 64)) & 1) << j
            assert got == weight, m
