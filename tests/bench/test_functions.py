"""Functional correctness of the benchmark generators."""

import pytest

from repro.bench.functions import (
    adder_exprs,
    alu_exprs,
    comparator_exprs,
    multiplier_exprs,
    mux_tree_exprs,
    parity_exprs,
    sym_exprs,
    sym_pla,
    weight_exprs,
    weight_pla,
)


def eval_bundle(bundle, assignment):
    return {
        po: expr.evaluate(assignment) for po, expr in bundle.outputs.items()
    }


def assignment_from_bits(names, value):
    return {name: (value >> i) & 1 for i, name in enumerate(names)}


class TestWeight:
    def test_weight_pla(self):
        pla = weight_pla("w", 5)
        for m in range(32):
            weight = bin(m).count("1")
            for j, po in enumerate(pla.output_names):
                assert pla.on[po].contains_minterm(m) == bool(
                    (weight >> j) & 1
                )

    @pytest.mark.parametrize("linear", [False, True])
    def test_weight_exprs(self, linear):
        bundle = weight_exprs("w", 6)
        for m in range(64):
            env = assignment_from_bits(bundle.input_names, m)
            outs = eval_bundle(bundle, env)
            got = sum(outs[f"s{j}"] << j for j in range(len(outs)))
            assert got == bin(m).count("1"), m


class TestSym:
    def test_sym_pla(self):
        pla = sym_pla("s", 6, 2, 4)
        for m in range(64):
            want = 2 <= bin(m).count("1") <= 4
            assert pla.on["f"].contains_minterm(m) == want

    @pytest.mark.parametrize(
        "kwargs",
        [{}, {"linear": True}, {"linear": True, "reverse": True}],
    )
    def test_sym_exprs_variants(self, kwargs):
        bundle = sym_exprs("s", 7, 2, 5, **kwargs)
        for m in range(128):
            env = assignment_from_bits(bundle.input_names, m)
            want = 2 <= bin(m).count("1") <= 5
            assert eval_bundle(bundle, env)["f"] == int(want), m

    def test_9sym_window(self):
        bundle = sym_exprs("9sym", 9, 3, 6)
        for m in (0, 0b111, 0b111111, 0b1111111, 0b111111111):
            env = assignment_from_bits(bundle.input_names, m)
            want = 3 <= bin(m).count("1") <= 6
            assert eval_bundle(bundle, env)["f"] == int(want)


class TestComparator:
    def test_exhaustive_small(self):
        bundle = comparator_exprs("c", 3)
        for a in range(8):
            for b in range(8):
                env = {}
                for i in range(3):
                    env[f"a{i}"] = (a >> i) & 1
                    env[f"b{i}"] = (b >> i) & 1
                outs = eval_bundle(bundle, env)
                assert outs["gt"] == int(a > b), (a, b)
                assert outs["lt"] == int(a < b), (a, b)
                assert outs["eq"] == int(a == b), (a, b)


class TestArithmetic:
    def test_adder(self):
        bundle = adder_exprs("add", 4, carry_in=True)
        for a in range(16):
            for b in range(0, 16, 3):
                for cin in (0, 1):
                    env = {"cin": cin}
                    for i in range(4):
                        env[f"a{i}"] = (a >> i) & 1
                        env[f"b{i}"] = (b >> i) & 1
                    outs = eval_bundle(bundle, env)
                    total = sum(outs[f"s{i}"] << i for i in range(4))
                    total |= outs["cout"] << 4
                    assert total == a + b + cin, (a, b, cin)

    def test_adder_no_carry_in(self):
        bundle = adder_exprs("add", 3)
        env = {f"a{i}": 1 for i in range(3)}
        env.update({f"b{i}": 1 for i in range(3)})
        outs = eval_bundle(bundle, env)
        total = sum(outs[f"s{i}"] << i for i in range(3)) | (outs["cout"] << 3)
        assert total == 14

    def test_multiplier(self):
        bundle = multiplier_exprs("mul", 3)
        for a in range(8):
            for b in range(8):
                env = {}
                for i in range(3):
                    env[f"a{i}"] = (a >> i) & 1
                    env[f"b{i}"] = (b >> i) & 1
                outs = eval_bundle(bundle, env)
                product = sum(outs[f"p{k}"] << k for k in range(6))
                assert product == a * b, (a, b)

    def test_alu_ops(self):
        bundle = alu_exprs("alu", 3)
        cases = {
            (0, 0): lambda a, b: (a + b) & 0b1111,
            (1, 0): lambda a, b: a & b,
            (0, 1): lambda a, b: a | b,
            (1, 1): lambda a, b: a ^ b,
        }
        for (op0, op1), func in cases.items():
            for a in range(8):
                for b in range(0, 8, 2):
                    env = {"op0": op0, "op1": op1}
                    for i in range(3):
                        env[f"a{i}"] = (a >> i) & 1
                        env[f"b{i}"] = (b >> i) & 1
                    outs = eval_bundle(bundle, env)
                    got = sum(outs[f"r{i}"] << i for i in range(3))
                    want = func(a, b)
                    if (op0, op1) == (0, 0):
                        got |= outs["cout"] << 3
                        want = a + b
                    assert got == want, (op0, op1, a, b)


class TestControl:
    def test_parity(self):
        bundle = parity_exprs("p", 5)
        for m in range(32):
            env = assignment_from_bits(bundle.input_names, m)
            assert eval_bundle(bundle, env)["p"] == bin(m).count("1") % 2

    def test_mux_tree(self):
        bundle = mux_tree_exprs("m", 2)
        for data in range(16):
            for sel in range(4):
                env = {}
                for i in range(4):
                    env[f"d{i}"] = (data >> i) & 1
                for j in range(2):
                    env[f"s{j}"] = (sel >> j) & 1
                assert eval_bundle(bundle, env)["y"] == (data >> sel) & 1


class TestEncoderDecoder:
    def test_priority_encoder(self):
        from repro.bench.functions import priority_encoder_exprs

        bundle = priority_encoder_exprs("pe", 6)
        for m in range(64):
            env = assignment_from_bits(bundle.input_names, m)
            outs = eval_bundle(bundle, env)
            if m == 0:
                assert outs["valid"] == 0
                continue
            assert outs["valid"] == 1
            index = sum(outs[f"e{j}"] << j for j in range(3))
            assert index == m.bit_length() - 1, m

    def test_decoder_with_enable(self):
        from repro.bench.functions import decoder_exprs

        bundle = decoder_exprs("dec", 3)
        for sel in range(8):
            for en in (0, 1):
                env = {"en": en}
                for j in range(3):
                    env[f"s{j}"] = (sel >> j) & 1
                outs = eval_bundle(bundle, env)
                for value in range(8):
                    want = int(en and value == sel)
                    assert outs[f"d{value}"] == want, (sel, en, value)

    def test_decoder_without_enable(self):
        from repro.bench.functions import decoder_exprs

        bundle = decoder_exprs("dec", 2, enable=False)
        env = {"s0": 1, "s1": 0}
        outs = eval_bundle(bundle, env)
        assert outs["d1"] == 1
        assert sum(outs.values()) == 1
