"""``analysis_prune`` must be a pure evaluation-saver.

The option's contract is bit-identical move sequences: turning it on may
skip redundant full-gain evaluations (constant sources collapse to one
virtual class, SAT-proven duplicates share a memoised gain) but must
never change which candidate the selector picks, in what order, or the
power arithmetic behind it.  These tests replay the four golden circuits
with the option off and on and compare the applied-move traces
field-by-field.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.library.standard import standard_library
from repro.netlist.blif import parse_blif_file
from repro.telemetry import Tracer
from repro.transform.optimizer import OptimizeOptions, power_optimize

REPO_ROOT = Path(__file__).resolve().parents[2]
BLIF_DIR = REPO_ROOT / "benchmarks" / "blif"
GOLDEN_BENCHMARKS = ("rd53", "misex1", "sqrt8", "ttt2")

#: Fields of :class:`~repro.telemetry.trace.MoveTrace` that define the
#: behavioural identity of a move.  Everything except wall-time.
MOVE_FIELDS = (
    "index",
    "round",
    "candidate_id",
    "kind",
    "pg_a",
    "pg_b",
    "pg_c",
    "predicted_total",
    "measured_power_gain",
    "measured_area_delta",
    "circuit_delay_after",
    "atpg_status",
)


def run(name: str, analysis_prune: bool):
    netlist = parse_blif_file(BLIF_DIR / f"{name}.blif", standard_library())
    tracer = Tracer()
    options = OptimizeOptions(
        num_patterns=512, trace=tracer, analysis_prune=analysis_prune
    )
    result = power_optimize(netlist, options)
    return result, result.trace


@pytest.mark.parametrize("name", GOLDEN_BENCHMARKS)
def test_move_sequence_is_bit_identical(name):
    baseline, base_trace = run(name, analysis_prune=False)
    pruned, prune_trace = run(name, analysis_prune=True)

    assert len(base_trace.moves) == len(prune_trace.moves)
    for base, fast in zip(base_trace.moves, prune_trace.moves):
        for field in MOVE_FIELDS:
            assert getattr(base, field) == getattr(fast, field), (
                f"{name} move {base.index}: {field} diverged under "
                f"analysis_prune"
            )
    assert pruned.final_power == baseline.final_power
    assert pruned.final_area == baseline.final_area
    assert pruned.final_delay == baseline.final_delay


@pytest.mark.parametrize("name", GOLDEN_BENCHMARKS)
def test_prune_counters_are_recorded(name):
    _result, trace = run(name, analysis_prune=True)
    assert "prune_constant_sources" in trace.counters
    assert "prune_unobservable_sources" in trace.counters
    assert "prune_equiv_duplicates" in trace.counters
    # Every golden circuit has at least one provable redundancy; if
    # pruning never fires the option is dead weight and this suite
    # proves nothing.
    saved = (
        trace.counters["prune_constant_sources"]
        + trace.counters["prune_equiv_duplicates"]
    )
    assert saved > 0


def test_prune_counters_absent_when_option_off():
    _result, trace = run("rd53", analysis_prune=False)
    assert not any(key.startswith("prune_") for key in trace.counters)
