"""The optimizer's determinism guarantee: explicit, canonical tie-breaking.

Candidates with equal quick gain are ordered by
:meth:`Substitution.candidate_id`, so a run's move sequence is a pure
function of (netlist, options) — independent of hash seeds, float-tie
enumeration order, and Python build.
"""

from __future__ import annotations

from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
from repro.transform.candidates import Candidate, _keep_best
from repro.transform.gain import GainBreakdown
from repro.transform.optimizer import OptimizeOptions, power_optimize
from repro.transform.substitution import IS2, OS2, OS3, Substitution


def test_candidate_id_is_canonical_and_stable():
    sub = Substitution(OS2, "a", "b", invert1=True)
    assert sub.candidate_id() == "OS2|a|b|~|||||"
    is2 = Substitution(IS2, "a", "b", branch=("sink", 1))
    assert is2.candidate_id() == "IS2|a|b||sink.1||||"
    os3 = Substitution(OS3, "a", "b", source2="c", new_cell="nand2")
    assert os3.candidate_id() == "OS3|a|b|||c||nand2|"


def test_candidate_ids_distinguish_distinct_moves():
    subs = [
        Substitution(OS2, "a", "b"),
        Substitution(OS2, "a", "b", invert1=True),
        Substitution(OS2, "a", "c"),
        Substitution(IS2, "a", "b", branch=("s", 0)),
        Substitution(IS2, "a", "b", branch=("s", 1)),
        Substitution(OS3, "a", "b", source2="c", new_cell="nand2"),
        Substitution(OS3, "a", "b", source2="c", new_cell="nor2"),
    ]
    ids = [s.candidate_id() for s in subs]
    assert len(set(ids)) == len(ids)


def test_equal_gains_rank_in_canonical_order():
    gain = GainBreakdown(pg_a=1.0, pg_b=0.0)
    shuffled = [
        Candidate(Substitution(OS2, "a", name), gain)
        for name in ("g9", "g2", "g5", "g1")
    ]
    kept = _keep_best(shuffled, 10)
    assert [c.substitution.source1 for c in kept] == ["g1", "g2", "g5", "g9"]


def test_better_gain_still_wins_over_canonical_order():
    low = GainBreakdown(pg_a=0.5, pg_b=0.0)
    high = GainBreakdown(pg_a=2.0, pg_b=0.0)
    kept = _keep_best(
        [
            Candidate(Substitution(OS2, "a", "g1"), low),
            Candidate(Substitution(OS2, "a", "g9"), high),
        ],
        10,
    )
    assert [c.substitution.source1 for c in kept] == ["g9", "g1"]


def test_repeated_runs_reproduce_the_move_sequence(lib):
    options = OptimizeOptions(num_patterns=256, max_rounds=6)
    moves = []
    for _ in range(2):
        netlist = random_mapped_netlist(
            GeneratorConfig(seed=12, shape="high_fanout"), lib
        )
        result = power_optimize(netlist, options)
        moves.append([str(m.substitution) for m in result.moves])
    assert moves[0] == moves[1]
    assert moves[0], "the chosen seed must produce at least one move"


def test_repeated_runs_produce_byte_identical_traces(lib):
    """Trace-level determinism: the entire deterministic section of the
    run trace — move sequence keyed by ``Substitution.candidate_id()``,
    gain decompositions, per-round statistics, counters — serializes to
    byte-identical JSON across runs.  Only wall-times may differ."""
    from repro.telemetry import Tracer, compare_traces

    serialized = []
    traces = []
    for _ in range(2):
        netlist = random_mapped_netlist(
            GeneratorConfig(seed=12, shape="high_fanout"), lib
        )
        tracer = Tracer()
        result = power_optimize(
            netlist,
            OptimizeOptions(num_patterns=256, max_rounds=6, trace=tracer),
        )
        traces.append(result.trace)
        serialized.append(result.trace.deterministic_json().encode())
    assert serialized[0] == serialized[1]
    assert compare_traces(traces[0], traces[1]).ok
    assert traces[0].moves, "the chosen seed must produce at least one move"
    # Every trace event is keyed by the canonical tie-break ID, never by
    # enumeration order or hashing.
    for move in traces[0].moves:
        assert move.candidate_id.count("|") == 8
