"""The triage permissibility front-end agrees with the legacy oracle.

The whole point of ``permissibility="triage"`` is that it is a pure
performance change: same verdicts, same move sequences, same final
netlists.  These tests pin that equivalence from three angles — verdict
agreement per substitution, counter consistency, and end-to-end move
sequence equality — plus the option-validation and cross-check plumbing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.transform.candidates import CandidateWorkspace
from repro.transform.optimizer import (
    OptimizeOptions,
    PowerOptimizer,
    power_optimize,
)
from repro.transform.permissible import (
    NOT_PERMISSIBLE,
    PERMISSIBLE,
    TriageChecker,
    check_candidate,
)
from repro.transform.substitution import IS2, OS2, OS3, Substitution
from tests.conftest import make_random_netlist


def workspace_for(netlist, num_patterns=256, seed=3):
    engine = SimulationProbability(
        netlist, num_patterns=num_patterns, seed=seed
    )
    return CandidateWorkspace(PowerEstimator(netlist, engine))


class TestTriageVerdicts:
    def test_paper_move_is_permissible(self, figure2):
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        sub = Substitution(IS2, "a", "e", branch=("d", pin))
        result = TriageChecker(figure2).check(sub)
        assert result.status == PERMISSIBLE
        assert result.stage == "sat"

    def test_wrong_move_killed_by_simulation(self, figure2):
        result = TriageChecker(figure2).check(Substitution(OS2, "d", "e"))
        assert result.status == NOT_PERMISSIBLE
        assert result.stage == "sim"
        assert result.counterexample is not None

    def test_stale_target_rejected_at_apply(self, figure2):
        result = TriageChecker(figure2).check(
            Substitution(OS2, "nonexistent", "e")
        )
        assert result.status == NOT_PERMISSIBLE
        assert result.stage == "apply"

    def test_cycle_rejected_at_apply(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.not_(g1, name="g2")
        builder.output("o", g2)
        nl = builder.build()
        result = TriageChecker(nl).check(Substitution(OS2, "g1", "g2"))
        assert result.status == NOT_PERMISSIBLE
        assert result.stage == "apply"

    def test_os3_permissible(self, figure2):
        sub = Substitution(OS3, "e", "a", source2="b", new_cell="and2")
        assert TriageChecker(figure2).check(sub).status == PERMISSIBLE

    def test_counterexample_names_every_input(self, figure2):
        result = TriageChecker(figure2).check(Substitution(OS2, "d", "e"))
        assert set(result.counterexample) == set(figure2.input_names)
        assert all(v in (0, 1) for v in result.counterexample.values())


class TestAgreementWithLegacyOracle:
    """Per-substitution verdicts match ``check_candidate`` exactly."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_generated_candidates_agree(self, lib, seed):
        netlist = make_random_netlist(lib, 5, 14, 3, seed=seed)
        pool = workspace_for(netlist).generate()
        triage = TriageChecker(netlist)
        for candidate in pool[:12]:
            sub = candidate.substitution
            fast = triage.check(sub)
            exact = check_candidate(netlist, sub)
            assert fast.status == exact.status, sub
        counters = triage.counters
        assert counters["sat_calls"] == (
            counters["sat_proofs"] + counters["sat_cex"]
        )
        assert counters["fallbacks"] == 0

    def test_counters_tally_stages(self, figure2):
        triage = TriageChecker(figure2)
        triage.check(Substitution(OS2, "d", "e"))  # sim kill
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        triage.check(Substitution(IS2, "a", "e", branch=("d", pin)))  # proof
        assert triage.counters["sim_kills"] == 1
        assert triage.counters["sat_proofs"] == 1


class TestEndToEndEquivalence:
    """Same moves, same final power, whichever engine decides."""

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_move_sequences_identical(self, lib, seed):
        results = {}
        for mode in ("podem", "triage"):
            netlist = make_random_netlist(lib, 6, 20, 3, seed=seed)
            options = OptimizeOptions(
                num_patterns=256, max_rounds=3, permissibility=mode
            )
            results[mode] = power_optimize(netlist, options)
        podem, triage = results["podem"], results["triage"]
        assert [
            m.substitution.candidate_id() for m in podem.moves
        ] == [m.substitution.candidate_id() for m in triage.moves]
        assert podem.final_power == triage.final_power
        assert podem.final_area == triage.final_area

    def test_both_mode_cross_checks_cleanly(self, lib):
        netlist = make_random_netlist(lib, 6, 20, 3, seed=17)
        options = OptimizeOptions(
            num_patterns=256, max_rounds=2, permissibility="both"
        )
        optimizer = PowerOptimizer(netlist, options)
        optimizer.run()
        counters = optimizer.triage_checker.counters
        assert counters["podem_disagree"] == 0
        assert counters["podem_agree"] > 0


class TestOptionValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="permissibility"):
            OptimizeOptions(permissibility="bogus")

    @pytest.mark.parametrize("mode", ["triage", "podem", "both"])
    def test_known_engines_accepted(self, mode):
        assert OptimizeOptions(permissibility=mode).permissibility == mode


class TestBatchPairTables:
    """The batched precompute yields the same pool as per-target compute."""

    def test_pool_identical_without_precompute(self, lib):
        netlist = make_random_netlist(lib, 6, 22, 3, seed=29)

        batched = workspace_for(netlist).generate()

        lazy_ws = workspace_for(netlist)
        lazy_ws._precompute_pair_tables = lambda options: None
        lazy = lazy_ws.generate()

        assert len(batched) == len(lazy)
        for a, b in zip(batched, lazy):
            assert a.substitution.candidate_id() == b.substitution.candidate_id()
            assert a.quick == b.quick
            assert a.gain.area_delta == b.gain.area_delta
