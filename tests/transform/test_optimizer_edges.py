"""Edge-case behaviour of the optimizer."""

import pytest

from repro.netlist.netlist import Netlist
from repro.transform.optimizer import OptimizeOptions, power_optimize


class TestDegenerateNetlists:
    def test_wire_only_netlist(self, lib):
        nl = Netlist("wires", lib)
        a = nl.add_input("a")
        nl.set_output("o", a)
        result = power_optimize(nl, OptimizeOptions(num_patterns=64))
        assert result.moves == []
        assert result.final_power == pytest.approx(result.initial_power)

    def test_single_gate(self, builder):
        a, b = builder.inputs("a", "b")
        builder.output("o", builder.and_(a, b))
        result = power_optimize(
            builder.build(), OptimizeOptions(num_patterns=64)
        )
        assert result.final_power <= result.initial_power + 1e-9

    def test_constant_driver_netlist(self, builder, lib):
        tie = builder.netlist.add_gate(lib.constant(True), [], name="one")
        a = builder.input("a")
        g = builder.and_(a, tie, name="g")
        builder.output("o", g)
        nl = builder.build()
        result = power_optimize(nl, OptimizeOptions(num_patterns=64))
        # g == a on every pattern: the optimizer may collapse it entirely.
        assert result.final_power <= result.initial_power + 1e-9

    def test_all_outputs_same_driver(self, builder):
        a, b = builder.inputs("a", "b")
        g = builder.xor_(a, b, name="g")
        for i in range(4):
            builder.output(f"o{i}", g)
        result = power_optimize(
            builder.build(), OptimizeOptions(num_patterns=64)
        )
        assert result.final_delay >= 0

    def test_dead_logic_in_input(self, builder):
        # Dead gates at construction: POWDER must not trip over them.
        a, b = builder.inputs("a", "b")
        builder.and_(a, b, name="dead")
        live = builder.or_(a, b, name="live")
        builder.output("o", live)
        nl = builder.build()
        result = power_optimize(nl, OptimizeOptions(num_patterns=64))
        assert "o" in nl.outputs

    def test_zero_repeat(self, figure2):
        result = power_optimize(
            figure2, OptimizeOptions(num_patterns=64, repeat=0)
        )
        assert result.moves == []

    def test_result_fields_consistent(self, figure2):
        result = power_optimize(figure2, OptimizeOptions(num_patterns=256))
        assert result.rounds >= 1
        assert result.runtime_seconds >= 0
        assert result.netlist is figure2
        text = result.summary()
        assert "POWDER" in text
