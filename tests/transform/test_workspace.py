"""The persistent :class:`CandidateWorkspace` must produce the same
candidate list as a fresh one after any sequence of committed edits."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError, TransformError
from repro.library.standard import standard_library
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.transform.candidates import (
    CandidateOptions,
    CandidateWorkspace,
    generate_candidates,
)
from repro.transform.substitution import apply_substitution

from tests.conftest import make_random_netlist

LIB = standard_library()


def _signature(candidates):
    return [
        (str(c.substitution), c.gain.quick, c.gain.pg_a, c.gain.pg_b)
        for c in candidates
    ]


def _estimator(netlist):
    return PowerEstimator(
        netlist, SimulationProbability(netlist, num_patterns=256, seed=5)
    )


class TestPersistence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_reused_workspace_matches_fresh(self, seed):
        netlist = make_random_netlist(LIB, 6, 22, 3, seed)
        estimator = _estimator(netlist)
        workspace = CandidateWorkspace(estimator)
        options = CandidateOptions(max_per_target=4)

        for _round in range(3):
            pool = workspace.generate(options)
            assert _signature(pool) == _signature(
                generate_candidates(estimator, options)
            )
            applied = None
            for candidate in pool:
                if not candidate.substitution.validate_against(netlist):
                    continue
                try:
                    applied = apply_substitution(netlist, candidate.substitution)
                except (TransformError, NetlistError):
                    continue
                break
            if applied is None:
                break
            changed = estimator.update_after_edit(
                [netlist.gate(n) for n in applied.resim_roots]
            )
            dirty = dict.fromkeys(applied.dirty_gate_names(netlist))
            for name in changed:
                if name in netlist.gates:
                    dirty.setdefault(name)
            workspace.invalidate([netlist.gate(n) for n in dirty])

    def test_pair_cache_reused_when_clean(self):
        netlist = make_random_netlist(LIB, 6, 20, 3, seed=1)
        estimator = _estimator(netlist)
        workspace = CandidateWorkspace(estimator)
        options = CandidateOptions()
        first = workspace.generate(options)
        cached_tables = {
            key: value[-1] for key, value in workspace._pair_cache.items()
        }
        second = workspace.generate(options)
        assert _signature(first) == _signature(second)
        # No edits: every cached table must have been reused as-is.
        for key, table in cached_tables.items():
            assert workspace._pair_cache[key][-1] is table

    def test_invalidate_drops_dead_targets(self):
        netlist = make_random_netlist(LIB, 6, 20, 3, seed=2)
        estimator = _estimator(netlist)
        workspace = CandidateWorkspace(estimator)
        options = CandidateOptions()
        pool = workspace.generate(options)
        applied = None
        for candidate in pool:
            try:
                applied = apply_substitution(netlist, candidate.substitution)
            except (TransformError, NetlistError):
                continue
            break
        assert applied is not None
        changed = estimator.update_after_edit(
            [netlist.gate(n) for n in applied.resim_roots]
        )
        dirty = dict.fromkeys(applied.dirty_gate_names(netlist))
        for name in changed:
            if name in netlist.gates:
                dirty.setdefault(name)
        workspace.invalidate([netlist.gate(n) for n in dirty])
        # Invalidation is lazy; the flush happens on the next generation.
        workspace.generate(options)
        live = set(netlist.gates)
        assert all(key[0] in live for key in workspace._pair_cache)
        assert all(name in live for name in workspace.maps.stem)
