"""Tests for the exact permissibility oracle."""

from repro.transform.permissible import (
    ABORTED,
    NOT_PERMISSIBLE,
    PERMISSIBLE,
    check_candidate,
)
from repro.transform.substitution import IS2, OS2, OS3, Substitution


class TestCheckCandidate:
    def test_paper_move_is_permissible(self, figure2):
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        sub = Substitution(IS2, "a", "e", branch=("d", pin))
        result = check_candidate(figure2, sub)
        assert result.status == PERMISSIBLE
        assert result.allowed

    def test_wrong_move_rejected_with_counterexample(self, figure2):
        # Substituting stem d by e changes f: (a&b)&b != (a^c)&b.
        result = check_candidate(figure2, Substitution(OS2, "d", "e"))
        assert result.status == NOT_PERMISSIBLE
        assert not result.allowed
        assert result.counterexample is not None

    def test_duplicate_logic_permissible(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.and_(a, b, name="g2")
        builder.output("o1", builder.not_(g1, name="n1"))
        builder.output("o2", builder.not_(g2, name="n2"))
        nl = builder.build()
        result = check_candidate(nl, Substitution(OS2, "g2", "g1"))
        assert result.status == PERMISSIBLE

    def test_os3_permissible(self, figure2):
        # e = a AND b: replacing stem e by and2(a, b) is trivially OK.
        sub = Substitution(OS3, "e", "a", source2="b", new_cell="and2")
        assert check_candidate(figure2, sub).status == PERMISSIBLE

    def test_stale_is_not_permissible(self, figure2):
        sub = Substitution(OS2, "nonexistent", "e")
        result = check_candidate(figure2, sub)
        assert result.status == NOT_PERMISSIBLE
        assert result.stage == "apply"

    def test_cycle_is_not_permissible(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.not_(g1, name="g2")
        builder.output("o", g2)
        nl = builder.build()
        # Substituting g1 by g2 (its own fanout) would cycle.
        result = check_candidate(nl, Substitution(OS2, "g1", "g2"))
        assert result.status == NOT_PERMISSIBLE

    def test_abort_reported(self, figure2):
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        sub = Substitution(IS2, "a", "e", branch=("d", pin))
        # Zero ATPG budget, BDD fallback disabled, no simulation
        # counterexample: the check must abort.
        result = check_candidate(
            figure2, sub, backtrack_limit=0, num_patterns=64,
            bdd_node_limit=0,
        )
        assert result.status == ABORTED

    def test_bdd_fallback_rescues_zero_budget(self, figure2):
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        sub = Substitution(IS2, "a", "e", branch=("d", pin))
        result = check_candidate(
            figure2, sub, backtrack_limit=0, num_patterns=64
        )
        assert result.status == PERMISSIBLE
        assert result.stage == "bdd"
