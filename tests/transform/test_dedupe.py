"""Tests for structural deduplication."""

import pytest

from repro.equiv.checker import check_equivalent
from repro.netlist.verify import check_netlist
from repro.transform.dedupe import count_duplicate_gates, merge_duplicate_gates


class TestMergeDuplicates:
    def test_simple_pair(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.and_(a, b, name="g2")
        builder.output("o1", builder.not_(g1, name="n1"))
        builder.output("o2", builder.not_(g2, name="n2"))
        nl = builder.build()
        ref = nl.copy("ref")
        # First-sweep count sees only g2 (n2 becomes duplicate after merge).
        assert count_duplicate_gates(nl) == 1
        merged = merge_duplicate_gates(nl)
        check_netlist(nl)
        assert nl.num_gates() == 2
        assert len(merged) == 2
        assert check_equivalent(ref, nl).equal

    def test_cascading_merge(self, builder):
        # Two identical chains: merging the first level makes the second
        # level identical too — requires the fixed-point iteration.
        a, b = builder.inputs("a", "b")
        left = builder.not_(builder.and_(a, b, name="l1"), name="l2")
        right = builder.not_(builder.and_(a, b, name="r1"), name="r2")
        builder.output("o", builder.or_(left, right, name="top"))
        nl = builder.build()
        ref = nl.copy("ref")
        merge_duplicate_gates(nl)
        check_netlist(nl)
        # l1/r1 merged, then l2/r2 merged; OR(x, x) remains as a gate.
        assert nl.num_gates() == 3
        assert check_equivalent(ref, nl).equal

    def test_different_pin_order_not_merged(self, builder):
        # and2(a,b) vs and2(b,a): same function but different structure —
        # the structural pass must not touch them (POWDER's OS2 can).
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.and_(b, a, name="g2")
        builder.output("o1", g1)
        builder.output("o2", g2)
        nl = builder.build()
        assert merge_duplicate_gates(nl) == []
        assert nl.num_gates() == 2

    def test_no_duplicates_noop(self, figure2):
        before = figure2.num_gates()
        assert merge_duplicate_gates(figure2) == []
        assert figure2.num_gates() == before

    def test_po_ownership_moves(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.and_(a, b, name="g2")
        builder.output("o1", g1)
        builder.output("o2", g2)
        nl = builder.build()
        merge_duplicate_gates(nl)
        check_netlist(nl)
        assert nl.outputs["o1"] is nl.outputs["o2"]

    def test_mapper_output_dedupes(self, lib):
        # Our mapper is known to leave duplicates on multi-phase covers.
        from repro.bench.suite import build_benchmark

        nl = build_benchmark("rd84", lib)
        ref = nl.copy("ref")
        merged = merge_duplicate_gates(nl)
        check_netlist(nl)
        assert check_equivalent(ref, nl).equal
        # (Not asserting merged non-empty: mapper changes may remove them.)
