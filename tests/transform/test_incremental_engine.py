"""A/B tests: the incremental engine (persistent workspace, in-place STA,
copy-free delay checks) must replay the legacy engine's move sequence
exactly, and its self-check must hold after every move."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.library.standard import standard_library
from repro.transform.optimizer import OptimizeOptions, power_optimize
from tests.conftest import make_random_netlist

LIB = standard_library()


def _options(incremental, **overrides):
    base = dict(
        num_patterns=512,
        repeat=8,
        max_rounds=3,
        backtrack_limit=5000,
        incremental=incremental,
    )
    base.update(overrides)
    return OptimizeOptions(**base)


def _move_signature(result):
    return [
        (
            str(m.substitution),
            m.measured_power_gain,
            m.measured_area_delta,
            m.round_index,
            m.circuit_delay_after,
        )
        for m in result.moves
    ]


class TestMoveIdentity:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_same_moves_as_legacy(self, seed):
        base = make_random_netlist(LIB, 6, 26, 3, seed)
        legacy = power_optimize(base.copy("legacy"), _options(False))
        incremental = power_optimize(
            base.copy("incremental"), _options(True, self_check=True)
        )
        assert _move_signature(incremental) == _move_signature(legacy)
        assert incremental.final_power == legacy.final_power
        assert incremental.rounds == legacy.rounds
        assert incremental.rejected_delay == legacy.rejected_delay
        assert (
            incremental.rejected_not_permissible
            == legacy.rejected_not_permissible
        )
        assert incremental.rejected_stale == legacy.rejected_stale

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_same_moves_under_delay_constraint(self, seed):
        base = make_random_netlist(LIB, 6, 26, 3, seed)
        legacy = power_optimize(
            base.copy("legacy"), _options(False, delay_slack_percent=0.0)
        )
        incremental = power_optimize(
            base.copy("incremental"),
            _options(True, delay_slack_percent=0.0, self_check=True),
        )
        assert _move_signature(incremental) == _move_signature(legacy)
        assert incremental.rejected_delay == legacy.rejected_delay
        assert incremental.final_delay == legacy.final_delay

    def test_delay_objective(self):
        base = make_random_netlist(LIB, 6, 24, 2, seed=13)
        legacy = power_optimize(
            base.copy("legacy"), _options(False, objective="delay")
        )
        incremental = power_optimize(
            base.copy("incremental"),
            _options(True, objective="delay", self_check=True),
        )
        assert _move_signature(incremental) == _move_signature(legacy)


class TestPhaseCounters:
    def test_phase_seconds_populated(self):
        netlist = make_random_netlist(LIB, 6, 22, 3, seed=3)
        result = power_optimize(netlist, _options(True))
        assert set(result.phase_seconds) == {
            "candidates",
            "select",
            "timing",
            "atpg",
            "apply",
        }
        assert all(v >= 0.0 for v in result.phase_seconds.values())
        assert result.phase_seconds["candidates"] > 0.0

    def test_summary_prints_phases(self):
        netlist = make_random_netlist(LIB, 6, 22, 3, seed=3)
        result = power_optimize(netlist, _options(True))
        assert "phases:" in result.summary()
        assert "candidates" in result.summary()


class TestSelfCheck:
    def test_self_check_verifies_sta(self, monkeypatch):
        from repro.errors import TransformError
        from repro.transform import optimizer as opt_module

        netlist = make_random_netlist(LIB, 6, 24, 3, seed=5)
        # Sabotage the incremental update: self_check must catch it.
        from repro.timing.analysis import TimingAnalysis

        original = TimingAnalysis.update_after_edit

        def broken(self, roots):
            original(self, roots)
            if self.arrival:
                name = next(iter(self.arrival))
                self.arrival[name] += 1.0

        monkeypatch.setattr(TimingAnalysis, "update_after_edit", broken)
        with pytest.raises(TransformError, match="diverged"):
            power_optimize(netlist, _options(True, self_check=True))
