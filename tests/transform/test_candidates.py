"""Tests for simulation-filtered candidate generation."""

import pytest

from repro.errors import TransformError
from repro.power.estimate import PowerEstimator
from repro.power.probability import (
    PropagationProbability,
    SimulationProbability,
)
from repro.transform.candidates import (
    CandidateOptions,
    _two_input_cells,
    generate_candidates,
)
from repro.transform.permissible import PERMISSIBLE, check_candidate
from repro.transform.substitution import IS2, IS3, OS2
from repro.library.standard import standard_library
from tests.conftest import make_random_netlist


def exhaustive_estimator(netlist):
    return PowerEstimator(
        netlist, SimulationProbability(netlist, exhaustive=True)
    )


class TestGeneration:
    def test_figure2_contains_paper_move(self, figure2):
        est = exhaustive_estimator(figure2)
        candidates = generate_candidates(est)
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        found = [
            c
            for c in candidates
            if c.substitution.kind == IS2
            and c.substitution.target == "a"
            and c.substitution.source1 == "e"
            and c.substitution.branch == ("d", pin)
        ]
        assert found, "the paper's Figure-2 rewiring must be a candidate"

    def test_sorted_by_quick_gain(self, random_netlist):
        est = exhaustive_estimator(random_netlist)
        candidates = generate_candidates(est)
        gains = [c.quick for c in candidates]
        assert gains == sorted(gains, reverse=True)

    def test_requires_simulation_engine(self, figure2):
        est = PowerEstimator(figure2, PropagationProbability(figure2))
        with pytest.raises(TransformError):
            generate_candidates(est)

    def test_class_enables(self, random_netlist):
        est = exhaustive_estimator(random_netlist)
        only_os2 = generate_candidates(
            est,
            CandidateOptions(
                enable_is2=False, enable_os3=False, enable_is3=False
            ),
        )
        assert all(c.substitution.kind == OS2 for c in only_os2)
        only_is = generate_candidates(
            est,
            CandidateOptions(
                enable_os2=False, enable_os3=False, enable_is3=False
            ),
        )
        assert all(c.substitution.kind == IS2 for c in only_is)

    def test_max_total_cap(self, random_netlist):
        est = exhaustive_estimator(random_netlist)
        capped = generate_candidates(est, CandidateOptions(max_total=5))
        assert len(capped) <= 5

    def test_no_inversion_option(self, random_netlist):
        est = exhaustive_estimator(random_netlist)
        candidates = generate_candidates(
            est, CandidateOptions(allow_inversion=False)
        )
        assert all(not c.substitution.invert1 for c in candidates)

    def test_os3_cells_restriction(self, random_netlist):
        est = exhaustive_estimator(random_netlist)
        candidates = generate_candidates(
            est,
            CandidateOptions(
                enable_os2=False,
                enable_is2=False,
                enable_is3=False,
                os3_cells=("xor2",),
            ),
        )
        assert all(
            c.substitution.new_cell == "xor2" for c in candidates
        )


class TestCandidateQuality:
    @pytest.mark.parametrize("seed", [7, 8])
    def test_all_candidates_permissible_under_exhaustive_sim(self, lib, seed):
        # With exhaustive patterns the observability filter is exact, so
        # every candidate must pass the ATPG permissibility check.
        nl = make_random_netlist(lib, 5, 12, 3, seed=seed)
        est = exhaustive_estimator(nl)
        candidates = generate_candidates(
            est, CandidateOptions(max_per_target=3, max_total=40)
        )
        assert candidates, "expected at least one candidate"
        for candidate in candidates[:25]:
            result = check_candidate(nl, candidate.substitution)
            assert result.status == PERMISSIBLE, str(candidate.substitution)

    def test_no_cycle_candidates(self, random_netlist):
        est = exhaustive_estimator(random_netlist)
        for candidate in generate_candidates(est):
            sub = candidate.substitution
            target = random_netlist.gate(sub.target)
            for source_name in sub.source_names():
                source = random_netlist.gate(source_name)
                if sub.is_output_substitution():
                    for sink, _pin in target.fanouts:
                        assert not random_netlist.would_create_cycle(
                            source, sink
                        )
                else:
                    sink = random_netlist.gate(sub.branch[0])
                    assert not random_netlist.would_create_cycle(source, sink)

    def test_branch_targets_only_multi_fanout(self, random_netlist):
        est = exhaustive_estimator(random_netlist)
        for candidate in generate_candidates(est):
            sub = candidate.substitution
            if sub.kind in (IS2, IS3):
                assert random_netlist.gate(sub.target).fanout_count() >= 2


class TestTwoInputCells:
    """The OS3/IS3 insertion-cell query (`_two_input_cells`)."""

    def test_defaults_to_library_capability_query(self):
        netlist = make_random_netlist(standard_library(), 4, 8, 2, seed=5)
        cells = _two_input_cells(netlist, CandidateOptions())
        assert cells == list(netlist.library.insertion_cells())
        assert all(cell.num_inputs == 2 for cell in cells)

    def test_cheapest_per_function_dedup(self):
        from repro.library.genlib import parse_genlib

        lib = parse_genlib(
            "GATE inv 1.0 O=!a; PIN a INV 1 9 1 1 1 1\n"
            "GATE and_cheap 2.0 O=a*b; PIN * NONINV 1 9 1 1 1 1\n"
            "GATE and_rich 5.0 O=a*b; PIN * NONINV 1 9 1 1 1 1\n"
            "GATE or2 3.0 O=a+b; PIN * NONINV 1 9 1 1 1 1\n"
        )
        netlist = make_random_netlist(standard_library(), 4, 8, 2, seed=5)
        netlist.library = lib
        names = [
            c.name for c in _two_input_cells(netlist, CandidateOptions())
        ]
        # One cell per function, the cheaper AND wins, inverter excluded.
        assert names == ["and_cheap", "or2"]

    def test_os3_cells_override_dedups_by_function(self):
        netlist = make_random_netlist(standard_library(), 4, 8, 2, seed=5)
        options = CandidateOptions(os3_cells=("and2", "and2", "nand2"))
        cells = _two_input_cells(netlist, options)
        # The repeated function collapses; the override order is ignored in
        # favour of the deterministic cheapest-per-function pick.
        assert sorted(c.name for c in cells) == ["and2", "nand2"]

    def test_os3_cells_override_restricts_pool(self):
        netlist = make_random_netlist(standard_library(), 4, 8, 2, seed=5)
        cells = _two_input_cells(
            netlist, CandidateOptions(os3_cells=("xor2",))
        )
        assert [c.name for c in cells] == ["xor2"]

    def test_no_library_yields_nothing(self):
        netlist = make_random_netlist(standard_library(), 4, 8, 2, seed=5)
        netlist.library = None
        assert _two_input_cells(netlist, CandidateOptions()) == []
