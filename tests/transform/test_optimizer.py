"""Tests for the POWDER optimization loop (Figure 5)."""

import pytest

from repro.equiv.checker import check_equivalent
from repro.netlist.verify import check_netlist
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.timing.analysis import TimingAnalysis
from repro.transform.optimizer import (
    OptimizeOptions,
    PowerOptimizer,
    power_optimize,
)
from repro.transform.substitution import IS2
from tests.conftest import make_random_netlist


def quick_options(**overrides):
    base = dict(
        num_patterns=1024, repeat=10, max_rounds=3, backtrack_limit=5000
    )
    base.update(overrides)
    return OptimizeOptions(**base)


class TestFigure2:
    def test_finds_paper_move(self, figure2):
        result = power_optimize(figure2, quick_options(self_check=True))
        kinds = [(m.substitution.kind, m.substitution.source1) for m in result.moves]
        assert (IS2, "e") in kinds

    def test_power_reduced(self, figure2):
        result = power_optimize(figure2, quick_options())
        assert result.final_power < result.initial_power
        assert result.power_reduction_percent > 0

    def test_measured_matches_estimator(self, figure2):
        result = power_optimize(figure2, quick_options())
        total_gain = sum(m.measured_power_gain for m in result.moves)
        assert result.initial_power - result.final_power == pytest.approx(
            total_gain
        )


class TestInvariants:
    @pytest.mark.parametrize("seed", [51, 52, 53])
    def test_equivalence_preserved(self, lib, seed):
        nl = make_random_netlist(lib, 6, 16, 3, seed=seed)
        reference = nl.copy("ref")
        power_optimize(nl, quick_options(self_check=True))
        check_netlist(nl)
        assert check_equivalent(reference, nl).equal

    @pytest.mark.parametrize("seed", [54, 55])
    def test_every_move_reduced_power(self, lib, seed):
        nl = make_random_netlist(lib, 6, 16, 3, seed=seed)
        result = power_optimize(nl, quick_options())
        for move in result.moves:
            assert move.measured_power_gain > 0, str(move.substitution)

    def test_predicted_equals_measured(self, lib):
        nl = make_random_netlist(lib, 6, 16, 3, seed=56)
        result = power_optimize(nl, quick_options())
        for move in result.moves:
            assert move.predicted.total == pytest.approx(
                move.measured_power_gain, rel=1e-6, abs=1e-9
            )

    def test_final_metrics_consistent(self, lib):
        nl = make_random_netlist(lib, 6, 16, 3, seed=57)
        result = power_optimize(nl, quick_options())
        est = PowerEstimator(
            nl,
            SimulationProbability(nl, num_patterns=1024, seed=2024),
        )
        assert result.final_power == pytest.approx(est.total())
        assert result.final_area == pytest.approx(nl.total_area())


class TestDelayConstraints:
    @pytest.mark.parametrize("seed", [61, 62])
    def test_zero_slack_never_increases_delay(self, lib, seed):
        nl = make_random_netlist(lib, 6, 18, 3, seed=seed)
        initial_delay = TimingAnalysis(nl).circuit_delay
        result = power_optimize(
            nl, quick_options(delay_slack_percent=0.0)
        )
        assert result.final_delay <= initial_delay + 1e-9
        assert result.delay_limit == pytest.approx(initial_delay)

    def test_slack_allows_more_reduction(self, lib):
        base = make_random_netlist(lib, 6, 20, 3, seed=63)
        tight = power_optimize(
            base.copy("t"), quick_options(delay_slack_percent=0.0)
        )
        loose = power_optimize(
            base.copy("l"), quick_options(delay_slack_percent=200.0)
        )
        assert loose.final_power <= tight.final_power + 1e-9

    def test_absolute_delay_limit(self, figure2):
        limit = TimingAnalysis(figure2).circuit_delay * 2
        result = power_optimize(figure2, quick_options(delay_limit=limit))
        assert TimingAnalysis(figure2).circuit_delay <= limit + 1e-9


class TestOptions:
    def test_max_moves(self, lib):
        nl = make_random_netlist(lib, 6, 20, 3, seed=64)
        result = power_optimize(nl, quick_options(max_moves=2))
        assert len(result.moves) <= 2

    def test_max_rounds(self, lib):
        nl = make_random_netlist(lib, 6, 20, 3, seed=65)
        result = power_optimize(nl, quick_options(max_rounds=1))
        assert result.rounds <= 1

    def test_kwargs_api(self, figure2):
        result = power_optimize(figure2, num_patterns=512, max_rounds=2)
        assert result.netlist is figure2

    def test_kwargs_and_options_conflict(self, figure2):
        with pytest.raises(TypeError):
            power_optimize(figure2, quick_options(), repeat=3)

    def test_summary_renders(self, figure2):
        result = power_optimize(figure2, quick_options())
        text = result.summary()
        assert "power" in text and "moves" in text

    def test_optimizer_reusable_components(self, figure2):
        opt = PowerOptimizer(figure2, quick_options())
        pool = opt.get_candidate_substitutions()
        assert pool
        good = opt.select_power_red_subst(pool)
        assert good is not None
        assert good.gain.includes_pg_c
        assert opt.check_delay(good.substitution)
