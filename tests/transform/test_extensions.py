"""Tests for the optimizer extensions: constant substitution (redundancy
removal) and the §4.2 gain-threshold early termination."""

import pytest

from repro.equiv.checker import check_equivalent
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.transform.candidates import CandidateOptions, generate_candidates
from repro.transform.gain import full_gain, quick_gain
from repro.transform.optimizer import OptimizeOptions, power_optimize
from repro.transform.permissible import PERMISSIBLE, check_candidate
from repro.transform.substitution import (
    IS2,
    OS2,
    Substitution,
    apply_substitution,
)
from repro.errors import TransformError


def redundant_netlist(builder):
    """h = (a·b)·!b is constant 0; y = h + c."""
    a, bb, c = builder.inputs("a", "b", "c")
    nb = builder.not_(bb, name="nb")
    g = builder.and_(a, bb, name="g")
    h = builder.and_(g, nb, name="h")
    y = builder.or_(h, c, name="y")
    builder.output("y", y)
    return builder.build()


class TestConstantSubstitutionModel:
    def test_validation(self):
        with pytest.raises(TransformError):
            Substitution(OS2, "t", "", constant=2)
        with pytest.raises(TransformError):
            Substitution(OS2, "t", "b", constant=0)  # source + constant
        with pytest.raises(TransformError):
            Substitution(OS2, "t", "")  # neither
        sub = Substitution(OS2, "t", "", constant=1)
        assert sub.is_constant
        assert sub.source_names() == ()
        assert "1" in str(sub)

    def test_apply_creates_tie(self, builder):
        nl = redundant_netlist(builder)
        sub = Substitution(OS2, "h", "", constant=0)
        applied = apply_substitution(nl, sub)
        tie = nl.gate(applied.added[0])
        assert tie.cell.is_constant()
        # g, h, nb die.
        assert set(applied.removed) >= {"g", "h"}

    def test_apply_reuses_existing_tie(self, builder, lib):
        nl = redundant_netlist(builder)
        tie = nl.add_gate(lib.constant(False), [], name="tie0")
        nl.set_output("t", tie)  # keep it alive
        applied = apply_substitution(
            nl, Substitution(OS2, "h", "", constant=0)
        )
        assert applied.added == []

    def test_permissible(self, builder):
        nl = redundant_netlist(builder)
        result = check_candidate(nl, Substitution(OS2, "h", "", constant=0))
        assert result.status == PERMISSIBLE
        # The wrong constant is rejected.
        result = check_candidate(nl, Substitution(OS2, "h", "", constant=1))
        assert result.status != PERMISSIBLE

    def test_gain_exact(self, builder):
        nl = redundant_netlist(builder)
        est = PowerEstimator(nl, SimulationProbability(nl, exhaustive=True))
        sub = Substitution(OS2, "h", "", constant=0)
        predicted = full_gain(est, sub)
        before = est.total()
        applied = apply_substitution(nl, sub)
        est.update_after_edit(
            [nl.gate(n) for n in applied.resim_roots if n in nl.gates]
        )
        assert predicted.total == pytest.approx(before - est.total(), abs=1e-9)

    def test_candidates_generated(self, builder):
        nl = redundant_netlist(builder)
        est = PowerEstimator(nl, SimulationProbability(nl, exhaustive=True))
        candidates = generate_candidates(
            est, CandidateOptions(constant_substitution=True)
        )
        consts = [c for c in candidates if c.substitution.is_constant]
        assert any(
            c.substitution.target == "h" and c.substitution.constant == 0
            for c in consts
        )

    def test_disabled_by_default(self, builder):
        nl = redundant_netlist(builder)
        est = PowerEstimator(nl, SimulationProbability(nl, exhaustive=True))
        candidates = generate_candidates(est)
        assert not any(c.substitution.is_constant for c in candidates)

    def test_end_to_end(self, builder):
        nl = redundant_netlist(builder)
        ref = nl.copy("ref")
        result = power_optimize(
            nl,
            OptimizeOptions(
                num_patterns=1024,
                candidates=CandidateOptions(constant_substitution=True),
                self_check=True,
            ),
        )
        assert result.final_power < result.initial_power
        assert check_equivalent(ref, nl).equal


class TestGainThreshold:
    def test_threshold_stops_early(self, lib):
        from tests.conftest import make_random_netlist

        nl = make_random_netlist(lib, 6, 20, 3, seed=71)
        all_moves = power_optimize(
            nl.copy("a"), OptimizeOptions(num_patterns=1024, max_rounds=4)
        )
        thresholded = power_optimize(
            nl.copy("b"),
            OptimizeOptions(
                num_patterns=1024,
                max_rounds=4,
                gain_threshold_fraction=0.02,
            ),
        )
        assert len(thresholded.moves) <= len(all_moves.moves)
        # Every accepted move clears the floor.
        floor = 0.02 * thresholded.initial_power
        for move in thresholded.moves:
            assert move.measured_power_gain > floor * 0.999

    def test_threshold_zero_equivalent_to_off(self, figure2, lib):
        from tests.conftest import make_figure2

        a = power_optimize(
            figure2, OptimizeOptions(num_patterns=1024, max_rounds=2)
        )
        b = power_optimize(
            make_figure2(lib),
            OptimizeOptions(
                num_patterns=1024, max_rounds=2, gain_threshold_fraction=0.0
            ),
        )
        assert len(a.moves) == len(b.moves)


class TestDedupeFirstAndVerbose:
    def test_dedupe_first(self, builder):
        a, bb = builder.inputs("a", "b")
        g1 = builder.and_(a, bb, name="g1")
        g2 = builder.and_(a, bb, name="g2")
        builder.output("o1", builder.not_(g1, name="n1"))
        builder.output("o2", builder.not_(g2, name="n2"))
        nl = builder.build()
        result = power_optimize(
            nl, OptimizeOptions(num_patterns=512, max_rounds=1, dedupe_first=True)
        )
        # Duplicates merged before the first estimate (4 gates -> 2); the
        # optimizer may shrink further (e.g. AND+INV -> NAND).
        assert nl.num_gates() <= 2
        optimizer_view = result.netlist
        assert optimizer_view is nl

    def test_verbose_prints_moves(self, figure2, capsys):
        power_optimize(
            figure2,
            OptimizeOptions(num_patterns=512, max_rounds=2, verbose=True),
        )
        out = capsys.readouterr().out
        assert "IS2" in out or "OS" in out
