"""Window-merge equivalence: the windowed optimizer must preserve
function on generated and golden circuits, agree with itself across
worker counts, and never replay two moves with overlapping dying
regions (the crafted-conflict cases at the bottom pin the resolver).
"""

from __future__ import annotations

import pytest

from repro.bench.suite import build_benchmark
from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
from repro.fuzz.oracle import check_equivalence_tiers, cross_check_metrics
from repro.library.standard import standard_library
from repro.netlist.blif import write_blif
from repro.partition import extract_window
from repro.transform.optimizer import OptimizeOptions
from repro.transform.substitution import Substitution
from repro.transform.windowed import (
    WindowedOptimizer,
    WindowMove,
    windowed_optimize,
)

LIB = standard_library()


def generated(seed, gates, shape="random"):
    config = GeneratorConfig(
        seed=seed,
        shape=shape,
        min_gates=gates,
        max_gates=gates,
        min_inputs=5,
        max_inputs=8,
    )
    return random_mapped_netlist(config, LIB)


def windowed_options(**overrides):
    base = dict(
        windowed=True,
        num_patterns=512,
        window_size=30,
        window_radius=2,
        jobs=1,
    )
    base.update(overrides)
    return OptimizeOptions(**base)


def assert_oracle_clean(reference, result, options):
    report = check_equivalence_tiers(reference, result.netlist)
    assert report.equal, report.disagreements
    assert cross_check_metrics(result, options) == []


class TestOracleEquivalence:
    @pytest.mark.parametrize("seed", [11, 29, 47])
    def test_generated_circuits_stay_equivalent(self, seed):
        netlist = generated(seed, gates=90)
        reference = netlist.copy("ref")
        options = windowed_options()
        result = windowed_optimize(netlist, options)
        assert result.netlist is netlist
        assert result.rounds >= 2, "window_size must force a real partition"
        assert_oracle_clean(reference, result, options)

    @pytest.mark.parametrize("shape", ["reconvergent", "high_fanout"])
    def test_stress_shapes_stay_equivalent(self, shape):
        netlist = generated(5, gates=70, shape=shape)
        reference = netlist.copy("ref")
        options = windowed_options(window_size=20)
        result = windowed_optimize(netlist, options)
        assert_oracle_clean(reference, result, options)

    @pytest.mark.parametrize("name", ["rd53", "misex1"])
    def test_golden_circuits_stay_equivalent(self, name):
        netlist = build_benchmark(name, LIB)
        reference = netlist.copy("ref")
        options = windowed_options(window_size=25)
        result = windowed_optimize(netlist, options)
        assert_oracle_clean(reference, result, options)

    def test_builtin_verify_pass_and_metrics_from_scratch(self):
        netlist = generated(3, gates=60)
        options = windowed_options(window_verify=True)
        result = windowed_optimize(netlist, options)
        # window_verify re-proved equivalence inside run(); the report's
        # final figures must match a cold rebuild (they are recomputed,
        # never accumulated from window-local estimates).
        assert cross_check_metrics(result, options) == []
        assert result.phase_seconds["metrics"] >= 0.0


class TestWorkerCountInvariance:
    def test_single_window_replays_flat_optimizer_exactly(self):
        """One all-covering window is an identity transport: no synthetic
        POs, boundary inputs are the real PIs in parent order, so the
        windowed flow must reproduce the sequential run bit for bit."""
        flat = generated(41, gates=40)
        win = generated(41, gates=40)
        options = OptimizeOptions(num_patterns=512)
        from repro.transform.optimizer import PowerOptimizer

        result_flat = PowerOptimizer(flat, options).run()
        result_win = windowed_optimize(
            win,
            windowed_options(
                num_patterns=512, window_size=10_000, window_radius=10_000
            ),
        )
        flat_ids = [m.substitution.candidate_id() for m in result_flat.moves]
        win_ids = [m.substitution.candidate_id() for m in result_win.moves]
        assert win_ids == flat_ids
        assert write_blif(win) == write_blif(flat)

    def test_one_worker_matches_pool_of_two(self):
        options_a = windowed_options(jobs=1)
        options_b = windowed_options(jobs=2)
        first = generated(83, gates=80)
        second = generated(83, gates=80)  # same seed -> identical twin
        result_a = windowed_optimize(first, options_a)
        result_b = windowed_optimize(second, options_b)
        moves_a = [m.substitution.candidate_id() for m in result_a.moves]
        moves_b = [m.substitution.candidate_id() for m in result_b.moves]
        assert moves_a == moves_b
        assert write_blif(result_a.netlist) == write_blif(result_b.netlist)
        assert result_a.final_power == pytest.approx(result_b.final_power)

    def test_pool_spawn_time_reported_separately(self):
        netlist = generated(84, gates=60)
        options = windowed_options(jobs=2)
        optimizer = WindowedOptimizer(netlist, options)
        result = optimizer.run()
        assert "spawn" in result.phase_seconds
        assert "optimize" in result.phase_seconds
        assert result.phase_seconds["optimize"] >= 0.0


def conflict_netlist(builder):
    """g2 duplicates g1; their sink cones are disjoint otherwise."""
    a, b, c = builder.inputs("a", "b", "c")
    g1 = builder.and_(a, b, name="g1")
    g2 = builder.and_(a, b, name="g2")
    builder.output("o1", builder.nand_(g1, c, name="n1"))
    builder.output("o2", builder.nor_(g2, c, name="n2"))
    return builder.build()


def crafted_windows(netlist):
    """Two windows whose dying regions overlap on purpose.

    Window 0 will substitute g2 by g1 (killing g2); window 1's members
    include g2, so replaying window 0 must force window 1 through the
    resolver's deferred path.
    """
    w0 = extract_window(
        netlist, netlist.gate("g1"), radius=1, max_gates=10, index=0
    )
    w1 = extract_window(
        netlist, netlist.gate("g2"), radius=1, max_gates=10, index=1
    )
    return [w0, w1]


def crafted_move(target, source):
    return WindowMove(
        substitution=Substitution(kind="OS2", target=target, source1=source),
        added=(),
        substituting="",
        predicted=None,
        measured_power_gain=0.0,
        measured_area_delta=0.0,
    )


class InjectingOptimizer(WindowedOptimizer):
    """Bypass the pool: both windows 'propose' a move on the shared
    duplicate pair, so their dying regions overlap exactly."""

    def _dispatch(self, tasks):
        self.phase_seconds["spawn"] = 0.0
        return [
            (0, [crafted_move("g2", "g1")], {}, None),
            (1, [crafted_move("g1", "g2")], {}, None),
        ]


class DeferRecordingOptimizer(InjectingOptimizer):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fallback_calls = []

    def _reoptimize_deferred(self, outcome, probs):
        self.fallback_calls.append(outcome.window.index)
        return []


class TestConflictResolver:
    def test_overlapping_dying_regions_never_both_applied(
        self, builder, monkeypatch
    ):
        netlist = conflict_netlist(builder)
        reference = netlist.copy("ref")
        monkeypatch.setattr(
            "repro.transform.windowed.partition_windows",
            lambda n, radius, max_gates: crafted_windows(n),
        )
        optimizer = DeferRecordingOptimizer(netlist, windowed_options())
        result = optimizer.run()

        # Window 0 replayed: g2's dying region is gone, g1 survives.
        assert "g2" not in netlist.gates
        assert "g1" in netlist.gates
        # Window 1 shares g2 with the touched set -> deferred, and its
        # crafted counter-move (killing g1) was never replayed directly.
        assert optimizer.conflicts == [1]
        assert optimizer.fallback_calls == [1]
        assert [m.substitution.target for m in result.moves] == ["g2"]
        assert optimizer.outcomes[0].status == "applied"
        assert check_equivalence_tiers(reference, netlist).equal

    def test_deferred_window_reoptimized_from_live_netlist(
        self, builder, monkeypatch
    ):
        netlist = conflict_netlist(builder)
        reference = netlist.copy("ref")
        monkeypatch.setattr(
            "repro.transform.windowed.partition_windows",
            lambda n, radius, max_gates: crafted_windows(n),
        )
        optimizer = InjectingOptimizer(netlist, windowed_options())
        result = optimizer.run()

        assert optimizer.conflicts == [1]
        # The fallback re-extracted window 1 from the merged netlist, so
        # no surviving move can reference the dead g2.
        for move in result.moves:
            sub = move.substitution
            assert sub.source1 != "g2"
            assert sub.source2 != "g2"
        assert optimizer.outcomes[1].status in ("applied", "empty")
        assert check_equivalence_tiers(reference, netlist).equal

    def test_disjoint_windows_all_merge_without_deferral(self):
        netlist = generated(91, gates=50)
        options = windowed_options(window_size=12)
        optimizer = WindowedOptimizer(netlist, options)
        optimizer.run()
        statuses = {o.status for o in optimizer.outcomes}
        assert statuses <= {"applied", "empty", "conflict"}
        # Every conflicted window went through the fallback exactly once.
        assert len(optimizer.conflicts) == len(set(optimizer.conflicts))


class TestGuards:
    def test_requires_windowed_options(self):
        netlist = generated(1, gates=20)
        with pytest.raises(Exception, match="windowed=True"):
            WindowedOptimizer(netlist, OptimizeOptions())

    def test_delay_constraints_rejected_up_front(self):
        with pytest.raises(ValueError, match="delay"):
            OptimizeOptions(windowed=True, delay_limit=5.0)
