"""Cost-model registry and OptimizeOptions construction-time validation."""

from __future__ import annotations

import pytest

from repro.transform.cost import (
    COST_MODELS,
    AreaCost,
    CostModel,
    DelayCost,
    PowerCost,
    register_cost_model,
    resolve_cost_model,
)
from repro.transform.optimizer import (
    OptimizeOptions,
    PowerOptimizer,
    power_optimize,
)
from tests.conftest import make_random_netlist


class TestRegistry:
    def test_builtin_objectives_registered(self):
        assert COST_MODELS["power"] is PowerCost
        assert COST_MODELS["area"] is AreaCost
        assert COST_MODELS["delay"] is DelayCost

    def test_resolve_by_name(self):
        assert isinstance(resolve_cost_model("power"), PowerCost)

    def test_resolve_passes_instances_through(self):
        model = AreaCost()
        assert resolve_cost_model(model) is model

    def test_resolve_unknown_name(self):
        with pytest.raises(ValueError, match="unknown optimization objective"):
            resolve_cost_model("speed")

    def test_register_custom_model(self):
        class NegSize(CostModel):
            name = "_test_negsize"

            def score(self, optimizer, candidate):
                return -candidate.gain.area_delta

        try:
            register_cost_model(NegSize)
            assert isinstance(resolve_cost_model("_test_negsize"), NegSize)
            OptimizeOptions(objective="_test_negsize")  # now valid
        finally:
            del COST_MODELS["_test_negsize"]


class TestOptionsValidation:
    def test_unknown_objective(self):
        with pytest.raises(ValueError, match="unknown optimization objective"):
            OptimizeOptions(objective="speed")

    def test_negative_repeat(self):
        with pytest.raises(ValueError, match="repeat must be non-negative"):
            OptimizeOptions(repeat=-1)

    def test_negative_preselect(self):
        with pytest.raises(ValueError, match="preselect must be non-negative"):
            OptimizeOptions(preselect=-5)

    def test_conflicting_delay_options(self):
        with pytest.raises(ValueError, match="mutually\\s+exclusive"):
            OptimizeOptions(delay_limit=10.0, delay_slack_percent=5.0)

    def test_each_delay_option_alone_is_fine(self):
        assert OptimizeOptions(delay_limit=10.0).delay_limit == 10.0
        assert (
            OptimizeOptions(delay_slack_percent=5.0).delay_slack_percent == 5.0
        )

    def test_cost_model_instance_accepted(self):
        options = OptimizeOptions(objective=PowerCost())
        assert isinstance(options.objective, PowerCost)


class TestModelDrivenRuns:
    def test_instance_objective_matches_name(self, lib):
        base = make_random_netlist(lib, 5, 16, 2, seed=81)
        options = dict(num_patterns=256, max_rounds=2)
        by_name = power_optimize(
            base.copy("n"), OptimizeOptions(objective="power", **options)
        )
        by_instance = power_optimize(
            base.copy("i"), OptimizeOptions(objective=PowerCost(), **options)
        )
        assert [str(m.substitution) for m in by_name.moves] == [
            str(m.substitution) for m in by_instance.moves
        ]
        assert by_name.final_power == by_instance.final_power

    def test_optimizer_exposes_resolved_model(self, lib):
        netlist = make_random_netlist(lib, 5, 14, 2, seed=82)
        engine = PowerOptimizer(
            netlist, OptimizeOptions(objective="area", num_patterns=256)
        )
        assert isinstance(engine.cost_model, AreaCost)
