"""Tests for valid-clause analysis."""

import pytest

from repro.netlist.simulate import SimState, exhaustive_patterns
from repro.transform.clauses import (
    INVALID,
    UNKNOWN,
    VALID,
    Clause,
    Literal,
    clause_holds_in_simulation,
    find_clause_candidates,
    find_equivalent_signals,
    prove_clause,
)


@pytest.fixture
def and_chain(builder):
    """g = a·b, h = g·c: h -> g is a valid implication."""
    a, b, c = builder.inputs("a", "b", "c")
    g = builder.and_(a, b, name="g")
    h = builder.and_(g, c, name="h")
    builder.output("o", h)
    builder.output("og", g)
    return builder.build()


def sim_of(netlist):
    return SimState(netlist, exhaustive_patterns(netlist.input_names))


class TestSimulationFilter:
    def test_implication_detected(self, and_chain):
        sim = sim_of(and_chain)
        # h -> g, i.e. clause (!h + g).
        clause = Clause(Literal("h", False), Literal("g", True))
        assert clause_holds_in_simulation(sim, clause)

    def test_violated_clause_rejected(self, and_chain):
        sim = sim_of(and_chain)
        clause = Clause(Literal("g", False), Literal("h", True))  # g -> h
        assert not clause_holds_in_simulation(sim, clause)

    def test_candidates_contain_implication(self, and_chain):
        sim = sim_of(and_chain)
        candidates = find_clause_candidates(sim, signals=["g", "h"])
        rendered = {str(c) for c in candidates}
        assert "(g + !h)" in rendered or "(!h + g)" in rendered

    def test_max_clauses_cap(self, and_chain):
        sim = sim_of(and_chain)
        assert len(find_clause_candidates(sim, max_clauses=3)) == 3


class TestProof:
    def test_valid_clause_proven(self, and_chain):
        clause = Clause(Literal("h", False), Literal("g", True))
        assert prove_clause(and_chain, clause) == VALID

    def test_invalid_clause_refuted(self, and_chain):
        clause = Clause(Literal("g", False), Literal("h", True))
        assert prove_clause(and_chain, clause) == INVALID

    def test_abort_returns_unknown(self, and_chain):
        clause = Clause(Literal("h", False), Literal("g", True))
        assert prove_clause(and_chain, clause, backtrack_limit=0) == UNKNOWN

    def test_implication_rendering(self):
        clause = Clause(Literal("h", False), Literal("g", True))
        assert clause.as_implication() == "h -> g"

    def test_tautological_clause(self, and_chain):
        clause = Clause(Literal("g", True), Literal("g", False))
        assert prove_clause(and_chain, clause) == VALID


class TestEquivalences:
    def test_duplicate_gates_found(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.and_(a, b, name="g2")
        n = builder.nand_(a, b, name="n")
        builder.output("o1", g1)
        builder.output("o2", g2)
        builder.output("o3", n)
        nl = builder.build()
        relations = find_equivalent_signals(nl, sim_of(nl))
        rendered = {str(r) for r in relations}
        assert "g1 ==g2" in rendered
        # n == !g1 (antivalent).
        assert any("== !" in r and "n" in r for r in rendered)

    def test_no_false_positives(self, and_chain):
        relations = find_equivalent_signals(and_chain, sim_of(and_chain))
        assert all(r.a != r.b for r in relations)
        # g and h differ (on a=b=1, c=0), no relation between them.
        assert not any({r.a, r.b} == {"g", "h"} for r in relations)


class TestClauseCandidatesOnBenchmark:
    def test_implications_found_on_mapped_circuit(self, lib):
        from repro.bench.suite import build_benchmark
        from repro.netlist.simulate import SimState, random_patterns

        nl = build_benchmark("sqrt8", lib)
        sim = SimState(nl, random_patterns(nl.input_names, 1024, seed=2))
        candidates = find_clause_candidates(
            sim,
            signals=[g.name for g in list(nl.logic_gates())[:10]],
            max_clauses=200,
        )
        assert candidates
        # Spot-prove a handful; every proven-VALID clause must also hold
        # on a fresh simulation sample.
        fresh = SimState(nl, random_patterns(nl.input_names, 1024, seed=99))
        proven = 0
        for clause in candidates[:12]:
            if prove_clause(nl, clause, backtrack_limit=5000) == VALID:
                proven += 1
                assert clause_holds_in_simulation(fresh, clause), str(clause)
        assert proven > 0
