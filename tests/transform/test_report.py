"""Tests for move records and class statistics (Table-2 machinery)."""

import pytest

from repro.transform.gain import GainBreakdown
from repro.transform.report import (
    ALL_CLASSES,
    MoveRecord,
    class_statistics,
    format_class_table,
)
from repro.transform.substitution import IS2, OS2, OS3, Substitution


def record(kind, power_gain, area_delta, **sub_kwargs):
    defaults = {"target": "t", "source1": "s"}
    if kind in ("IS2", "IS3"):
        defaults["branch"] = ("x", 0)
    if kind in ("OS3", "IS3"):
        defaults.update(source2="u", new_cell="and2")
    defaults.update(sub_kwargs)
    return MoveRecord(
        substitution=Substitution(kind, **defaults),
        predicted=GainBreakdown(pg_a=power_gain, pg_b=0.0),
        measured_power_gain=power_gain,
        measured_area_delta=area_delta,
        round_index=1,
        circuit_delay_after=1.0,
    )


class TestClassStatistics:
    def test_aggregation(self):
        moves = [
            record(OS2, 2.0, -10.0),
            record(OS2, 1.0, -5.0),
            record(IS2, 1.0, 3.0),
            record(OS3, 0.5, 4.0),
        ]
        stats = class_statistics(moves)
        assert stats[OS2].count == 2
        assert stats[OS2].power_gain == pytest.approx(3.0)
        assert stats[OS2].area_delta == pytest.approx(-15.0)
        assert stats[IS2].area_delta == pytest.approx(3.0)
        assert stats["IS3"].count == 0

    def test_power_share(self):
        moves = [record(OS2, 3.0, 0.0), record(IS2, 1.0, 0.0)]
        stats = class_statistics(moves)
        total = sum(s.power_gain for s in stats.values())
        assert stats[OS2].power_share(total) == pytest.approx(0.75)

    def test_share_zero_total(self):
        stats = class_statistics([])
        assert stats[OS2].power_share(0.0) == 0.0
        assert stats[OS2].area_share(0.0) == 0.0

    def test_format_table(self):
        moves = [record(OS2, 2.0, -8.0), record(IS2, 2.0, 2.0)]
        text = format_class_table(moves)
        for kind in ALL_CLASSES:
            assert kind in text
        assert "%" in text

    def test_format_empty(self):
        text = format_class_table([])
        assert "OS2" in text
