"""Tests for the area and delay optimization objectives.

The same ATPG-transformation engine served area optimization (redundancy
addition/removal, the paper's ref [2]) and delay optimization (clause
analysis, ref [5]) before POWDER pointed it at power; these tests exercise
those roles.
"""

import pytest

from repro.equiv.checker import check_equivalent
from repro.timing.analysis import TimingAnalysis
from repro.transform.optimizer import OptimizeOptions, power_optimize
from tests.conftest import make_random_netlist


def options(objective, **overrides):
    base = dict(
        objective=objective, num_patterns=1024, repeat=10, max_rounds=3,
        backtrack_limit=5000,
    )
    base.update(overrides)
    return OptimizeOptions(**base)


class TestAreaObjective:
    def test_unknown_objective_rejected(self, figure2):
        # Rejected at construction time since OptimizeOptions validation.
        with pytest.raises(ValueError, match="unknown optimization objective"):
            OptimizeOptions(objective="speed")

    def test_duplicate_logic_removed(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.and_(b, a, name="g2")  # same function, swapped pins
        builder.output("o1", builder.not_(g1, name="n1"))
        builder.output("o2", builder.not_(g2, name="n2"))
        nl = builder.build()
        ref = nl.copy("ref")
        result = power_optimize(nl, options("area", self_check=True))
        assert result.final_area < result.initial_area
        assert check_equivalent(ref, nl).equal

    @pytest.mark.parametrize("seed", [401, 402])
    def test_area_never_increases(self, lib, seed):
        nl = make_random_netlist(lib, 6, 18, 3, seed=seed)
        ref = nl.copy("ref")
        result = power_optimize(nl, options("area"))
        for move in result.moves:
            assert move.measured_area_delta < 0, str(move.substitution)
        assert result.final_area <= result.initial_area
        assert check_equivalent(ref, nl).equal

    def test_area_objective_beats_power_on_area(self, lib):
        base = make_random_netlist(lib, 6, 20, 3, seed=403)
        area_run = power_optimize(base.copy("a"), options("area"))
        power_run = power_optimize(base.copy("p"), options("power"))
        assert area_run.final_area <= power_run.final_area + 1e-9


class TestDelayObjective:
    def test_delay_never_increases(self, lib):
        nl = make_random_netlist(lib, 6, 20, 3, seed=411)
        ref = nl.copy("ref")
        initial = TimingAnalysis(nl).circuit_delay
        result = power_optimize(
            nl, options("delay", preselect=6, max_moves=6)
        )
        final = TimingAnalysis(nl).circuit_delay
        assert final <= initial + 1e-9
        for move in result.moves:
            # Every accepted move strictly improved the then-current delay;
            # the recorded post-move delays must be non-increasing.
            pass
        delays = [m.circuit_delay_after for m in result.moves]
        assert all(b <= a + 1e-9 for a, b in zip(delays, delays[1:]))
        assert check_equivalent(ref, nl).equal

    def test_chain_shortcut_found(self, builder):
        # g duplicated through a slow inverter chain; the direct signal is
        # a faster permissible substitute for the chain's output.
        a, b = builder.inputs("a", "b")
        g = builder.and_(a, b, name="g")
        slow = g
        for i in range(4):
            slow = builder.not_(slow, name=f"s{i}")
        # s3 == g (4 inversions); merge with other logic.
        out = builder.or_(slow, a, name="out")
        builder.output("o", out)
        nl = builder.build()
        ref = nl.copy("ref")
        initial = TimingAnalysis(nl).circuit_delay
        result = power_optimize(nl, options("delay"))
        final = TimingAnalysis(nl).circuit_delay
        assert final < initial  # the chain must be bypassed
        assert check_equivalent(ref, nl).equal
