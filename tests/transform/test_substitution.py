"""Tests for the substitution move model."""

import pytest

from repro.errors import TransformError
from repro.netlist.verify import check_netlist
from repro.transform.substitution import (
    IS2,
    IS3,
    OS2,
    OS3,
    Substitution,
    apply_substitution,
    apply_to_copy,
)


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(TransformError):
            Substitution("XX2", "a", "b")

    def test_is2_needs_branch(self):
        with pytest.raises(TransformError):
            Substitution(IS2, "a", "b")

    def test_os2_rejects_branch(self):
        with pytest.raises(TransformError):
            Substitution(OS2, "a", "b", branch=("f", 0))

    def test_os3_needs_cell(self):
        with pytest.raises(TransformError):
            Substitution(OS3, "a", "b")

    def test_os2_rejects_second_source(self):
        with pytest.raises(TransformError):
            Substitution(OS2, "a", "b", source2="c", new_cell="and2")

    def test_validate_against(self, figure2):
        good = Substitution(OS2, "d", "e")
        assert good.validate_against(figure2)
        assert not Substitution(OS2, "zz", "e").validate_against(figure2)
        assert not Substitution(OS2, "d", "zz").validate_against(figure2)

    def test_validate_branch(self, figure2):
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        assert Substitution(
            IS2, "a", "e", branch=("d", pin)
        ).validate_against(figure2)
        # Wrong pin driver
        assert not Substitution(
            IS2, "b", "e", branch=("d", pin)
        ).validate_against(figure2)

    def test_validate_new_cell(self, figure2):
        assert not Substitution(
            OS3, "d", "a", source2="b", new_cell="nope"
        ).validate_against(figure2)

    def test_str_forms(self):
        assert "OS2" in str(Substitution(OS2, "a", "b"))
        assert "!" in str(Substitution(OS2, "a", "b", invert1=True))
        s = Substitution(IS3, "a", "b", branch=("f", 1), source2="c", new_cell="and2")
        assert "IS3" in str(s) and "and2" in str(s)


class TestApplication:
    def test_is2_rewires_branch(self, figure2):
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        sub = Substitution(IS2, "a", "e", branch=("d", pin))
        applied = apply_substitution(figure2, sub)
        check_netlist(figure2)
        assert d.fanins[pin].name == "e"
        assert applied.removed == []
        assert "d" in applied.resim_roots

    def test_os2_removes_dominated_region(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.not_(g1, name="g2")
        alt = builder.nand_(a, b, name="alt")
        out = builder.or_(g2, alt, name="out")
        builder.output("o", out)
        nl = builder.build()
        # g2 == alt functionally (nand == not and); substitute stem g2 by alt.
        applied = apply_substitution(nl, Substitution(OS2, "g2", "alt"))
        check_netlist(nl)
        assert set(applied.removed) == {"g1", "g2"}
        assert applied.area_delta < 0

    def test_os2_moves_po(self, figure2):
        apply_substitution(figure2, Substitution(OS2, "e", "d"))
        check_netlist(figure2)
        assert figure2.outputs["e_out"].name == "d"
        assert "e" not in figure2.gates

    def test_inverted_source_inserts_inverter(self, figure2, lib):
        sub = Substitution(OS2, "e", "d", invert1=True)
        applied = apply_substitution(figure2, sub)
        check_netlist(figure2)
        assert len(applied.added) == 1
        inv = figure2.gate(applied.added[0])
        assert inv.cell.is_inverter()
        assert inv.fanins[0].name == "d"

    def test_os3_inserts_gate(self, figure2, lib):
        sub = Substitution(OS3, "e", "a", source2="b", new_cell="and2")
        applied = apply_substitution(figure2, sub)
        check_netlist(figure2)
        new = figure2.gate(applied.added[0])
        assert new.cell.name == "and2"
        assert figure2.outputs["e_out"] is new

    def test_is3_inserts_gate(self, figure2):
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        sub = Substitution(
            IS3, "a", "a", branch=("d", pin), source2="b", new_cell="and2"
        )
        applied = apply_substitution(figure2, sub)
        check_netlist(figure2)
        assert d.fanins[pin].cell.name == "and2"

    def test_stale_substitution_rejected(self, figure2):
        sub = Substitution(OS2, "d", "e")
        apply_substitution(figure2, sub)
        with pytest.raises(TransformError):
            apply_substitution(figure2, sub)  # d no longer exists

    def test_os3_cell_arity_checked(self, figure2):
        sub = Substitution(OS3, "d", "a", source2="b", new_cell="inv1")
        with pytest.raises(TransformError):
            apply_substitution(figure2, sub)

    def test_apply_to_copy_leaves_original(self, figure2):
        trial, applied = apply_to_copy(figure2, Substitution(OS2, "d", "e"))
        assert "d" in figure2.gates
        assert "d" not in trial.gates
        check_netlist(figure2)
        check_netlist(trial)
