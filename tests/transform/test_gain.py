"""Tests for the PG_A / PG_B / PG_C gain analysis (eqs. 2-5).

The central invariant: with the simulation probability engine, ``full_gain``
must predict the estimator's before/after difference *exactly* (same
pattern sample, eq. 2).
"""

import pytest

from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.transform.gain import full_gain, predict_dying_region, quick_gain
from repro.transform.substitution import (
    IS2,
    OS2,
    OS3,
    Substitution,
    apply_substitution,
)
from tests.conftest import make_random_netlist


def exhaustive_estimator(netlist):
    return PowerEstimator(
        netlist, SimulationProbability(netlist, exhaustive=True)
    )


def assert_gain_exact(netlist, substitution):
    """full_gain.total must equal the measured estimator delta."""
    est = exhaustive_estimator(netlist)
    predicted = full_gain(est, substitution)
    before = est.total()
    area_before = netlist.total_area()
    applied = apply_substitution(netlist, substitution)
    est.update_after_edit(
        [netlist.gate(n) for n in applied.resim_roots if n in netlist.gates]
    )
    measured = before - est.total()
    assert predicted.total == pytest.approx(measured, abs=1e-9), str(substitution)
    assert predicted.area_delta == pytest.approx(
        netlist.total_area() - area_before
    )
    assert set(predicted.dying) == set(applied.removed)


class TestDyingRegion:
    def test_is2_branch_no_death(self, figure2):
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        sub = Substitution(IS2, "a", "e", branch=("d", pin))
        assert predict_dying_region(figure2, sub) == []

    def test_os2_region(self, figure2):
        region = predict_dying_region(figure2, Substitution(OS2, "d", "e"))
        assert {g.name for g in region} == {"d"}

    def test_os2_cascading_region(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.not_(g1, name="g2")
        alt = builder.nand_(a, b, name="alt")
        out = builder.or_(g2, alt, name="out")
        builder.output("o", out)
        nl = builder.build()
        region = predict_dying_region(nl, Substitution(OS2, "g2", "alt"))
        assert {g.name for g in region} == {"g1", "g2"}

    def test_source_in_region_rejected(self, builder):
        # Substituting g2 by g1 keeps g1 alive: it must not be in the dying
        # region, and the region must stop above it.
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.not_(g1, name="g2")
        builder.output("o", g2)
        nl = builder.build()
        region = predict_dying_region(nl, Substitution(OS2, "g2", "g1", invert1=True))
        assert {g.name for g in region} == {"g2"}


class TestQuickGainFigure2:
    def test_figure2_is2_components(self, figure2):
        # The paper's rewiring: branch a@d <- e.
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        sub = Substitution(IS2, "a", "e", branch=("d", pin))
        est = exhaustive_estimator(figure2)
        gain = quick_gain(est, sub)
        # PG_A = C(branch) * E(a) = 2.0 * 0.5 = 1.0
        assert gain.pg_a == pytest.approx(1.0)
        # PG_B = -C(branch) * E(e) = -2.0 * 0.375 = -0.75
        assert gain.pg_b == pytest.approx(-0.75)
        full = full_gain(est, sub)
        # d keeps E = 0.5 ((ab) xor c), f unchanged: PG_C = 0.
        assert full.pg_c == pytest.approx(0.0)
        assert full.total == pytest.approx(0.25)

    def test_quick_gain_has_no_pg_c(self, figure2):
        est = exhaustive_estimator(figure2)
        gain = quick_gain(est, Substitution(OS2, "d", "e"))
        assert not gain.includes_pg_c
        assert gain.pg_c == 0.0


class TestExactness:
    def test_is2_exact(self, figure2):
        d = figure2.gate("d")
        pin = [i for i, g in enumerate(d.fanins) if g.name == "a"][0]
        assert_gain_exact(
            figure2, Substitution(IS2, "a", "e", branch=("d", pin))
        )

    def test_os2_exact(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.not_(g1, name="g2")
        alt = builder.nand_(a, b, name="alt")
        out = builder.or_(g2, alt, name="out")
        builder.output("o", out)
        assert_gain_exact(builder.build(), Substitution(OS2, "g2", "alt"))

    def test_os2_inverted_exact(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.and_(a, b, name="g1")
        g2 = builder.not_(g1, name="g2")
        out = builder.or_(g2, a, name="out")
        builder.output("o", out)
        nl = builder.build()
        assert_gain_exact(nl, Substitution(OS2, "g2", "g1", invert1=True))

    def test_os3_exact(self, figure2):
        assert_gain_exact(
            figure2,
            Substitution(OS3, "e", "a", source2="b", new_cell="and2"),
        )

    def test_os3_xor_exact(self, figure2):
        assert_gain_exact(
            figure2,
            Substitution(OS3, "d", "a", source2="c", new_cell="xor2"),
        )

    def test_random_candidates_exact(self, lib):
        # Exactness over every generated candidate on random netlists.
        from repro.transform.candidates import (
            CandidateOptions,
            generate_candidates,
        )

        for seed in (41, 42):
            nl = make_random_netlist(lib, 5, 14, 3, seed=seed)
            est = PowerEstimator(
                nl, SimulationProbability(nl, exhaustive=True)
            )
            candidates = generate_candidates(
                est, CandidateOptions(max_per_target=2, max_total=25)
            )
            for candidate in candidates[:15]:
                trial = nl.copy("t")
                assert_gain_exact(trial, candidate.substitution)


class TestPgcDominance:
    def test_pgc_can_dominate(self, lib):
        """§3.3: "PG_C can dominate the power gain of a substitution".

        Hunt across random circuits for at least one candidate whose TFO
        re-estimation term outweighs the local PG_A + PG_B part."""
        from repro.transform.candidates import (
            CandidateOptions,
            generate_candidates,
        )

        found_dominant = False
        for seed in range(70, 90):
            nl = make_random_netlist(lib, 6, 18, 3, seed=seed)
            est = exhaustive_estimator(nl)
            for candidate in generate_candidates(
                est, CandidateOptions(max_per_target=4, max_total=60)
            ):
                gain = full_gain(est, candidate.substitution)
                if abs(gain.pg_c) > abs(gain.pg_a + gain.pg_b) > 0:
                    found_dominant = True
                    break
            if found_dominant:
                break
        assert found_dominant, "no PG_C-dominated candidate found"

    def test_pgc_sign_varies(self, lib):
        """§3.3: PG_C "can be positive or negative"."""
        from repro.transform.candidates import (
            CandidateOptions,
            generate_candidates,
        )

        signs = set()
        for seed in range(70, 90):
            nl = make_random_netlist(lib, 6, 18, 3, seed=seed)
            est = exhaustive_estimator(nl)
            for candidate in generate_candidates(
                est, CandidateOptions(max_per_target=4, max_total=60)
            ):
                gain = full_gain(est, candidate.substitution)
                if gain.pg_c > 1e-9:
                    signs.add("+")
                elif gain.pg_c < -1e-9:
                    signs.add("-")
                if signs == {"+", "-"}:
                    return
        assert signs == {"+", "-"}
