"""The whole flow on the bundled NAND/NOR-only genlib.

The nandnor library has no AND/OR/XOR cells, no buffer, and alien
(``g_``-prefixed) gate names — any code path that quietly assumes a
built-in cell name, a positive-phase primitive, or the standard library's
area scale fails loudly here.  Parametrizing the core optimize → lint →
equivalence flow over both libraries is the regression net for the
library-capability refactor.
"""

import pytest

from repro.bench.suite import build_benchmark
from repro.equiv.checker import check_equivalent
from repro.fuzz.harness import FuzzOptions, run_fuzz
from repro.library.genlib import parse_genlib_file
from repro.library.standard import standard_library
from repro.lint.rules import lint_netlist
from repro.pipeline import run_pipeline
from repro.transform.optimizer import OptimizeOptions, power_optimize

NANDNOR = "benchmarks/genlib/nandnor.genlib"


def _libraries():
    return {
        "standard": standard_library(),
        "nandnor": parse_genlib_file(NANDNOR),
    }


@pytest.fixture(scope="module", params=["standard", "nandnor"])
def lib(request):
    return _libraries()[request.param]


class TestNandnorLibrary:
    def test_validates_and_has_no_positive_primitives(self):
        lib = parse_genlib_file(NANDNOR)
        lib.validate()
        for name in lib.cells:
            assert name.startswith("g_")
        inverter = lib.inverter()
        assert inverter.name == "g_inv"
        # The capability query still finds 2-input insertion cells.
        assert lib.insertion_cells()

    def test_collides_with_nothing_builtin(self):
        builtin = set(standard_library().cells)
        assert not builtin & set(parse_genlib_file(NANDNOR).cells)


@pytest.mark.parametrize("name", ["rd53", "sqrt8"])
class TestOptimizeLintVerify:
    def test_flow_stays_clean(self, lib, name):
        netlist = build_benchmark(name, lib)
        reference = netlist.copy("ref")
        result = power_optimize(
            netlist,
            OptimizeOptions(
                num_patterns=1024, repeat=10, max_rounds=3, max_moves=20
            ),
        )
        assert result.final_power <= result.initial_power + 1e-9
        assert lint_netlist(netlist).errors == []
        assert check_equivalent(reference, netlist, num_patterns=2048).equal

    def test_pipeline_spec_flow(self, lib, name):
        netlist = build_benchmark(name, lib)
        reference = netlist.copy("ref")
        outcome = run_pipeline(
            netlist,
            "bdd_resynth; powder(repeat=10, max_rounds=2)",
            OptimizeOptions(num_patterns=512),
        )
        assert lint_netlist(outcome.netlist).errors == []
        assert check_equivalent(reference, outcome.netlist).equal


class TestFuzzOnAltLibrary:
    def test_quick_campaign_stays_green(self):
        report = run_fuzz(
            FuzzOptions(
                seed=11,
                count=3,
                num_patterns=256,
                repeat=10,
                max_rounds=2,
                check_rerun=False,
                check_engine_identity=False,
                check_pipeline_identity=False,
                library=parse_genlib_file(NANDNOR),
            )
        )
        assert report.ok, report.summary()
