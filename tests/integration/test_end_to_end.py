"""End-to-end integration tests: spec -> synthesis -> POWDER -> verification.

These exercise the complete pipeline the experiments run, and assert the
semantic invariants the paper claims: functional equivalence after
optimization, monotone power improvement, and delay constraints honoured.
"""

import pytest

from repro.bench.suite import build_benchmark
from repro.equiv.checker import check_equivalent
from repro.netlist.verify import check_netlist
from repro.timing.analysis import TimingAnalysis
from repro.transform.optimizer import OptimizeOptions, power_optimize


def options(**overrides):
    base = dict(
        num_patterns=1024, repeat=8, max_rounds=3, max_moves=10,
        backtrack_limit=5000,
    )
    base.update(overrides)
    return OptimizeOptions(**base)


@pytest.mark.parametrize("name", ["rd53", "sqrt8", "misex1", "alu2"])
class TestPipelinePerCircuit:
    def test_optimization_preserves_function(self, lib, name):
        netlist = build_benchmark(name, lib)
        reference = netlist.copy("ref")
        result = power_optimize(netlist, options(self_check=True))
        check_netlist(netlist)
        assert result.final_power <= result.initial_power
        verdict = check_equivalent(reference, netlist, num_patterns=2048)
        assert verdict.equal, name

    def test_constrained_mode_never_slower(self, lib, name):
        netlist = build_benchmark(name, lib)
        initial_delay = TimingAnalysis(netlist).circuit_delay
        power_optimize(netlist, options(delay_slack_percent=0.0))
        final_delay = TimingAnalysis(netlist).circuit_delay
        assert final_delay <= initial_delay + 1e-9, name


class TestCrossChecks:
    def test_unconstrained_at_least_as_good_as_constrained(self, lib):
        base = build_benchmark("misex1", lib)
        unc = power_optimize(base.copy("u"), options())
        con = power_optimize(base.copy("c"), options(delay_slack_percent=0.0))
        # The greedy is order-dependent, but the constrained run can only
        # discard moves, so allow a small tolerance.
        assert unc.final_power <= con.final_power * 1.05

    def test_per_move_accounting_sums(self, lib):
        netlist = build_benchmark("rd53", lib)
        result = power_optimize(netlist, options())
        measured = sum(m.measured_power_gain for m in result.moves)
        assert result.initial_power - result.final_power == pytest.approx(
            measured
        )
        area_delta = sum(m.measured_area_delta for m in result.moves)
        assert result.final_area - result.initial_area == pytest.approx(
            area_delta
        )

    def test_second_pass_finds_little(self, lib):
        # POWDER is a fixed-point style greedy: a second run on its own
        # output should achieve much less than the first.
        netlist = build_benchmark("sqrt8", lib)
        first = power_optimize(netlist, options(max_moves=None, max_rounds=6))
        second = power_optimize(netlist, options(max_moves=None, max_rounds=6))
        if first.power_reduction_percent > 0:
            assert (
                second.power_reduction_percent
                <= first.power_reduction_percent
            )

    def test_blif_roundtrip_of_optimized(self, lib, tmp_path):
        from repro.netlist.blif import parse_blif, write_blif

        netlist = build_benchmark("misex1", lib)
        power_optimize(netlist, options())
        text = write_blif(netlist)
        again = parse_blif(text, lib)
        check_netlist(again)
        assert check_equivalent(netlist, again).equal
