"""Tests for the table/figure experiment harnesses (reduced effort)."""

import pytest

from repro.experiments.common import (
    QUICK_CONFIG,
    ExperimentConfig,
    initial_metrics,
    run_circuit,
)
from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.table1 import Table1Row, format_table1, run_table1
from repro.experiments.table2 import (
    PAPER_POWER_SHARES,
    format_table2,
    run_table2,
    table2_from_runs,
)

TINY = ExperimentConfig(
    num_patterns=512, repeat=6, max_rounds=2, max_moves=6, backtrack_limit=2000
)


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(["rd53", "sqrt8"], TINY)


class TestRunCircuit:
    def test_runs_both_modes(self):
        run = run_circuit("sqrt8", TINY)
        assert run.unconstrained is not None
        assert run.constrained is not None
        assert run.initial_power > 0
        assert run.cpu_seconds > 0

    def test_constrained_respects_delay(self):
        run = run_circuit("rd53", TINY, unconstrained=False)
        assert run.constrained.final_delay <= run.initial_delay + 1e-9

    def test_modes_can_be_skipped(self):
        run = run_circuit("sqrt8", TINY, constrained=False)
        assert run.constrained is None

    def test_initial_metrics_positive(self, lib):
        from repro.bench.suite import build_benchmark

        nl = build_benchmark("sqrt8", lib)
        power, area, delay = initial_metrics(nl, TINY)
        assert power > 0 and area > 0 and delay > 0


class TestTable1:
    def test_rows_and_totals(self, table1_result):
        assert len(table1_result.rows) == 2
        assert table1_result.total_initial_power == pytest.approx(
            sum(r.initial_power for r in table1_result.rows)
        )
        # Optimization never increases power.
        assert table1_result.total_unc_power <= table1_result.total_initial_power
        assert table1_result.unc_power_reduction_pct >= 0

    def test_formatting(self, table1_result):
        text = format_table1(table1_result)
        assert "rd53" in text
        assert "reduction%" in text
        assert "paper" in text

    def test_row_from_run(self):
        run = run_circuit("sqrt8", TINY)
        row = Table1Row.from_run(run)
        assert row.circuit == "sqrt8"
        assert row.unc_power <= row.initial_power


class TestTable2:
    def test_from_runs(self, table1_result):
        result = table2_from_runs(table1_result.runs)
        shares = [result.power_share_pct(k) for k in PAPER_POWER_SHARES]
        if result.total_power_gain > 0:
            assert sum(shares) == pytest.approx(100.0)

    def test_formatting(self, table1_result):
        result = table2_from_runs(table1_result.runs)
        text = format_table2(result)
        assert "OS2" in text and "paper" in text

    def test_run_table2_reuses(self, table1_result):
        result = run_table2(table1=table1_result)
        assert result.stats


class TestFigure6:
    def test_sweep_monotone_constraints(self):
        result = run_figure6(
            circuits=["rd53"], slack_percents=(0, 100), config=TINY
        )
        assert len(result.points) == 2
        p0, p100 = result.points
        # Looser constraint can only help (same greedy, more freedom) —
        # allow tiny noise from the greedy order.
        assert p100.relative_power <= p0.relative_power + 0.05
        # Delay never exceeds its constraint.
        assert p0.relative_delay <= 1.0 + 1e-9
        assert p100.relative_delay <= 2.0 + 1e-9

    def test_formatting(self):
        result = run_figure6(
            circuits=["sqrt8"], slack_percents=(0,), config=TINY
        )
        text = format_figure6(result)
        assert "trade-off" in text
        assert "+0%" in text or "+  0%" in text or "0%" in text
