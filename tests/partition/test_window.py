"""Property suite for window extraction (:mod:`repro.partition.window`).

Hypothesis drives the extraction over generator netlists and pins the
partition contract: full coverage, boundary annotations that agree with
an independent from-scratch recomputation, and byte-deterministic
results across runs and netlist copies.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.fuzz.generator import SHAPES, GeneratorConfig, random_mapped_netlist
from repro.library.standard import standard_library
from repro.netlist.traverse import topological_index
from repro.partition import (
    Window,
    extract_window,
    partition_windows,
    recompute_boundary,
)

LIB = standard_library()


def generated(seed, shape="random", gates=60):
    config = GeneratorConfig(
        seed=seed,
        shape=shape,
        min_gates=gates,
        max_gates=gates,
        min_inputs=4,
        max_inputs=8,
    )
    return random_mapped_netlist(config, LIB)


def reference_boundary(netlist, member_names):
    """Independent re-derivation of (inputs, outputs) from raw edges."""
    members = set(member_names)
    index = topological_index(netlist)
    ordered = sorted(member_names, key=lambda n: index[id(netlist.gate(n))])
    inputs: dict = {}
    outputs = []
    for name in ordered:
        gate = netlist.gate(name)
        for fanin in gate.fanins:
            if fanin.name not in members:
                inputs.setdefault(fanin.name)
        external = any(s.name not in members for s, _pin in gate.fanouts)
        if external or gate.po_names:
            outputs.append(name)
    return tuple(inputs), tuple(outputs)


windows_cases = st.tuples(
    st.integers(min_value=0, max_value=400),
    st.sampled_from(SHAPES),
    st.integers(min_value=12, max_value=90),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=4, max_value=40),
)


class TestPartitionProperties:
    @settings(max_examples=25, deadline=None)
    @given(windows_cases)
    def test_every_gate_in_at_least_one_window(self, case):
        seed, shape, gates, radius, max_gates = case
        netlist = generated(seed, shape, gates)
        windows = partition_windows(netlist, radius=radius, max_gates=max_gates)
        covered = set()
        for window in windows:
            assert len(window.members) <= max_gates
            covered.update(window.members)
        assert covered == {g.name for g in netlist.logic_gates()}

    @settings(max_examples=25, deadline=None)
    @given(windows_cases)
    def test_boundaries_match_from_scratch_recomputation(self, case):
        seed, shape, gates, radius, max_gates = case
        netlist = generated(seed, shape, gates)
        for window in partition_windows(
            netlist, radius=radius, max_gates=max_gates
        ):
            inputs, outputs = reference_boundary(netlist, window.members)
            assert window.inputs == inputs
            assert window.outputs == outputs
            members = [netlist.gate(n) for n in window.members]
            lib_inputs, lib_outputs = recompute_boundary(netlist, members)
            assert tuple(lib_inputs) == inputs
            assert tuple(lib_outputs) == outputs

    @settings(max_examples=15, deadline=None)
    @given(windows_cases)
    def test_extraction_is_deterministic_across_runs_and_copies(self, case):
        seed, shape, gates, radius, max_gates = case
        first = partition_windows(
            generated(seed, shape, gates), radius=radius, max_gates=max_gates
        )
        again = partition_windows(
            generated(seed, shape, gates), radius=radius, max_gates=max_gates
        )
        copied = partition_windows(
            generated(seed, shape, gates).copy(),
            radius=radius,
            max_gates=max_gates,
        )
        for left in (again, copied):
            assert [w.members for w in left] == [w.members for w in first]
            assert [w.inputs for w in left] == [w.inputs for w in first]
            assert [w.outputs for w in left] == [w.outputs for w in first]
            assert [w.overlap for w in left] == [w.overlap for w in first]

    @settings(max_examples=15, deadline=None)
    @given(windows_cases)
    def test_overlap_names_shared_members_exactly(self, case):
        seed, shape, gates, radius, max_gates = case
        netlist = generated(seed, shape, gates)
        windows = partition_windows(netlist, radius=radius, max_gates=max_gates)
        counts: dict = {}
        for window in windows:
            for name in window.members:
                counts[name] = counts.get(name, 0) + 1
        for window in windows:
            expected = {n for n in window.members if counts[n] > 1}
            assert window.overlap == expected


class TestExtractWindow:
    def test_members_in_topological_order(self):
        netlist = generated(9, gates=50)
        seed = next(iter(netlist.logic_gates()))
        window = extract_window(netlist, seed, radius=3, max_gates=20)
        index = topological_index(netlist)
        positions = [index[id(netlist.gate(n))] for n in window.members]
        assert positions == sorted(positions)
        assert seed.name in window.members
        assert window.seeds == (seed.name,)

    def test_radius_one_is_immediate_neighbourhood(self):
        netlist = generated(3, gates=40)
        seed = max(netlist.logic_gates(), key=lambda g: g.fanout_count())
        window = extract_window(netlist, seed, radius=1, max_gates=1000)
        neighbours = {seed.name}
        neighbours.update(
            f.name for f in seed.fanins if not f.is_input
        )
        neighbours.update(g.name for g in seed.fanout_gates())
        assert set(window.members) == neighbours

    def test_max_gates_caps_membership(self):
        netlist = generated(4, gates=80)
        seed = next(iter(netlist.logic_gates()))
        window = extract_window(netlist, seed, radius=10, max_gates=7)
        assert len(window.members) == 7

    def test_seed_validation(self):
        netlist = generated(5, gates=20)
        pi = netlist.gate(netlist.input_names[0])
        gate = next(iter(netlist.logic_gates()))
        with pytest.raises(NetlistError, match="primary input"):
            extract_window(netlist, pi, radius=2, max_gates=10)
        with pytest.raises(NetlistError, match="radius"):
            extract_window(netlist, gate, radius=0, max_gates=10)
        with pytest.raises(NetlistError, match="size"):
            extract_window(netlist, gate, radius=2, max_gates=0)
        foreign = generated(6, gates=20)
        with pytest.raises(NetlistError, match="does not belong"):
            extract_window(foreign, gate, radius=2, max_gates=10)

    def test_single_window_swallows_small_netlist(self):
        netlist = generated(7, gates=15)
        windows = partition_windows(netlist, radius=50, max_gates=10_000)
        assert len(windows) == 1
        window = windows[0]
        assert window.overlap == frozenset()
        assert set(window.members) == {g.name for g in netlist.logic_gates()}
        assert isinstance(window, Window)
        assert "window[0]" in str(window)
