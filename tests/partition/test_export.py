"""Sub-netlist export (:mod:`repro.partition.export`): lint-cleanliness,
electrical fidelity, BLIF byte-determinism, and boundary bookkeeping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.fuzz.generator import SHAPES, GeneratorConfig, random_mapped_netlist
from repro.library.standard import standard_library
from repro.lint import lint_netlist
from repro.netlist.blif import parse_blif, write_blif
from repro.partition import export_window, extract_window, partition_windows

LIB = standard_library()


def generated(seed, shape="random", gates=60):
    config = GeneratorConfig(
        seed=seed,
        shape=shape,
        min_gates=gates,
        max_gates=gates,
        min_inputs=4,
        max_inputs=8,
    )
    return random_mapped_netlist(config, LIB)


export_cases = st.tuples(
    st.integers(min_value=0, max_value=300),
    st.sampled_from(SHAPES),
    st.integers(min_value=12, max_value=80),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=4, max_value=30),
)


class TestExportProperties:
    @settings(max_examples=20, deadline=None)
    @given(export_cases)
    def test_sub_netlists_lint_clean_at_error_severity(self, case):
        seed, shape, gates, radius, max_gates = case
        netlist = generated(seed, shape, gates)
        for window in partition_windows(
            netlist, radius=radius, max_gates=max_gates
        ):
            sub, _boundary = export_window(netlist, window)
            assert lint_netlist(sub).errors == []

    @settings(max_examples=20, deadline=None)
    @given(export_cases)
    def test_member_loads_match_parent_exactly(self, case):
        seed, shape, gates, radius, max_gates = case
        netlist = generated(seed, shape, gates)
        for window in partition_windows(
            netlist, radius=radius, max_gates=max_gates
        ):
            sub, _boundary = export_window(netlist, window)
            for name in window.members:
                parent_load = netlist.load_of(netlist.gate(name))
                sub_load = sub.load_of(sub.gate(name))
                assert sub_load == pytest.approx(parent_load, abs=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(export_cases)
    def test_export_bytes_deterministic(self, case):
        seed, shape, gates, radius, max_gates = case

        def render():
            netlist = generated(seed, shape, gates)
            return [
                write_blif(export_window(netlist, w)[0])
                for w in partition_windows(
                    netlist, radius=radius, max_gates=max_gates
                )
            ]

        assert render() == render()

    @settings(max_examples=10, deadline=None)
    @given(export_cases)
    def test_blif_round_trip_with_boundary_loads(self, case):
        seed, shape, gates, radius, max_gates = case
        netlist = generated(seed, shape, gates)
        for window in partition_windows(
            netlist, radius=radius, max_gates=max_gates
        ):
            sub, boundary = export_window(netlist, window)
            text = write_blif(sub)
            parsed = parse_blif(text, LIB)
            boundary.apply_loads(parsed)
            assert write_blif(parsed) == text
            assert parsed.output_loads == sub.output_loads


class TestBoundarySemantics:
    def test_every_window_output_is_a_sub_po(self):
        netlist = generated(21, gates=70)
        for window in partition_windows(netlist, radius=2, max_gates=12):
            sub, _boundary = export_window(netlist, window)
            exposed = {gate.name for gate in sub.outputs.values()}
            assert set(window.outputs) <= exposed

    def test_synthetic_po_carries_external_load_sum(self):
        netlist = generated(22, gates=70)
        windows = partition_windows(netlist, radius=2, max_gates=10)
        checked = 0
        for window in windows:
            members = set(window.members)
            sub, boundary = export_window(netlist, window)
            for po, member in boundary.synthetic_pos.items():
                gate = netlist.gate(member)
                expected = sum(
                    sink.cell.pins[pin].load
                    for sink, pin in gate.fanouts
                    if sink.name not in members
                )
                assert boundary.po_loads[po] == pytest.approx(expected)
                assert sub.output_loads[po] == pytest.approx(expected)
                checked += 1
        assert checked, "partition produced no synthetic POs to check"

    def test_real_po_loads_preserved(self):
        netlist = generated(23, gates=50)
        po_name = next(iter(netlist.outputs))
        netlist.output_loads[po_name] = 7.5
        for window in partition_windows(netlist, radius=3, max_gates=15):
            driver = netlist.outputs[po_name]
            if driver.name not in window.members:
                continue
            sub, boundary = export_window(netlist, window)
            assert sub.output_loads[po_name] == 7.5
            assert boundary.po_loads[po_name] == 7.5
            break
        else:  # pragma: no cover - coverage guarantees a window
            pytest.fail("no window contained the PO driver")

    def test_boundary_probabilities_copied_for_window_inputs_only(self):
        netlist = generated(24, gates=60)
        window = partition_windows(netlist, radius=2, max_gates=8)[0]
        probs = {name: 0.25 for name in window.inputs}
        probs["not_a_boundary_signal"] = 0.9
        _sub, boundary = export_window(netlist, window, probabilities=probs)
        assert boundary.input_probs == {name: 0.25 for name in window.inputs}

    def test_apply_loads_rejects_unknown_port(self):
        netlist = generated(25, gates=40)
        window = partition_windows(netlist, radius=2, max_gates=8)[0]
        sub, boundary = export_window(netlist, window)
        boundary.po_loads["no_such_port"] = 1.0
        with pytest.raises(NetlistError, match="unknown PO port"):
            boundary.apply_loads(sub)
