#!/usr/bin/env python
"""Quantifying the paper's zero-delay assumption.

The power model POWDER optimizes is zero-delay; the paper notes glitches
"typically contribute about 20%" and argues pre-layout path delays are too
unreliable to model them.  This example measures the glitch share of a
benchmark under the linear-delay timing model, before and after POWDER —
checking that optimizing the zero-delay objective does not silently explode
the glitch component.

Run:  python examples/glitch_analysis.py [benchmark]
"""

import sys

from repro import standard_library
from repro.bench import build_benchmark
from repro.power import analyze_glitches
from repro.transform import power_optimize


def report(netlist, label, num_pairs=192):
    result = analyze_glitches(netlist, num_pairs=num_pairs, seed=11)
    print(
        f"{label:18s} zero-delay power = {result.zero_delay_power:8.3f}   "
        f"timed power = {result.timed_power:8.3f}   "
        f"glitch share = {result.glitch_fraction:5.1%}"
    )
    return result


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "f51m"
    lib = standard_library()
    netlist = build_benchmark(name, lib, map_mode="power")
    print(f"circuit {name}: {netlist.num_gates()} gates "
          f"(paper's expectation: glitches ~20% of total power)\n")

    before = report(netlist, "before POWDER")
    print("\nworst glitching signals (transition surplus T - E):")
    for signal, surplus in before.worst_glitchers(5):
        print(f"  {signal:12s} +{surplus:.3f} transitions/cycle")

    result = power_optimize(netlist, num_patterns=2048, max_rounds=6)
    print(f"\nPOWDER: {len(result.moves)} moves, "
          f"{result.power_reduction_percent:.1f}% zero-delay reduction\n")
    after = report(netlist, "after POWDER")

    timed_delta = 100 * (1 - after.timed_power / before.timed_power)
    print(f"\ntimed (glitch-inclusive) power changed by {timed_delta:+.1f}% — "
          "the zero-delay objective is a\nfaithful proxy when this tracks the "
          f"nominal {result.power_reduction_percent:.1f}% reduction.")


if __name__ == "__main__":
    main()
