#!/usr/bin/env python
"""Using your own genlib cell library.

Defines a tiny NAND/NOR-only library in genlib text, maps a benchmark onto
it (exercising the mapper's dual-phase covering — no AND/OR cells exist),
and runs POWDER against it.  Also shows reading/writing genlib files and
inspecting cell electrical data.

Run:  python examples/custom_library.py
"""

from repro import parse_genlib
from repro.bench.functions import comparator_exprs
from repro.library.genlib import write_genlib
from repro.power import PowerEstimator, SimulationProbability
from repro.synth.mapper import MapOptions, technology_map
from repro.synth.subject import SubjectGraph
from repro.transform import power_optimize

MY_GENLIB = """
# A deliberately spartan library: inverter, NAND2, NOR2, XOR2 only.
GATE my_inv  1.0 O=!a;        PIN * INV 1.0 999 0.8 0.3 0.8 0.3
GATE my_nand 2.0 O=!(a*b);    PIN * INV 1.0 999 1.0 0.4 1.0 0.4
GATE my_nor  2.2 O=!(a+b);    PIN * INV 1.0 999 1.2 0.5 1.2 0.5
GATE my_xor  4.0 O=a*!b+!a*b; PIN * UNKNOWN 1.8 999 1.9 0.7 1.9 0.7
"""


def main():
    library = parse_genlib(MY_GENLIB, name="spartan")
    library.validate()
    print(f"library {library.name!r}: {len(library)} cells")
    for cell in library:
        pin = cell.pins[0]
        print(
            f"  {cell.name:8s} area={cell.area:4.1f} "
            f"f={cell.expression.to_genlib():14s} "
            f"pin load={pin.load}, tau={pin.tau}, R={pin.resistance}"
        )

    # Build a 6-bit comparator and map it onto the spartan library.
    bundle = comparator_exprs("comp6", 6)
    graph = SubjectGraph(bundle.name)
    for pi in bundle.input_names:
        graph.add_pi(pi)
    for po, expr in bundle.outputs.items():
        graph.set_output(po, graph.add_expr(expr))

    mapped = technology_map(graph, library, MapOptions(mode="power"))
    used = {}
    for gate in mapped.logic_gates():
        used[gate.cell.name] = used.get(gate.cell.name, 0) + 1
    print(f"\nmapped comp6: {mapped.num_gates()} gates, "
          f"area {mapped.total_area():.1f}, cell mix {used}")

    estimator = PowerEstimator(
        mapped, SimulationProbability(mapped, num_patterns=2048, seed=5)
    )
    before = estimator.total()
    result = power_optimize(mapped, num_patterns=2048, max_rounds=5)
    print(f"POWDER: power {before:.3f} -> {result.final_power:.3f} "
          f"({result.power_reduction_percent:.1f}% reduction, "
          f"{len(result.moves)} moves)")

    # Round-trip the library through the genlib writer.
    text = write_genlib(library)
    reparsed = parse_genlib(text, name="roundtrip")
    assert {c.name for c in reparsed} == {c.name for c in library}
    print("\ngenlib writer round-trip: OK")


if __name__ == "__main__":
    main()
