#!/usr/bin/env python
"""Quickstart: build a small mapped circuit and let POWDER optimize it.

Demonstrates the three-line happy path of the public API:

    lib = standard_library()
    netlist = ...            # build / parse / synthesize
    result = power_optimize(netlist)

Run:  python examples/quickstart.py
"""

from repro import NetlistBuilder, power_optimize, standard_library
from repro.equiv import check_equivalent
from repro.power import PowerEstimator, SimulationProbability
from repro.timing import TimingAnalysis


def build_circuit():
    """A small mapped netlist with some hidden redundancy.

    y1 = (a AND b) OR (c AND d), y2 = NOT(a AND b), and a duplicated
    a AND b cone that POWDER should discover and share.
    """
    lib = standard_library()
    b = NetlistBuilder(lib, "quickstart")
    a, bb, c, d = b.inputs("a", "b", "c", "d")
    ab_1 = b.and_(a, bb, name="ab_1")
    ab_2 = b.and_(a, bb, name="ab_2")  # duplicate logic
    cd = b.and_(c, d, name="cd")
    y1 = b.or_(ab_1, cd, name="y1")
    y2 = b.not_(ab_2, name="y2")
    b.output("y1", y1)
    b.output("y2", y2)
    return b.build()


def main():
    netlist = build_circuit()
    reference = netlist.copy("reference")

    estimator = PowerEstimator(netlist, SimulationProbability(netlist))
    timing = TimingAnalysis(netlist)
    print(f"before: power = {estimator.total():.3f}  "
          f"area = {netlist.total_area():.0f}  "
          f"delay = {timing.circuit_delay:.2f}")

    result = power_optimize(netlist, num_patterns=2048, seed=7)

    print(f"after : power = {result.final_power:.3f}  "
          f"area = {result.final_area:.0f}  "
          f"delay = {result.final_delay:.2f}")
    print()
    print(result.summary())
    print()
    for move in result.moves:
        print(f"  applied {move.substitution}  "
              f"(gain {move.measured_power_gain:+.4f})")

    verdict = check_equivalent(reference, netlist)
    print(f"\nfunctional equivalence after optimization: {verdict.status}")


if __name__ == "__main__":
    main()
