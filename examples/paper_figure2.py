#!/usr/bin/env python
"""The paper's Figure-2 worked example, reproduced end to end.

Circuit A:   e = a·b (shared elsewhere),  d = a ⊕ c,  f = d·b
Circuit B:   rewire the XOR's `a` branch to `e`:  g = (a·b) ⊕ c,  f = g·b

The move is an input substitution IS2(ã, e).  It is permissible although
e ≠ a as a function: the patterns on which they differ (a=1, b=0) lie in
the observability don't-care set of that branch (with b=0 the AND output f
is 0 regardless).  The rewiring lowers Σ C·E for two reasons the paper
names: the branch load moves to a lower-activity signal (E(e) < E(a)), and
the XOR's new global function has no higher activity.

Run:  python examples/paper_figure2.py
"""

from repro import NetlistBuilder, standard_library
from repro.atpg import justify
from repro.equiv import build_miter
from repro.power import PowerEstimator, SimulationProbability
from repro.transform import (
    IS2,
    Substitution,
    check_candidate,
    full_gain,
    power_optimize,
)


def build_circuit_a():
    lib = standard_library()
    b = NetlistBuilder(lib, "figure2")
    a, bb, c = b.inputs("a", "b", "c")
    b.and_(a, bb, name="e")
    d = b.xor_(a, c, name="d")
    f = b.and_(d, bb, name="f")
    b.output("f_out", f)
    b.output("e_out", b.netlist.gate("e"))
    return b.build()


def main():
    netlist = build_circuit_a()
    estimator = PowerEstimator(
        netlist, SimulationProbability(netlist, exhaustive=True)
    )
    print(f"circuit A: sum C*E = {estimator.total():.3f}")

    # The paper's move, written out explicitly.
    d = netlist.gate("d")
    pin = next(i for i, g in enumerate(d.fanins) if g.name == "a")
    move = Substitution(IS2, "a", "e", branch=("d", pin))
    print(f"candidate move: {move}")

    # Gain analysis (eqs. 3-5).
    gain = full_gain(estimator, move)
    print(
        f"  PG_A = {gain.pg_a:+.3f}  (branch load x E(a))\n"
        f"  PG_B = {gain.pg_b:+.3f}  (branch load x E(e))\n"
        f"  PG_C = {gain.pg_c:+.3f}  (TFO activity change)\n"
        f"  total predicted gain = {gain.total:+.3f}"
    )

    # Permissibility, the ATPG way: the substitution is allowed iff the
    # miter of (original, modified) cannot be justified to 1.
    verdict = check_candidate(netlist, move)
    print(f"ATPG permissibility check: {verdict.status} "
          f"(decided by {verdict.stage})")

    # Let the full optimizer find and apply it by itself.
    result = power_optimize(netlist, num_patterns=1024)
    print(f"\ncircuit B: sum C*E = {result.final_power:.3f} "
          f"({result.power_reduction_percent:.1f}% lower)")
    for m in result.moves:
        print(f"  optimizer applied: {m.substitution}")

    # Show the don't-care reasoning concretely: e and a differ exactly on
    # (a=1, b=0) — justify a distinguishing pattern on the pre-move miter.
    before = build_circuit_a()
    after = build_circuit_a()
    from repro.transform.substitution import apply_substitution

    apply_substitution(after, move)
    miter, out = build_miter(before, after)
    witness = justify(miter, out, 1, backtrack_limit=10000)
    print(
        "\ndistinguishing-vector search on the miter: "
        f"{witness.status} (UNSAT = circuits identical = move permissible)"
    )


if __name__ == "__main__":
    main()
