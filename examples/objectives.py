#!/usr/bin/env python
"""One engine, three objectives: power, area, delay.

POWDER's ATPG-based substitutions descend from the authors' earlier area
and delay optimizers (the paper's refs [2] and [5]); this library exposes
all three objectives on the same machinery.  This example optimizes the
same mapped circuit three ways and prints the resulting metric triangle.

Run:  python examples/objectives.py [benchmark]
"""

import sys

from repro import standard_library
from repro.bench import build_benchmark
from repro.power import PowerEstimator, SimulationProbability
from repro.timing import TimingAnalysis
from repro.transform import OptimizeOptions, power_optimize


def metrics(netlist):
    estimator = PowerEstimator(
        netlist, SimulationProbability(netlist, num_patterns=2048, seed=1)
    )
    return (
        estimator.total(),
        netlist.total_area(),
        TimingAnalysis(netlist).circuit_delay,
    )


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "misex1"
    lib = standard_library()
    base = build_benchmark(name, lib, map_mode="power")
    p0, a0, d0 = metrics(base)
    print(f"circuit {name}: power={p0:.2f} area={a0:.0f} delay={d0:.2f}\n")
    print(f"{'objective':>10s} {'power':>12s} {'area':>12s} {'delay':>12s} {'moves':>6s}")

    for objective in ("power", "area", "delay"):
        trial = base.copy(objective)
        result = power_optimize(
            trial,
            OptimizeOptions(
                objective=objective,
                num_patterns=2048,
                repeat=15,
                max_rounds=5,
            ),
        )
        p, a, d = metrics(trial)
        print(
            f"{objective:>10s} "
            f"{p:8.2f} ({100 * (1 - p / p0):+4.0f}%) "
            f"{a:8.0f} ({100 * (1 - a / a0):+4.0f}%) "
            f"{d:8.2f} ({100 * (1 - d / d0):+4.0f}%) "
            f"{len(result.moves):6d}"
        )
    print(
        "\n(each objective accepts only moves that improve it — the other"
        "\n two columns show the side effects)"
    )


if __name__ == "__main__":
    main()
