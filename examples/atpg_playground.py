#!/usr/bin/env python
"""The ATPG substrate on its own: faults, tests, redundancy, don't-cares.

POWDER's enabling technology is test generation.  This example shows the
machinery directly on a circuit with a deliberately redundant gate:

- fault simulation measures coverage of random patterns,
- PODEM generates a test (or proves untestability) per fault,
- untestable faults expose the don't-cares structural rewiring exploits.

Run:  python examples/atpg_playground.py
"""

from repro import NetlistBuilder, standard_library
from repro.atpg import (
    Podem,
    all_faults,
    fault_coverage,
    fault_simulate,
    is_redundant,
)
from repro.atpg.faultsim import undetected_faults
from repro.netlist import SimState, random_patterns


def build():
    """c17-style circuit plus a redundant OR term: y = ab + ab·c."""
    lib = standard_library()
    b = NetlistBuilder(lib, "playground")
    a, bb, c = b.inputs("a", "b", "c")
    ab = b.and_(a, bb, name="ab")
    abc = b.and_(ab, c, name="abc")  # absorbed by ab: redundant
    y = b.or_(ab, abc, name="y")
    b.output("y", y)
    return b.build()


def main():
    netlist = build()
    print(netlist)

    faults = all_faults(netlist)
    sim = SimState(netlist, random_patterns(netlist.input_names, 256, seed=3))
    coverage = fault_coverage(sim, faults)
    print(f"\n{len(faults)} stuck-at faults, "
          f"random-pattern coverage (256 patterns): {coverage:.0%}")

    print("\nper-fault detection counts (parallel-pattern fault simulation):")
    for fault, count in sorted(
        fault_simulate(sim, faults).items(), key=lambda kv: str(kv[0])
    ):
        print(f"  {str(fault):16s} detected by {count:3d}/256 patterns")

    print("\nPODEM on the undetected faults:")
    for fault in undetected_faults(sim, faults):
        result = Podem(netlist, fault).run()
        verdict = (
            f"test {result.assignment}" if result.testable else "REDUNDANT"
        )
        print(f"  {str(fault):16s} -> {verdict}")

    # The redundancy is exactly the absorption y = ab + ab·c = ab.
    from repro.atpg import StuckAtFault

    assert is_redundant(netlist, StuckAtFault("abc", 0))
    print("\nabc/sa0 is redundant: the OR's second term is absorbed — this "
          "is the kind\nof don't-care POWDER's substitutions exploit.")


if __name__ == "__main__":
    main()
