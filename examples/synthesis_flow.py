#!/usr/bin/env python
"""The full synthesis pipeline on a real specification.

Walks a two-level ALU specification through every stage the paper's
experimental setup implies:

  PLA spec -> two-level minimization -> factoring -> subject graph
           -> power-aware technology mapping (the POSE stand-in)
           -> POWDER structural optimization
           -> BLIF output

Run:  python examples/synthesis_flow.py
"""

from repro import standard_library, write_blif
from repro.bench.functions import alu_exprs
from repro.bench.pla import random_pla, write_pla
from repro.power import PowerEstimator, SimulationProbability
from repro.synth import (
    SynthesisOptions,
    build_subject_graph,
    factor_cover,
    minimize_cover,
    synthesize,
)
from repro.synth.mapper import MapOptions, technology_map
from repro.synth.subject import SubjectGraph
from repro.timing import TimingAnalysis
from repro.transform import power_optimize


def metrics(netlist, label):
    estimator = PowerEstimator(
        netlist, SimulationProbability(netlist, num_patterns=2048, seed=1)
    )
    timing = TimingAnalysis(netlist)
    print(
        f"{label:28s} gates={netlist.num_gates():4d} "
        f"area={netlist.total_area():9.0f} power={estimator.total():8.3f} "
        f"delay={timing.circuit_delay:6.2f}"
    )


def pla_branch():
    """Two-level spec (a synthetic multi-output PLA) through the flow."""
    print("-- PLA branch " + "-" * 50)
    pla = random_pla("demo", 10, 6, 32, seed=2024)
    print(f"spec: {pla.num_inputs} inputs, {pla.num_outputs} outputs, "
          f"{pla.total_cubes()} cubes")

    # Show the per-output minimization and factoring on one output.
    po = pla.output_names[0]
    cover = pla.on[po]
    minimized = minimize_cover(cover)
    expr = factor_cover(minimized, pla.input_names)
    print(f"output {po}: {len(cover.cubes)} cubes -> "
          f"{len(minimized.cubes)} cubes -> factored: {expr}")

    lib = standard_library()
    for mode in ("area", "power"):
        mapped = synthesize(
            pla.input_names,
            pla.on,
            lib,
            options=SynthesisOptions(map_options=MapOptions(mode=mode)),
            name=f"demo_{mode}",
        )
        metrics(mapped, f"mapped ({mode} mode)")

    mapped = synthesize(
        pla.input_names, pla.on, lib,
        options=SynthesisOptions(map_options=MapOptions(mode="power")),
        name="demo",
    )
    result = power_optimize(mapped, num_patterns=2048, max_rounds=6)
    metrics(mapped, "after POWDER")
    print(f"POWDER applied {len(result.moves)} substitutions "
          f"({result.power_reduction_percent:.1f}% power reduction)")


def expression_branch():
    """A functional spec (4-bit ALU) through subject graph + mapping."""
    print("\n-- expression branch " + "-" * 43)
    bundle = alu_exprs("alu4bit", 4)
    graph = SubjectGraph(bundle.name)
    for pi in bundle.input_names:
        graph.add_pi(pi)
    for po, expr in bundle.outputs.items():
        graph.set_output(po, graph.add_expr(expr))
    print(f"subject graph: {graph.num_ands()} AND2 nodes, depth {graph.depth()}")

    lib = standard_library()
    mapped = technology_map(graph, lib, MapOptions(mode="power"))
    metrics(mapped, "mapped ALU")

    result = power_optimize(
        mapped, num_patterns=2048, delay_slack_percent=0.0
    )
    metrics(mapped, "after POWDER (0% slack)")
    print(f"delay-constrained run: {len(result.moves)} moves, "
          f"delay {result.initial_delay:.2f} -> {result.final_delay:.2f}")

    blif = write_blif(mapped)
    print(f"\nfirst lines of the optimized BLIF:\n" + "\n".join(blif.splitlines()[:6]))


if __name__ == "__main__":
    pla_branch()
    expression_branch()
