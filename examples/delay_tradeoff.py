#!/usr/bin/env python
"""The power-delay trade-off (the paper's Figure 6) on one circuit.

Runs POWDER with delay constraints from 0 % to 200 % above the initial
circuit delay and prints the trade-off curve.  Per the paper: most of the
power is recovered at tight constraints, extra delay allowance buys
diminishing returns, and the final delay never exceeds the constraint.

Run:  python examples/delay_tradeoff.py [benchmark-name]
"""

import sys

from repro import standard_library
from repro.bench import build_benchmark
from repro.timing import TimingAnalysis
from repro.transform import power_optimize


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "alu2"
    lib = standard_library()
    base = build_benchmark(name, lib, map_mode="power")
    initial_delay = TimingAnalysis(base).circuit_delay
    print(f"circuit {name}: {base.num_gates()} gates, "
          f"initial delay {initial_delay:.2f}")
    print(f"{'constraint':>12s} {'power red.%':>12s} {'rel. delay':>11s} "
          f"{'moves':>6s}")

    unconstrained_baseline = None
    for slack in (0, 10, 20, 30, 50, 80, 120, 200, None):
        trial = base.copy(f"{name}_{slack}")
        result = power_optimize(
            trial,
            num_patterns=2048,
            delay_slack_percent=float(slack) if slack is not None else None,
            max_rounds=8,
        )
        final_delay = TimingAnalysis(trial).circuit_delay
        label = f"+{slack}%" if slack is not None else "none"
        print(
            f"{label:>12s} {result.power_reduction_percent:12.1f} "
            f"{final_delay / initial_delay:11.3f} {len(result.moves):6d}"
        )
        if slack is not None:
            limit = initial_delay * (1 + slack / 100)
            assert final_delay <= limit + 1e-9, "constraint violated!"
        else:
            unconstrained_baseline = result.power_reduction_percent
    print(f"\n(unconstrained run reaches {unconstrained_baseline:.1f}% — the "
          "sweep converges toward it as the constraint loosens)")


if __name__ == "__main__":
    main()
